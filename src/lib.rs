//! **mixtlb** — a full reproduction of *Efficient Address Translation for
//! Architectures with Multiple Page Sizes* (Cox & Bhattacharjee,
//! ASPLOS 2017) as a Rust workspace.
//!
//! MIX TLBs are single set-associative TLBs that concurrently support all
//! page sizes: every translation is indexed with the small-page index
//! bits, superpage entries are *mirrored* across the sets their 4 KB
//! regions stripe over, and the capacity cost of mirroring is offset by
//! *coalescing* contiguous superpages into single entries — contiguity the
//! OS produces naturally whenever it can produce superpages at all.
//!
//! This facade crate re-exports every layer of the reproduction:
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | addresses, page sizes, permissions, translations |
//! | [`mem`] | buddy allocator, `memhog` fragmentation, compaction |
//! | [`pagetable`] | x86-64 radix tables, hardware walker, nested (2-D) walks |
//! | [`os`] | VMAs, demand paging, THS/`libhugetlbfs`, contiguity scanners |
//! | [`cache`] | functional L1D/L2/LLC hierarchy for walk references |
//! | [`core`] | **MIX TLBs** + split/oracle designs and the `TlbDevice` trait |
//! | [`baselines`] | hash-rehash, skew, predictor, COLT/COLT++ comparators |
//! | [`trace`] | synthetic workload generators (Spec/PARSEC/server/Rodinia classes) |
//! | [`energy`] | CACTI-style parametric energy model |
//! | [`sim`] | translation engine, analytical perf model, native/virt scenarios |
//! | [`gpu`] | multi-SM GPU scenarios with per-SM L1 TLBs |
//! | [`perf`] | perfgate benchmarking: pinned corpora, batched replay timing, regression gate |
//!
//! # Quick start
//!
//! ```
//! use mixtlb::core::{Lookup, MixTlb, MixTlbConfig, TlbDevice};
//! use mixtlb::types::{AccessKind, PageSize, Permissions, Pfn, Translation, Vpn};
//!
//! // A 16-set, 4-way MIX TLB (L1 flavour: bitmap coalescing).
//! let mut tlb = MixTlb::new(MixTlbConfig::l1(16, 4));
//!
//! // Two contiguous 2 MB superpages, as a page-table walk would find them
//! // in one PTE cache line.
//! let b = Translation::new(Vpn::new(0x400), Pfn::new(0x8000), PageSize::Size2M,
//!                          Permissions::rw_user());
//! let c = Translation::new(Vpn::new(0x600), Pfn::new(0x8200), PageSize::Size2M,
//!                          Permissions::rw_user());
//! tlb.fill(b.vpn, &b, &[b, c]); // coalesced into one (mirrored) entry
//!
//! // One set probe serves any 4 KB region of either superpage.
//! assert!(tlb.lookup(Vpn::new(0x7A3), AccessKind::Load).is_hit());
//! ```
//!
//! For end-to-end experiments (fragmented memory, OS page-size policies,
//! trace replay, runtime/energy reports) see [`sim::NativeScenario`],
//! [`sim::VirtScenario`], and [`gpu::GpuScenario`], and the `examples/`
//! directory. The `mixtlb-bench` crate regenerates every figure of the
//! paper (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mixtlb_baselines as baselines;
pub use mixtlb_cache as cache;
pub use mixtlb_core as core;
pub use mixtlb_energy as energy;
pub use mixtlb_gpu as gpu;
pub use mixtlb_mem as mem;
pub use mixtlb_os as os;
pub use mixtlb_pagetable as pagetable;
pub use mixtlb_perf as perf;
pub use mixtlb_sim as sim;
pub use mixtlb_trace as trace;
pub use mixtlb_types as types;
