//! Offline, API-compatible stub of the subset of [`criterion`] this
//! workspace's benches use.
//!
//! The container cannot reach a cargo registry, so the real `criterion`
//! crate is unavailable. This stub keeps `benches/*.rs` compiling and gives
//! a serviceable `cargo bench` experience: each benchmark is warmed up, then
//! timed for a fixed wall-clock budget, and the mean ns/iteration is printed.
//! There is no statistical analysis, outlier rejection, or HTML report.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier.
pub use std::hint::black_box;

/// Per-benchmark measurement loop.
pub struct Bencher {
    /// Filled in by [`Bencher::iter`]: (iterations, total elapsed).
    measurement: Option<(u64, Duration)>,
    sample_budget: Duration,
}

impl Bencher {
    fn new(sample_budget: Duration) -> Bencher {
        Bencher {
            measurement: None,
            sample_budget,
        }
    }

    /// Times `routine`, storing the mean over as many iterations as fit in
    /// the sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.sample_budget / 4 || warmup_iters >= 1_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters as u32;
        let target = (self.sample_budget.as_nanos() / per_iter.as_nanos().max(1)) as u64;
        let iters = target.clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measurement = Some((iters, start.elapsed()));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Adjusts the number of samples (accepted for API compatibility; the
    /// stub uses a wall-clock budget instead).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Smaller requested sample counts shrink the time budget.
        self.criterion.sample_budget = if n <= 10 {
            Duration::from_millis(50)
        } else {
            Duration::from_millis(200)
        };
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(self.sample_budget);
        f(&mut b);
        match b.measurement {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench {name:<40} {ns:>14.1} ns/iter  ({iters} iters)");
            }
            None => println!("bench {name:<40} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn runs_without_panicking() {
        benches();
    }
}
