//! Offline, API-compatible stub of the subset of the [`rand`] crate this
//! workspace uses.
//!
//! The build container has no network access and no registry cache, so the
//! real `rand` crate cannot be resolved. This stub implements exactly the
//! surface the workspace consumes — `rngs::SmallRng`, `SeedableRng::
//! seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` over integer and `f64`
//! ranges — with a deterministic xoshiro256++ core (the same family the real
//! `SmallRng` uses on 64-bit targets). Streams are *not* bit-compatible with
//! upstream `rand`; every consumer in this repo only relies on determinism
//! per seed and reasonable uniformity, both of which hold.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// An RNG that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a single `u64` seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types which can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo reduction: the tiny bias is irrelevant for the
                // simulation workloads this repo generates.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Values that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from the full domain.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Samples a value from the type's full domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic small RNG (xoshiro256++ core).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic RNG — same algorithm family as the real
    /// `rand::rngs::SmallRng` on 64-bit targets (xoshiro256++), though not
    /// stream-compatible with it.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Guard against the all-zero state (unreachable via splitmix64,
            // but cheap to enforce).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against `StdRng` keeps compiling.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..64).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..64).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..64).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(0u8..=10);
            assert!(i <= 10);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniformity_is_rough_but_present() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[r.gen_range(0usize..16)] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
