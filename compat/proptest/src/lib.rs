//! Offline, API-compatible stub of the subset of [`proptest`] this workspace
//! uses.
//!
//! The build container cannot reach a cargo registry, so the real `proptest`
//! crate is unavailable. This stub keeps every property test in the repo
//! compiling and *running* — strategies generate uniformly random values from
//! a deterministic per-test RNG and the `proptest!` macro loops the body for
//! `ProptestConfig::cases` iterations. What it does **not** do is shrink
//! failing inputs: a failure panics with the offending case number and the
//! generated arguments are printed by the assertion itself.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! integer range strategies, tuple strategies up to arity 6,
//! `Strategy::prop_map`, and `proptest::collection::vec`.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a generated case failed (or was rejected).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. by `prop_assume!`); not a failure.
        Reject(String),
        /// The property does not hold for this case.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case with the given reason.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
            }
        }
    }

    /// Result type of a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving value generation (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG; every test run generates the same cases.
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x5EED_C0DE_5EED_C0DE,
            }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest, generation is plain uniform sampling and
    /// there is no shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`, retrying generation.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen_fn: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `Strategy::prop_filter` adapter (rejection sampling).
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({}) rejected 10000 candidates", self.whence);
        }
    }

    /// (Possibly weighted) choice between type-erased alternatives
    /// (`prop_oneof!`).
    pub struct Union<T> {
        /// `(cumulative_weight, strategy)` pairs.
        options: Vec<(u64, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a uniform union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        /// Builds a weighted union; `options` must be non-empty and weights
        /// must be positive.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            let mut cumulative = 0u64;
            let options = options
                .into_iter()
                .map(|(w, s)| {
                    assert!(w > 0, "prop_oneof! weights must be positive");
                    cumulative += u64::from(w);
                    (cumulative, s)
                })
                .collect();
            Union {
                options,
                total_weight: cumulative,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.total_weight);
            let i = self
                .options
                .partition_point(|(cumulative, _)| *cumulative <= pick);
            self.options[i].1.generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[inline]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[inline]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        #[inline]
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    /// `any::<T>()` marker.
    pub struct Any<T>(PhantomData<T>);

    /// Full-domain strategy for `T` (`bool` and the integer primitives).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive minimum length.
        pub min: usize,
        /// Exclusive maximum length.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy producing vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Skips the current generated case when the assumption does not hold.
///
/// The stub simply abandons the case (the surrounding closure returns), so a
/// test whose assumptions almost always fail will silently run few effective
/// cases — acceptable for the light assumptions used in this repo.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choice among strategies producing the same value type; arms may carry
/// `weight => strategy` relative weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ..)` body
/// is run for `cases` freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let run = |__rng: &mut $crate::test_runner::TestRng|
                        -> $crate::test_runner::TestCaseResult {
                        $(let $arg =
                            $crate::strategy::Strategy::generate(&{ $strategy }, __rng);)+
                        $body
                        Ok(())
                    };
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run(&mut __rng)),
                    );
                    match result {
                        Ok(Ok(())) => {}
                        Ok(Err($crate::test_runner::TestCaseError::Reject(_))) => {}
                        Ok(Err(err)) => {
                            panic!(
                                "proptest stub: case {}/{} of `{}`: {}",
                                __case + 1,
                                __config.cases,
                                stringify!($name),
                                err,
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest stub: case {}/{} of `{}` failed",
                                __case + 1,
                                __config.cases,
                                stringify!($name),
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..50).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn map_and_oneof_work(v in prop_oneof![Just(1u32), Just(2), 10u32..20]) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn tuples_and_vec(
            pair in (0u64..4, any::<bool>()),
            items in crate::collection::vec(small_even(), 1..8),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!items.is_empty() && items.len() < 8);
            for i in items {
                prop_assert_eq!(i % 2, 0);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(13))]
        #[test]
        fn configured_case_count(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn fixed_vec_len() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = crate::collection::vec(0u64..10, 4usize);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }
}
