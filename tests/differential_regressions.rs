//! Named, always-run promotions of the shrunken counterexamples recorded
//! in `differential.proptest-regressions`.
//!
//! Proptest replays that seed file only when the property tests run with
//! the same harness; promoting each case to a deterministic unit test
//! makes the regression permanent, self-describing, and independent of
//! the proptest dependency. Keep this file in sync: every `cc` line in
//! the seed file gets a named test documenting what it caught.

use mixtlb::baselines::{
    colt_plus_plus_split, colt_split, superpage_indexed_mix, PredictiveHashRehash,
    PredictiveSkew, SkewTlb, SkewTlbConfig,
};
use mixtlb::core::{
    CoalesceKind, Lookup, MixTlb, MixTlbConfig, MultiProbeConfig, MultiProbeTlb,
    OracleUnifiedTlb, SplitTlb, SplitTlbConfig, TlbDevice,
};
use mixtlb::pagetable::{BumpFrameSource, PageTable, Walker};
use mixtlb::types::{AccessKind, PageSize, Permissions, Pfn, Translation, VirtAddr, Vpn};

/// The same device zoo the differential property suite uses.
fn all_devices() -> Vec<Box<dyn TlbDevice>> {
    vec![
        Box::new(MixTlb::new(MixTlbConfig::l1(4, 2))),
        Box::new(MixTlb::new(MixTlbConfig::l1(16, 4))),
        Box::new(MixTlb::new(MixTlbConfig::l2(16, 4))),
        Box::new(MixTlb::new(MixTlbConfig {
            kind: CoalesceKind::Bitmap,
            ..MixTlbConfig::l2(8, 8)
        })),
        Box::new(MixTlb::new(MixTlbConfig::l1(8, 4).with_small_coalescing(4))),
        Box::new(superpage_indexed_mix(8, 4)),
        Box::new(SplitTlb::new(SplitTlbConfig::haswell_l1())),
        Box::new(MultiProbeTlb::new(MultiProbeConfig::all_sizes(8, 4))),
        Box::new(SkewTlb::new(SkewTlbConfig::new(2, 8))),
        Box::new(PredictiveHashRehash::new(8, 4, 64)),
        Box::new(PredictiveSkew::new(2, 8, 64)),
        Box::new(OracleUnifiedTlb::new(8, 4)),
        Box::new(colt_split()),
        Box::new(colt_plus_plus_split()),
    ]
}

/// Replays one recorded access sequence against the page-table oracle on
/// every design, with the exact assertions of the differential property.
fn replay(mappings: &[Translation], accesses: &[(usize, u64, bool)]) {
    let mut frames = BumpFrameSource::new(0x4000_0000);
    let mut pt = PageTable::new(&mut frames);
    for t in mappings {
        pt.map(*t, &mut frames).expect("regression mappings never overlap");
    }
    for mut device in all_devices() {
        for &(which, offset4k, store) in accesses {
            let mapping = &mappings[which % mappings.len()];
            let vpn = mapping.vpn.add_4k(offset4k % mapping.size.pages_4k());
            let va = VirtAddr::from_page(vpn, offset4k % 4096);
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            let expected = mapping.translate(va).expect("inside the mapping");
            match device.lookup(vpn, kind) {
                Lookup::Hit { translation, .. } => {
                    assert_eq!(
                        translation.translate(va),
                        Ok(expected),
                        "{}: wrong hit for {}",
                        device.name(),
                        va
                    );
                }
                Lookup::Miss => {
                    let walk = Walker::walk(&mut pt, va, kind);
                    let t = walk.translation.expect("mapped page cannot fault");
                    device.fill(vpn, &t, &walk.line_translations);
                    match device.lookup(vpn, AccessKind::Load) {
                        Lookup::Hit { translation, .. } => assert_eq!(
                            translation.translate(va),
                            Ok(expected),
                            "{}: wrong post-fill hit for {}",
                            device.name(),
                            va
                        ),
                        Lookup::Miss => panic!(
                            "{}: miss immediately after fill of {}",
                            device.name(),
                            va
                        ),
                    }
                }
            }
        }
    }
}

/// Seed `02fc5474…`: a single 1 GB mapping hammered with stores at varied
/// 4 KB offsets. The shrunken failure caught a dirty-bit update path that
/// rewrote a superpage entry's physical anchor on a store *hit*: the
/// post-fill lookup then translated offsets in other 4 KB regions with
/// the stale anchor. A pure-load sequence never exposed it (the dirty
/// micro-op is store-only), and a 4 KB mapping never exposed it either
/// (one region, one offset). Promoted 2026-08-06.
#[test]
fn store_hits_on_a_1g_mapping_keep_the_physical_anchor() {
    let mappings = [Translation {
        vpn: Vpn::new(262_144),
        pfn: Pfn::new(1_310_720),
        size: PageSize::Size1G,
        perms: Permissions::rw_user(),
        accessed: true,
        dirty: false,
    }];
    let accesses: [(usize, u64, bool); 18] = [
        (16, 1960, true),
        (27, 1805, true),
        (37, 722, true),
        (59, 1128, true),
        (33, 643, false),
        (52, 909, true),
        (40, 19, false),
        (12, 751, true),
        (7, 1913, true),
        (21, 1121, true),
        (3, 1831, true),
        (24, 1912, true),
        (13, 1831, true),
        (40, 192, true),
        (30, 265, false),
        (35, 1336, false),
        (56, 1651, true),
        (15, 1203, true),
    ];
    replay(&mappings, &accesses);
}

/// The same 1 GB space, reduced to its essence: one store miss + fill,
/// then a store *hit* at a different 4 KB offset, then a load at a third
/// offset. This is the minimal sequence the shrunken seed exercises and
/// is cheap enough to run first for fast bisection.
#[test]
fn minimal_store_hit_then_load_on_a_1g_mapping() {
    let mappings = [Translation {
        vpn: Vpn::new(262_144),
        pfn: Pfn::new(1_310_720),
        size: PageSize::Size1G,
        perms: Permissions::rw_user(),
        accessed: true,
        dirty: false,
    }];
    replay(&mappings, &[(0, 1960, true), (0, 722, true), (0, 643, false)]);
}
