//! Differential regression: `translate_batch` must be observably
//! indistinguishable from per-event `access` for EVERY design and every
//! pinned corpus workload — identical per-access physical addresses and
//! identical architectural statistics.
//!
//! The batched path's two shortcuts are each covered by a soundness
//! argument (see `TranslationEngine::translate_batch`); this test is the
//! executable check of those arguments across the full design zoo:
//!
//! * Engine counters must match exactly, except `stall_cycles` on the
//!   prediction-based designs — window hits skip predictor training, which
//!   may change later probe *order* (serial-probe stalls) but never
//!   presence, translations, or miss traffic.
//! * L1 device stats are compared on their architectural-state facets
//!   (misses, fills, writes, evictions, merges, invalidations, dirty
//!   micro-ops). Probe-effort facets (lookups, hits, sets probed, entries
//!   read, serial probes, predictor counters) legitimately differ: the
//!   reuse window answers some accesses without touching the device.
//! * L2 stats must match on every field: the batched path only elides L1
//!   probes that are provably hits, so L2 must see the exact same stream.

use mixtlb::core::TlbStats;
use mixtlb::perf::{corpus_catalog, prepare_scenario, CorpusWorkload};
use mixtlb::sim::designs::all_cpu_designs;
use mixtlb::sim::{TranslationEngine, WalkBackend};
use mixtlb::trace::{TraceEvent, TraceGenerator};

/// Events per (design, workload) replay. Small enough that the full
/// 8-design × 6-workload sweep stays in tier-1 test budget, large enough
/// to cycle every L1 and L2 and exercise evictions and dirty micro-ops.
const EVENTS: u64 = 20_000;

fn l1_architectural_facets(s: &TlbStats) -> [u64; 8] {
    [
        s.misses,
        s.fills,
        s.entries_written,
        s.evictions,
        s.dup_merges,
        s.coalesce_merges,
        s.invalidations,
        s.dirty_microops,
    ]
}

#[test]
fn batched_replay_is_differentially_identical_to_scalar() {
    for w in corpus_catalog() {
        let w = CorpusWorkload {
            name: w.name,
            events: EVENTS,
        };
        let scenario = prepare_scenario(w.name).expect("corpus workload in catalog");
        let events: Vec<TraceEvent> =
            TraceGenerator::new(scenario.spec(), scenario.seed(), scenario.region())
                .take(w.events as usize)
                .collect();
        for (design, factory) in all_cpu_designs() {
            let predictive = matches!(design, "hr+pred" | "skew+pred");

            let mut pt_a = scenario.clone_page_table();
            let mut scalar = TranslationEngine::new(factory(), WalkBackend::Native(&mut pt_a));
            let scalar_out: Vec<_> = events.iter().map(|ev| scalar.access(ev)).collect();
            let scalar_stats = scalar.stats();
            let scalar_l1 = scalar.hierarchy().l1.stats();
            let scalar_l2 = scalar.hierarchy().l2.as_ref().map(|l2| l2.stats());

            let mut pt_b = scenario.clone_page_table();
            let mut batched = TranslationEngine::new(factory(), WalkBackend::Native(&mut pt_b));
            let mut batched_out = Vec::new();
            batched.translate_batch(&events, &mut batched_out);
            let batched_stats = batched.stats();
            let batched_l1 = batched.hierarchy().l1.stats();
            let batched_l2 = batched.hierarchy().l2.as_ref().map(|l2| l2.stats());

            assert_eq!(
                scalar_out.len(),
                batched_out.len(),
                "{design}/{}: output length",
                w.name
            );
            for (i, (s, b)) in scalar_out.iter().zip(batched_out.iter()).enumerate() {
                assert_eq!(
                    s, b,
                    "{design}/{}: physical address diverges at access {i}",
                    w.name
                );
            }

            if predictive {
                let mut s = scalar_stats;
                let mut b = batched_stats;
                s.stall_cycles = 0;
                b.stall_cycles = 0;
                assert_eq!(s, b, "{design}/{}: engine stats (stall-exempt)", w.name);
            } else {
                assert_eq!(
                    scalar_stats, batched_stats,
                    "{design}/{}: engine stats",
                    w.name
                );
            }

            assert_eq!(
                l1_architectural_facets(&scalar_l1),
                l1_architectural_facets(&batched_l1),
                "{design}/{}: L1 architectural stats",
                w.name
            );
            assert_eq!(scalar_l2, batched_l2, "{design}/{}: L2 stats", w.name);
        }
    }
}
