//! The load-bearing correctness invariant: **every TLB design, on a hit,
//! returns exactly the physical address the page table defines** — under
//! randomized address spaces (mixed page sizes), random access streams,
//! random fill orders, and interleaved invalidations.

use mixtlb::baselines::{
    colt_plus_plus_split, colt_split, superpage_indexed_mix, PredictiveHashRehash,
    PredictiveSkew, SkewTlb, SkewTlbConfig,
};
use mixtlb::core::{
    CoalesceKind, Lookup, MixTlb, MixTlbConfig, MultiProbeConfig, MultiProbeTlb,
    OracleUnifiedTlb, SplitTlb, SplitTlbConfig, TlbDevice,
};
use mixtlb::pagetable::{BumpFrameSource, PageTable, Walker};
use mixtlb::types::{AccessKind, PageSize, Permissions, Translation, VirtAddr, Vpn};
use proptest::prelude::*;

/// Every design under test, freshly constructed.
fn all_devices() -> Vec<Box<dyn TlbDevice>> {
    vec![
        Box::new(MixTlb::new(MixTlbConfig::l1(4, 2))),
        Box::new(MixTlb::new(MixTlbConfig::l1(16, 4))),
        Box::new(MixTlb::new(MixTlbConfig::l2(16, 4))),
        Box::new(MixTlb::new(MixTlbConfig {
            kind: CoalesceKind::Bitmap,
            ..MixTlbConfig::l2(8, 8)
        })),
        Box::new(MixTlb::new(MixTlbConfig::l1(8, 4).with_small_coalescing(4))),
        Box::new(superpage_indexed_mix(8, 4)),
        Box::new(SplitTlb::new(SplitTlbConfig::haswell_l1())),
        Box::new(MultiProbeTlb::new(MultiProbeConfig::all_sizes(8, 4))),
        Box::new(SkewTlb::new(SkewTlbConfig::new(2, 8))),
        Box::new(PredictiveHashRehash::new(8, 4, 64)),
        Box::new(PredictiveSkew::new(2, 8, 64)),
        Box::new(OracleUnifiedTlb::new(8, 4)),
        // The standalone per-size COLT array only caches one size (it is a
        // split-TLB *part*), so it cannot satisfy the universal
        // fill-then-hit contract; it is exercised through colt_split().
        Box::new(colt_split()),
        Box::new(colt_plus_plus_split()),
    ]
}

/// A randomized, overlap-free address space: each slot of a coarse 1 GB
/// grid independently becomes a 1 GB page, a run of 2 MB pages, a strip of
/// 4 KB pages, or stays unmapped. Physical placement is randomized with
/// occasional contiguity (so coalescing paths trigger) and occasional
/// discontiguity (so anchor checks trigger).
#[derive(Debug, Clone)]
struct Space {
    mappings: Vec<Translation>,
}

fn space_strategy() -> impl Strategy<Value = Space> {
    let slot = prop_oneof![
        2 => Just(0u8), // unmapped
        2 => Just(1),   // 1 GB page
        4 => Just(2),   // 2 MB pages
        4 => Just(3),   // 4 KB pages
    ];
    (
        proptest::collection::vec(slot, 4),
        any::<u64>(), // phys seed
        0.0f64..1.0,  // contiguity bias
    )
        .prop_map(|(slots, phys_seed, contig)| {
            let rw = Permissions::rw_user();
            let ro = Permissions::ro_user();
            let mut mappings = Vec::new();
            let mut next_pfn: u64 = 0x10_0000;
            let mut stride = phys_seed | 1;
            for (i, kind) in slots.iter().enumerate() {
                let base = Vpn::new((i as u64) << 18); // 1 GB-aligned slots
                match kind {
                    1 => {
                        let pfn = (next_pfn + (stride & 0xFFFF)) & !((1 << 18) - 1);
                        let pfn = pfn + (1 << 18);
                        mappings.push(Translation::new(
                            base,
                            mixtlb::types::Pfn::new(pfn),
                            PageSize::Size1G,
                            rw,
                        ));
                        next_pfn = pfn + (1 << 18);
                    }
                    2 => {
                        // Up to 12 2 MB pages, sometimes contiguous.
                        let count = 2 + (stride % 11);
                        let mut pfn = (next_pfn + (stride & 0xFFF) * 512) & !511;
                        for j in 0..count {
                            let perms = if j == count / 2 && stride & 4 != 0 { ro } else { rw };
                            mappings.push(Translation {
                                vpn: base.add_4k(j * 512),
                                pfn: mixtlb::types::Pfn::new(pfn),
                                size: PageSize::Size2M,
                                perms,
                                accessed: true,
                                dirty: stride & 2 != 0,
                            });
                            // Mostly contiguous, with occasional jumps.
                            if (j as f64) / (count as f64) < contig {
                                pfn += 512;
                            } else {
                                pfn += 1024 + (stride & 0x3F) * 512;
                            }
                        }
                        next_pfn = pfn + 512;
                    }
                    3 => {
                        let count = 3 + (stride % 14);
                        let mut pfn = next_pfn + (stride & 0xFF);
                        for j in 0..count {
                            mappings.push(Translation::new(
                                base.add_4k(j),
                                mixtlb::types::Pfn::new(pfn),
                                PageSize::Size4K,
                                rw,
                            ));
                            pfn += if stride & 8 != 0 { 1 } else { 3 + (stride & 7) };
                        }
                        next_pfn = pfn + 1;
                    }
                    _ => {}
                }
                stride = stride.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            }
            Space { mappings }
        })
}

fn build_page_table(space: &Space) -> PageTable {
    let mut frames = BumpFrameSource::new(0x4000_0000);
    let mut pt = PageTable::new(&mut frames);
    for t in &space.mappings {
        pt.map(*t, &mut frames).expect("grid slots never overlap");
    }
    pt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hits agree with the page table, misses get filled and then agree,
    /// across every design.
    #[test]
    fn every_design_translates_exactly_like_the_page_table(
        space in space_strategy(),
        accesses in proptest::collection::vec((0usize..64, 0u64..2048, any::<bool>()), 1..150),
    ) {
        prop_assume!(!space.mappings.is_empty());
        let mut pt = build_page_table(&space);
        for mut device in all_devices() {
            for &(which, offset4k, store) in &accesses {
                let mapping = &space.mappings[which % space.mappings.len()];
                let vpn = mapping.vpn.add_4k(offset4k % mapping.size.pages_4k());
                let va = VirtAddr::from_page(vpn, offset4k % 4096);
                let kind = if store { AccessKind::Store } else { AccessKind::Load };
                let expected = mapping.translate(va).expect("inside the mapping");
                match device.lookup(vpn, kind) {
                    Lookup::Hit { translation, .. } => {
                        let got = translation.translate(va);
                        prop_assert_eq!(
                            got, Ok(expected),
                            "{}: wrong hit for {}", device.name(), va
                        );
                    }
                    Lookup::Miss => {
                        let walk = Walker::walk(&mut pt, va, kind);
                        let t = walk.translation.expect("mapped page cannot fault");
                        prop_assert_eq!(t.translate(va), Ok(expected));
                        device.fill(vpn, &t, &walk.line_translations);
                        // A refill immediately after the fill must hit with
                        // the right PA (the fill wrote the probed set).
                        match device.lookup(vpn, AccessKind::Load) {
                            Lookup::Hit { translation, .. } => {
                                prop_assert_eq!(
                                    translation.translate(va), Ok(expected),
                                    "{}: wrong post-fill hit for {}", device.name(), va
                                );
                            }
                            Lookup::Miss => {
                                prop_assert!(
                                    false,
                                    "{}: miss immediately after fill of {}",
                                    device.name(), va
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// After an invalidation, the invalidated page misses in every design
    /// (until refilled), while the page table is unchanged.
    #[test]
    fn invalidation_makes_pages_miss(
        space in space_strategy(),
        victims in proptest::collection::vec(0usize..64, 1..20),
    ) {
        prop_assume!(!space.mappings.is_empty());
        let mut pt = build_page_table(&space);
        for mut device in all_devices() {
            // Fill everything.
            for t in &space.mappings {
                let va = VirtAddr::from_page(t.vpn, 0);
                let walk = Walker::walk(&mut pt, va, AccessKind::Load);
                device.fill(t.vpn, &walk.translation.expect("mapped"), &walk.line_translations);
            }
            for &v in &victims {
                let t = &space.mappings[v % space.mappings.len()];
                device.invalidate(t.vpn, t.size);
                prop_assert!(
                    !device.lookup(t.vpn, AccessKind::Load).is_hit(),
                    "{}: hit after invalidating {}",
                    device.name(), t.vpn
                );
            }
        }
    }

    /// flush() empties every design.
    #[test]
    fn flush_empties_everything(space in space_strategy()) {
        prop_assume!(!space.mappings.is_empty());
        let mut pt = build_page_table(&space);
        for mut device in all_devices() {
            for t in &space.mappings {
                let va = VirtAddr::from_page(t.vpn, 0);
                let walk = Walker::walk(&mut pt, va, AccessKind::Load);
                device.fill(t.vpn, &walk.translation.expect("mapped"), &walk.line_translations);
            }
            device.flush();
            for t in &space.mappings {
                prop_assert!(
                    !device.lookup(t.vpn, AccessKind::Load).is_hit(),
                    "{}: hit after flush", device.name()
                );
            }
        }
    }
}
