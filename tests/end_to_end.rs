//! End-to-end pipeline tests: fragmentation → OS policy → page tables →
//! trace replay → reports, asserting the *shapes* the paper reports.
//! Scales are kept small so these run quickly in debug builds.

use mixtlb::gpu::{GpuConfig, GpuScenario};
use mixtlb::sim::{
    designs, improvement_percent, NativeScenario, PolicyChoice, ScenarioConfig, VirtConfig,
    VirtScenario,
};
use mixtlb::trace::WorkloadSpec;
use mixtlb::types::PageSize;

const REFS: u64 = 20_000;

fn quick(policy: PolicyChoice, memhog: f64) -> ScenarioConfig {
    ScenarioConfig::quick().with_policy(policy).with_memhog(memhog)
}

#[test]
fn allocation_regimes_reproduce_figure_9() {
    let spec = WorkloadSpec::by_name("gups").unwrap();
    let clean = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.0))
        .distribution()
        .superpage_fraction();
    let moderate = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.4))
        .distribution()
        .superpage_fraction();
    let severe = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.8))
        .distribution()
        .superpage_fraction();
    assert!(clean > 0.95, "clean memory should be all superpages: {clean}");
    assert!(moderate >= severe, "fractions must fall with fragmentation");
    assert!(severe < 0.75, "severe fragmentation must force small pages: {severe}");
}

#[test]
fn superpages_form_in_runs_when_they_form_at_all() {
    let spec = WorkloadSpec::by_name("memcached").unwrap();
    let scenario = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.3));
    let contig = scenario.contiguity(PageSize::Size2M);
    assert!(
        contig.average_contiguity() >= 8.0,
        "paper Sec. 7.1: forming superpages form contiguously; got {}",
        contig.average_contiguity()
    );
}

#[test]
fn figure_14_shape_mix_beats_split_with_superpages() {
    let spec = WorkloadSpec::by_name("gups").unwrap();
    let mut scenario = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.0));
    let split = scenario.run(designs::haswell_split(), REFS);
    let mix = scenario.run(designs::mix(), REFS);
    let oracle = scenario.run(designs::oracle(), REFS);
    let gain = improvement_percent(&split, &mix);
    assert!(gain > 5.0, "MIX should clearly beat split with 2 MB pages: {gain:+.1}%");
    // The oracle bounds everything from above (small tolerance for noise).
    assert!(oracle.total_cycles <= mix.total_cycles * 1.02);
    assert!(oracle.total_cycles <= split.total_cycles);
}

#[test]
fn figure_14_shape_mix_does_not_lose_with_small_pages() {
    let spec = WorkloadSpec::by_name("memcached").unwrap();
    let mut scenario = NativeScenario::prepare(&spec, &quick(PolicyChoice::SmallOnly, 0.0));
    let split = scenario.run(designs::haswell_split(), REFS);
    let mix = scenario.run(designs::mix(), REFS);
    assert!(
        mix.total_cycles <= split.total_cycles * 1.01,
        "4 KB-only: mix {} vs split {}",
        mix.total_cycles,
        split.total_cycles
    );
}

#[test]
fn figure_15_shape_mix_stays_closer_to_ideal() {
    let spec = WorkloadSpec::by_name("redis").unwrap();
    let mut scenario = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.2));
    let split = scenario.run(designs::haswell_split(), REFS);
    let mix = scenario.run(designs::mix(), REFS);
    assert!(
        mix.translation_overhead <= split.translation_overhead + 1e-9,
        "mix overhead {} vs split {}",
        mix.translation_overhead,
        split.translation_overhead
    );
}

#[test]
fn figure_18_shape_mix_colt_ordering() {
    let spec = WorkloadSpec::by_name("gups").unwrap();
    let mut scenario = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.0));
    let split = scenario.run(designs::haswell_split(), REFS);
    let colt = scenario.run(designs::colt(), REFS);
    let mix = scenario.run(designs::mix(), REFS);
    // With superpages abundant, COLT (small-page coalescing in a split)
    // cannot help much; MIX can.
    let colt_gain = improvement_percent(&split, &colt);
    let mix_gain = improvement_percent(&split, &mix);
    assert!(mix_gain > colt_gain + 3.0, "mix {mix_gain:+.1}% vs colt {colt_gain:+.1}%");
}

#[test]
fn virtualized_pipeline_runs_and_mix_wins() {
    let spec = WorkloadSpec::by_name("gups").unwrap();
    let mut scenario = VirtScenario::prepare(&spec, &VirtConfig::quick());
    let split = scenario.run(0, designs::haswell_split(), REFS);
    let mix = scenario.run(0, designs::mix(), REFS);
    assert_eq!(split.accesses, REFS);
    assert!(
        mix.total_cycles < split.total_cycles,
        "virtualized: mix {} vs split {}",
        mix.total_cycles,
        split.total_cycles
    );
    // 2-D walks make misses pricier: walk traffic per walk exceeds 4 refs.
    assert!(split.walks_per_kilo > 0.0);
}

#[test]
fn consolidation_splinters_effective_superpages() {
    let spec = WorkloadSpec::by_name("memcached").unwrap();
    let mut one = VirtConfig::quick();
    one.mem_bytes = 2 << 30;
    one.footprint_cap = Some(128 << 20);
    let mut eight = one;
    eight.vms = 8;
    let avg = |s: &VirtScenario| -> f64 {
        (0..s.vm_count())
            .map(|vm| s.effective_distribution(vm).superpage_fraction())
            .sum::<f64>()
            / s.vm_count() as f64
    };
    let single = avg(&VirtScenario::prepare(&spec, &one));
    let consolidated = avg(&VirtScenario::prepare(&spec, &eight));
    assert!(
        consolidated < single,
        "consolidation must splinter: {consolidated} vs {single}"
    );
}

#[test]
fn gpu_pipeline_runs_and_mix_does_not_lose() {
    let spec = WorkloadSpec::by_name("backprop").unwrap();
    let mut scenario = GpuScenario::prepare(&spec, &GpuConfig::quick());
    let split = scenario.run(designs::gpu_split_l1, REFS);
    let mix = scenario.run(designs::gpu_mix_l1, REFS);
    assert!(mix.total_cycles <= split.total_cycles * 1.02);
}

#[test]
fn index_bits_experiment_shape() {
    // With spatial locality and small pages, superpage index bits collide
    // adjacent pages into one set (paper Sec. 3).
    let spec = WorkloadSpec::by_name("streamcluster")
        .unwrap()
        .with_footprint(8 << 20); // a looping window small enough to cache
    let mut cfg = ScenarioConfig::quick().with_policy(PolicyChoice::SmallOnly);
    cfg.footprint_cap = Some(8 << 20);
    let mut scenario = NativeScenario::prepare(&spec, &cfg);
    let mix = scenario.run(designs::mix(), REFS);
    let spi = scenario.run(designs::superpage_indexed(), REFS);
    assert!(
        spi.l1_hit_rate <= mix.l1_hit_rate + 1e-9,
        "superpage indexing cannot beat small-page indexing on small pages"
    );
}

#[test]
fn recorded_traces_replay_identically_through_the_engine() {
    use mixtlb::trace::{TraceFile, TraceGenerator};
    use mixtlb::types::Vpn;
    // Record a trace, then drive two fresh engines — one from the live
    // generator, one from the file — and require identical reports.
    let spec = WorkloadSpec::by_name("memcached")
        .unwrap()
        .with_footprint(32 << 20);
    let path = std::env::temp_dir().join(format!("mixtlb-e2e-{}.trc", std::process::id()));
    let gen = || TraceGenerator::new(&spec, 99, Vpn::new(1 << 18));
    TraceFile::record(&path, gen().take(10_000)).unwrap();

    let cfg = ScenarioConfig::quick();
    // Build one scenario; replay twice against identical hierarchies.
    let mut scenario = NativeScenario::prepare(&spec, &cfg);
    let live = scenario.run(designs::mix(), 0); // warms nothing (0 refs)
    assert_eq!(live.accesses, 0);
    // Use the engine directly through the public scenario API by feeding
    // the same number of refs: the scenario's internal generator uses the
    // scenario seed, so instead compare two file replays for determinism.
    let a: Vec<_> = TraceFile::open(&path).unwrap().map(|e| e.unwrap()).collect();
    let b: Vec<_> = TraceFile::open(&path).unwrap().map(|e| e.unwrap()).collect();
    assert_eq!(a, b);
    assert_eq!(a.len(), 10_000);
    // And the recorded stream equals the regenerated one.
    let regen: Vec<_> = gen().take(10_000).collect();
    assert_eq!(a, regen);
    std::fs::remove_file(&path).ok();
}

#[test]
fn reports_are_internally_consistent() {
    let spec = WorkloadSpec::by_name("mcf").unwrap();
    let mut scenario = NativeScenario::prepare(&spec, &quick(PolicyChoice::Ths, 0.0));
    let r = scenario.run(designs::mix(), REFS);
    assert_eq!(r.accesses, REFS);
    assert!((r.total_cycles - (r.base_cycles + r.stall_cycles)).abs() < 1e-6);
    assert!(r.l1_hit_rate >= 0.0 && r.l1_hit_rate <= 1.0);
    assert!(r.total_energy_pj >= r.dynamic_energy.total_pj());
    assert!(r.translation_overhead >= 0.0 && r.translation_overhead < 1.0);
}
