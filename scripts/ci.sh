#!/usr/bin/env bash
# CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mixtlb-check --lint (workspace lint gate)"
cargo run --release -q -p mixtlb-check -- --lint

echo "==> mixtlb-check --model (time-boxed shootdown model check)"
# Exhaustive 2-core exploration + seeded-bug self-check; the binary
# bounds its own schedule counts, so this stays well under a minute.
timeout 300 cargo run --release -q -p mixtlb-check -- --model

echo "CI OK"
