#!/usr/bin/env bash
# CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mixtlb-check --lint (workspace lint gate)"
cargo run --release -q -p mixtlb-check -- --lint

echo "==> mixtlb-check --analyze (structural analysis gate, 13 rules)"
# Zero non-baselined findings required across all thirteen rules —
# including the interprocedural lockset-race, atomic-ordering, hot-path,
# and value-range (bit-pack-overflow / tag-range / index-bound /
# blocking-in-lock) analyses; accepted findings live in the committed
# check-baseline.json (refresh only via --update-baseline). --stats
# prints per-rule counts and wall time into the CI log so drift is
# visible. The whole front end runs in seconds; the timeout is a safety
# net, not a budget.
analyze_log=$(timeout 60 cargo run --release -q -p mixtlb-check -- --analyze . --stats)
printf '%s\n' "$analyze_log"
# The four value/blocking rules must stay at zero live findings — fix
# the code, don't baseline them in quietly.
for rule in bit-pack-overflow tag-range index-bound blocking-in-lock; do
  if ! grep -Eq "^  ${rule} +0 live" <<<"$analyze_log"; then
    echo "CI: analyzer rule ${rule} reported live findings (or vanished from --stats)" >&2
    exit 1
  fi
done
# Workspace pin: the abstract interpreter must summarize a real slice of
# the workspace (93 fns at the time of writing), not bail out to Top.
summarized=$(sed -n 's/.*abstract interpretation: \([0-9][0-9]*\) value-summarized.*/\1/p' <<<"$analyze_log")
if [[ -z "$summarized" || "$summarized" -le 40 ]]; then
  echo "CI: value summaries collapsed (summarized=${summarized:-missing})" >&2
  exit 1
fi

echo "==> mixtlb-check --model (time-boxed shootdown model check)"
# Exhaustive 2-core exploration + seeded-bug self-check; the binary
# bounds its own schedule counts, so this stays well under a minute.
timeout 300 cargo run --release -q -p mixtlb-check -- --model

if [[ "${MIXTLB_SKIP_SMP_STRESS:-0}" == "1" ]]; then
  echo "==> smp stress skipped (MIXTLB_SKIP_SMP_STRESS=1)"
else
  echo "==> smp many-core stress (work stealing + ASID rollover + epoch shootdowns)"
  # A scaled-down cut of the 256-core/1M-space headline run: 64 cores over
  # 200k spaces forces ~48 ASID generations of 12-bit tag reuse through the
  # work-stealing workers, asserts zero stale-generation TLB hits, and
  # prints eager vs epoch-batched shootdown cycles side by side. Runs in a
  # couple of seconds; the timeout is a safety net.
  timeout 300 cargo run --release -q -p mixtlb-bench --bin smp -- \
    --cores 64 --spaces 200_000
fi

if [[ "${MIXTLB_SKIP_PERFGATE:-0}" == "1" ]]; then
  echo "==> perfgate skipped (MIXTLB_SKIP_PERFGATE=1)"
else
  echo "==> perfgate self-test (gate logic on synthetic reports)"
  timeout 60 cargo run --release -q -p mixtlb-perf --bin perfgate -- self-test

  echo "==> perfgate regression gate (quick measure vs committed BENCH_*.json)"
  # Replays the two most timing-sensitive pinned corpus workloads and
  # compares scalar-split-normalized throughput against the most recent
  # committed BENCH_<pr>.json. Normalization cancels uniform machine-speed
  # differences between the runner that committed the baseline and this
  # one; --aggregate gates the per-path geomean rather than individual
  # triples because per-process allocation layout moves nanosecond-scale
  # batched loops by up to ~3.5x per triple on shared runners (measured),
  # while a real regression moves the whole path. The multi-thread
  # ws-batched path additionally gates at 1.5x this tolerance: its worker
  # threads time-slice on however many CPUs the runner exposes, adding
  # scheduler noise the single-thread paths don't carry. Tighten on a
  # dedicated quiet machine: MIXTLB_PERFGATE_TOLERANCE=0.10 ./scripts/ci.sh
  baseline=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1)
  if [[ -z "$baseline" ]]; then
    echo "no committed BENCH_*.json baseline; skipping gate" >&2
    exit 1
  fi
  timeout 600 cargo run --release -q -p mixtlb-perf --bin perfgate -- \
    measure --quick --out target/BENCH_ci.json
  timeout 60 cargo run --release -q -p mixtlb-perf --bin perfgate -- \
    gate --prev "$baseline" --curr target/BENCH_ci.json --aggregate \
    --tolerance "${MIXTLB_PERFGATE_TOLERANCE:-0.40}"
fi

echo "CI OK"
