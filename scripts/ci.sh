#!/usr/bin/env bash
# CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
