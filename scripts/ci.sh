#!/usr/bin/env bash
# CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mixtlb-check --lint (workspace lint gate)"
cargo run --release -q -p mixtlb-check -- --lint

echo "==> mixtlb-check --analyze (structural analysis gate)"
# Zero non-baselined findings required; accepted findings live in the
# committed check-baseline.json (refresh only via --update-baseline).
# The whole front end runs in well under a second; the timeout is a
# safety net, not a budget.
timeout 30 cargo run --release -q -p mixtlb-check -- --analyze .

echo "==> mixtlb-check --model (time-boxed shootdown model check)"
# Exhaustive 2-core exploration + seeded-bug self-check; the binary
# bounds its own schedule counts, so this stays well under a minute.
timeout 300 cargo run --release -q -p mixtlb-check -- --model

echo "CI OK"
