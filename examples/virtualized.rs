//! Virtualized translation: guest page tables, EPTs, 24-reference 2-D
//! walks, page-size splintering, and MIX vs split under consolidation.
//!
//! ```text
//! cargo run --release --example virtualized
//! ```

#![forbid(unsafe_code)]

use mixtlb::sim::{designs, improvement_percent, VirtConfig, VirtScenario};
use mixtlb::trace::WorkloadSpec;
use mixtlb::types::PageSize;

fn main() {
    let spec = WorkloadSpec::by_name("memcached").expect("catalog workload");
    println!("workload: {} in consolidated VMs (THS guests over a THS host)\n", spec.name);
    println!(
        "{:>4}  {:>15}  {:>12}  {:>12}  {:>14}",
        "VMs", "superpage frac", "avg contig", "split cycles", "MIX improvement"
    );
    for vms in [1u32, 2, 4] {
        let mut cfg = VirtConfig::standard(vms, 0.0);
        cfg.footprint_cap = Some(1 << 30);
        let mut scenario = VirtScenario::prepare(&spec, &cfg);
        let dist = scenario.effective_distribution(0);
        let contig = scenario.effective_contiguity(0, PageSize::Size2M);
        let split = scenario.run(0, designs::haswell_split(), 100_000);
        let mix = scenario.run(0, designs::mix(), 100_000);
        println!(
            "{:>4}  {:>14.1}%  {:>12.1}  {:>12.0}  {:>+13.1}%",
            vms,
            dist.superpage_fraction() * 100.0,
            contig.average_contiguity(),
            split.total_cycles,
            improvement_percent(&split, &mix),
        );
    }
    println!(
        "\nEvery miss costs a 2-D walk of up to 24 PTE references, so the TLB\n\
         hits MIX recovers are worth more under virtualization (paper Sec. 2).\n\
         Consolidation splinters host superpages (page sharing), shrinking the\n\
         effective superpage fraction — the trend of the paper's Figure 10."
    );
}
