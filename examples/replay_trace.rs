//! Record-once, replay-many: the Pin-style trace methodology (paper
//! Sec. 6.2) on our binary trace format. Records a workload trace to a
//! temporary file, then replays the identical reference stream through
//! two TLB designs via the translation engine.
//!
//! ```text
//! cargo run --release --example replay_trace [workload]
//! ```

#![forbid(unsafe_code)]

use mixtlb::os::{Kernel, PagingPolicy, ThsConfig};
use mixtlb::mem::{MemoryConfig, PhysicalMemory};
use mixtlb::sim::{designs, TranslationEngine, WalkBackend};
use mixtlb::trace::{TraceFile, TraceGenerator, WorkloadSpec};
use mixtlb::types::{Permissions, Vpn, PAGE_SIZE_4K};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "redis".to_owned());
    let spec = WorkloadSpec::by_name(&name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}'");
            std::process::exit(1);
        })
        .with_footprint(192 << 20);

    // Build the OS state the trace will run against.
    let mut kernel = Kernel::new(PhysicalMemory::new(MemoryConfig::with_bytes(256 << 20)));
    let space = kernel.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
    let region = Vpn::new(1 << 18);
    kernel.mmap(space, region, spec.footprint_bytes / PAGE_SIZE_4K, Permissions::rw_user())?;
    kernel.fault_all(space);

    // Record once...
    let path = std::env::temp_dir().join("mixtlb-replay-example.trc");
    let events = TraceFile::record(&path, TraceGenerator::new(&spec, 7, region).take(150_000))?;
    println!("recorded {events} events of '{}' to {}\n", spec.name, path.display());

    // ...replay many times, one engine per design, byte-identical input.
    for hierarchy in [designs::haswell_split(), designs::mix()] {
        let mut pt = kernel.space(space).page_table().clone();
        let design = hierarchy.name().to_owned();
        let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(&mut pt));
        for event in TraceFile::open(&path)? {
            engine.access(&event?);
        }
        let (stats, l1, _, _) = engine.finish();
        println!(
            "{design:>6}: {} accesses | L1 hit {:>5.1}% | walks {:>6} | stall cycles {}",
            stats.accesses,
            l1.hit_rate() * 100.0,
            stats.walks,
            stats.stall_cycles
        );
    }
    std::fs::remove_file(&path).ok();
    println!(
        "\nIdentical inputs, different designs: exactly how the paper's\n\
         Pin-trace methodology compares TLBs (Sec. 6.2)."
    );
    Ok(())
}
