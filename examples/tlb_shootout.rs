//! TLB shootout: every design in the workspace against one workload —
//! runtime, hit rates, walks, and translation energy side by side.
//!
//! ```text
//! cargo run --release --example tlb_shootout [workload]
//! ```

#![forbid(unsafe_code)]

use mixtlb::sim::{designs, improvement_percent, NativeScenario, PolicyChoice, ScenarioConfig};
use mixtlb::trace::WorkloadSpec;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gups".to_owned());
    let spec = WorkloadSpec::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'; try one of:");
        for w in WorkloadSpec::catalog() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    });
    let mut cfg = ScenarioConfig::standard();
    cfg.mem_bytes = 2 << 30;
    cfg.policy = PolicyChoice::Ths;
    println!("workload: {} | THS | 2 GB machine | 200k references\n", spec.name);
    let mut scenario = NativeScenario::prepare(&spec, &cfg);
    let split = scenario.run(designs::haswell_split(), 200_000);
    println!(
        "{:<12} {:>12} {:>9} {:>8} {:>8} {:>9} {:>11}",
        "design", "cycles", "vs split", "L1 hit", "L2 hit", "walks/k", "energy(µJ)"
    );
    let all = designs::all_cpu_designs();
    for (_, factory) in all {
        let report = scenario.run(factory(), 200_000);
        println!(
            "{:<12} {:>12.0} {:>+8.1}% {:>7.1}% {:>7.1}% {:>9.1} {:>11.2}",
            report.design,
            report.total_cycles,
            improvement_percent(&split, &report),
            report.l1_hit_rate * 100.0,
            report.l2_hit_rate * 100.0,
            report.walks_per_kilo,
            report.total_energy_pj / 1e6,
        );
    }
    println!(
        "\n(oracle = the unrealizable ideal of the paper's Figure 1; the gap\n\
         between split and oracle is the utilization lost to partitioning,\n\
         and MIX TLBs close most of it.)"
    );
}
