//! Fragmentation study: how memory fragmentation shapes the OS' page-size
//! distribution and superpage contiguity — a miniature of the paper's
//! Figures 9, 11, and 12.
//!
//! ```text
//! cargo run --release --example fragmentation_study
//! ```

#![forbid(unsafe_code)]

use mixtlb::sim::{NativeScenario, PolicyChoice, ScenarioConfig};
use mixtlb::trace::WorkloadSpec;
use mixtlb::types::PageSize;

fn main() {
    let spec = WorkloadSpec::by_name("memcached").expect("catalog workload");
    println!("workload: {} (THS, 2 GB machine)\n", spec.name);
    println!(
        "{:>8}  {:>12}  {:>14}  {:>10}  {:>9}",
        "memhog", "2MB pages", "superpage frac", "avg contig", "max run"
    );
    for hog in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut cfg = ScenarioConfig::standard();
        cfg.mem_bytes = 2 << 30;
        cfg.policy = PolicyChoice::Ths;
        cfg.memhog_fraction = hog;
        let scenario = NativeScenario::prepare(&spec, &cfg);
        let dist = scenario.distribution();
        let contig = scenario.contiguity(PageSize::Size2M);
        println!(
            "{:>7.0}%  {:>12}  {:>13.1}%  {:>10.1}  {:>9}",
            hog * 100.0,
            dist.pages_2m,
            dist.superpage_fraction() * 100.0,
            contig.average_contiguity(),
            contig.max_run()
        );
    }
    println!(
        "\nThe paper's two observations reproduce: (1) three regimes — \n\
         superpages dominate, then mix with small pages, then vanish — and\n\
         (2) when the OS can make superpages at all, it makes them in\n\
         contiguous runs, which is exactly what MIX TLB coalescing needs."
    );
}
