//! GPU address translation: per-SM L1 TLBs (split vs MIX) under Rodinia-
//! like kernels sharing one virtual address space with the CPU.
//!
//! ```text
//! cargo run --release --example gpu_translation
//! ```

#![forbid(unsafe_code)]

use mixtlb::gpu::{GpuConfig, GpuScenario};
use mixtlb::sim::{designs, improvement_percent};
use mixtlb::trace::{WorkloadClass, WorkloadSpec};

fn main() {
    let mut cfg = GpuConfig::standard();
    cfg.mem_bytes = 1 << 30;
    println!(
        "{} SMs | per-SM L1 TLBs | shared L2 TLB + walker | THS\n",
        cfg.sms
    );
    println!(
        "{:<12} {:>13} {:>13} {:>10} {:>13}",
        "kernel", "split cycles", "mix cycles", "mix L1", "improvement"
    );
    for spec in WorkloadSpec::of_class(WorkloadClass::Gpu) {
        let mut scenario = GpuScenario::prepare(&spec, &cfg);
        let split = scenario.run(designs::gpu_split_l1, 100_000);
        let mix = scenario.run(designs::gpu_mix_l1, 100_000);
        println!(
            "{:<12} {:>13.0} {:>13.0} {:>9.1}% {:>+12.1}%",
            spec.name,
            split.total_cycles,
            mix.total_cycles,
            mix.l1_hit_rate * 100.0,
            improvement_percent(&split, &mix),
        );
    }
    println!(
        "\nThe coalesced-stream kernels (backprop, kmeans, srad) keep more\n\
         concurrent 2 MB tiles in flight than a split design's superpage TLB\n\
         holds; MIX coalesces the adjacent tiles into a couple of entries\n\
         and serves them from the L1 (paper Sec. 7.2, GPU results)."
    );
}
