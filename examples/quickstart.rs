//! Quickstart: the MIX TLB mechanism on the paper's own example (Fig. 2-4).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use mixtlb::core::{Lookup, MixTlb, MixTlbConfig, SplitTlb, SplitTlbConfig, TlbDevice};
use mixtlb::types::{AccessKind, PageSize, Permissions, Pfn, Translation, VirtAddr, Vpn};

fn main() {
    // The paper's Figure 2 address space (4 KB frame numbers, hex):
    //   A: a 4 KB page,  virtual 0x00000 → physical 0x00400
    //   B: a 2 MB page,  virtual 0x00400 → physical 0x00000
    //   C: a 2 MB page,  virtual 0x00600 → physical 0x00200  (contiguous with B!)
    let rw = Permissions::rw_user();
    let a = Translation::new(Vpn::new(0x000), Pfn::new(0x400), PageSize::Size4K, rw);
    let b = Translation::new(Vpn::new(0x400), Pfn::new(0x000), PageSize::Size2M, rw);
    let c = Translation::new(Vpn::new(0x600), Pfn::new(0x200), PageSize::Size2M, rw);

    println!("== The problem: a commercial split TLB ==");
    let mut split = SplitTlb::new(SplitTlbConfig::haswell_l1());
    for t in [a, b, c] {
        split.fill(t.vpn, &t, &[t]);
    }
    println!(
        "three translations consume three entries across three separate\n\
         per-size TLBs; whichever page size your workload skips, its TLB\n\
         idles. Entries used: 4KB-part=1, 2MB-part=2, 1GB-part=0\n"
    );

    println!("== MIX TLBs: one array, all sizes, coalescing ==");
    // A 2-set MIX TLB, exactly as drawn in the paper's Figure 3.
    let mut mix = MixTlb::new(MixTlbConfig::l1(2, 2));
    mix.fill(a.vpn, &a, &[a]);
    // A page-table walk for B reads a 64-byte PTE cache line — which also
    // contains C. The coalescing logic spots that B and C are contiguous
    // (virtually AND physically) and builds ONE entry for both, mirrored
    // into each set.
    mix.fill(b.vpn, &b, &[b, c]);
    println!("filled A, then B (whose PTE cache line also held C)");
    println!("TLB now holds {} entries (A + a B-C mirror per set)\n", mix.occupancy());

    // Lookups probe exactly one set — bit 12 routes even/odd 4 KB regions.
    for va in [0x0000_0123u64, 0x0040_0000, 0x0047_3123, 0x0060_0000, 0x007F_FFFF] {
        let va = VirtAddr::new(va);
        match mix.lookup(va.vpn(), AccessKind::Load) {
            Lookup::Hit { translation, .. } => {
                let pa = translation.translate(va).expect("hit covers the address");
                println!("  {va} -> {pa}  ({} page, one set probed)", translation.size);
            }
            Lookup::Miss => println!("  {va} -> MISS"),
        }
    }

    let stats = mix.stats();
    println!(
        "\nstats: {} lookups, {} hits, {} fills, {} entry writes (mirroring), \
         {} sets probed",
        stats.lookups, stats.hits, stats.fills, stats.entries_written, stats.sets_probed
    );
    println!(
        "\nCoalescing offset mirroring: B and C together cost one entry per\n\
         set — the same net capacity a split design spends on B and C alone,\n\
         but usable by ANY page-size distribution."
    );
}
