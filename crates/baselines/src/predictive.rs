//! Prediction-enhanced multi-indexing TLBs (paper Sec. 5.1).
//!
//! A [`SizePredictor`] guesses the page size before lookup; the predicted
//! size is probed first, so correct predictions pay a single probe. Wrong
//! predictions fall back to probing the remaining sizes (and the miss path
//! pays for everything) — the latency-variability problem the paper points
//! out. The predictor is trained by hits and by fills after misses.

use mixtlb_types::{AccessKind, PageSize, Translation, Vpn};

use mixtlb_core::{Lookup, MultiProbeConfig, MultiProbeTlb, TlbDevice, TlbStats};

use crate::predictor::SizePredictor;
use crate::skew::{SkewTlb, SkewTlbConfig};

fn probe_order(predicted: PageSize) -> [PageSize; 3] {
    // Exactly two of the three sizes survive the filter, so the
    // fallbacks never fire; they exist to keep this allocation- and
    // panic-free.
    let mut rest = PageSize::ALL.into_iter().filter(|&s| s != predicted);
    [
        predicted,
        rest.next().unwrap_or(predicted),
        rest.next().unwrap_or(predicted),
    ]
}

macro_rules! predictive_tlb {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: $inner,
            predictor: SizePredictor,
            /// PC of the most recent missing lookup, to train on fill.
            pending_pc: Option<u64>,
            stats_name: String,
        }

        impl $name {
            /// Inner TLB access (e.g. for occupancy checks).
            pub fn inner(&self) -> &$inner {
                &self.inner
            }

            /// The predictor's `(reads, updates, mispredicts)`.
            pub fn predictor_stats(&self) -> (u64, u64, u64) {
                self.predictor.stats()
            }
        }

        impl TlbDevice for $name {
            fn name(&self) -> &str {
                &self.stats_name
            }

            fn lookup(&mut self, vpn: Vpn, kind: AccessKind) -> Lookup {
                self.lookup_pc(vpn, kind, 0)
            }

            fn lookup_pc(&mut self, vpn: Vpn, kind: AccessKind, pc: u64) -> Lookup {
                let predicted = self.predictor.predict(pc);
                let result = self.inner_lookup(vpn, kind, predicted);
                match &result {
                    Lookup::Hit { translation, .. } => {
                        self.predictor.update(pc, translation.size);
                        self.pending_pc = None;
                    }
                    Lookup::Miss => {
                        self.pending_pc = Some(pc);
                    }
                }
                result
            }

            fn fill(&mut self, vpn: Vpn, requested: &Translation, line: &[Translation]) {
                if let Some(pc) = self.pending_pc.take() {
                    self.predictor.update(pc, requested.size);
                }
                self.inner.fill(vpn, requested, line);
            }

            fn invalidate(&mut self, vpn: Vpn, size: PageSize) {
                self.inner.invalidate(vpn, size);
            }

            fn flush(&mut self) {
                self.inner.flush();
            }

            fn invalidate_sets(&self, vpn: Vpn, size: PageSize) -> u64 {
                // The predictor plays no part in shootdowns; the inner
                // array's sweep cost is the whole cost.
                self.inner.invalidate_sets(vpn, size)
            }

            fn capacity(&self) -> usize {
                self.inner.capacity()
            }

            fn stats(&self) -> TlbStats {
                let mut stats = self.inner.stats();
                let (reads, _, miss) = self.predictor.stats();
                stats.predictor_reads = reads;
                stats.predictor_misses = miss;
                stats
            }

            fn reset_stats(&mut self) {
                self.inner.reset_stats();
            }
        }
    };
}

predictive_tlb!(
    /// Hash-rehash with page-size prediction: the predicted size's index is
    /// probed first; remaining sizes are rehashed only on a mispredict.
    ///
    /// # Examples
    ///
    /// ```
    /// use mixtlb_baselines::PredictiveHashRehash;
    /// use mixtlb_core::TlbDevice;
    /// use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, Vpn};
    ///
    /// let mut tlb = PredictiveHashRehash::new(16, 4, 64);
    /// let b = Translation::new(Vpn::new(0x400), Pfn::new(0), PageSize::Size2M,
    ///                          Permissions::rw_user());
    /// tlb.fill(b.vpn, &b, &[b]);
    /// assert!(tlb.lookup_pc(Vpn::new(0x433), AccessKind::Load, 0x88).is_hit());
    /// ```
    PredictiveHashRehash,
    MultiProbeTlb,
    "hr+pred"
);

impl PredictiveHashRehash {
    /// Creates a predictive hash-rehash TLB with the given array geometry
    /// and predictor size.
    pub fn new(sets: usize, ways: usize, predictor_slots: usize) -> PredictiveHashRehash {
        let mut config = MultiProbeConfig::all_sizes(sets, ways);
        config.name = "hr+pred".to_owned();
        PredictiveHashRehash {
            inner: MultiProbeTlb::new(config),
            predictor: SizePredictor::new(predictor_slots),
            pending_pc: None,
            stats_name: "hr+pred".to_owned(),
        }
    }

    fn inner_lookup(&mut self, vpn: Vpn, kind: AccessKind, predicted: PageSize) -> Lookup {
        self.inner.lookup_ordered(vpn, kind, &probe_order(predicted))
    }
}

predictive_tlb!(
    /// A skew-associative TLB with page-size prediction: only the predicted
    /// size's ways are read first, cutting the skew design's parallel-read
    /// energy when the prediction is right.
    PredictiveSkew,
    SkewTlb,
    "skew+pred"
);

impl PredictiveSkew {
    /// Creates a predictive skew TLB.
    pub fn new(ways_per_size: usize, way_sets: usize, predictor_slots: usize) -> PredictiveSkew {
        let mut config = SkewTlbConfig::new(ways_per_size, way_sets);
        config.name = "skew+pred".to_owned();
        PredictiveSkew {
            inner: SkewTlb::new(config),
            predictor: SizePredictor::new(predictor_slots),
            pending_pc: None,
            stats_name: "skew+pred".to_owned(),
        }
    }

    fn inner_lookup(&mut self, vpn: Vpn, kind: AccessKind, predicted: PageSize) -> Lookup {
        // Probe the predicted size's ways, then the rest. Hit/miss tallies
        // are kept on the inner skew TLB's counters via probe_size, so
        // account the logical lookup here.
        let mut stats_hack_hit: Option<Lookup> = None;
        for (i, size) in probe_order(predicted).into_iter().enumerate() {
            if i > 0 {
                self.inner.note_serial_probe();
            }
            let probe = self.inner.probe_size(vpn, size, kind);
            if probe.is_hit() {
                stats_hack_hit = Some(probe);
                break;
            }
        }
        self.inner.record_external_lookup(stats_hack_hit.as_ref());
        stats_hack_hit.unwrap_or(Lookup::Miss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_types::{Permissions, Pfn};

    fn trans(vpn: u64, pfn: u64, size: PageSize) -> Translation {
        Translation::new(Vpn::new(vpn), Pfn::new(pfn), size, Permissions::rw_user())
    }

    #[test]
    fn correct_prediction_probes_once() {
        let mut tlb = PredictiveHashRehash::new(16, 4, 64);
        let b = trans(0x400, 0x2000, PageSize::Size2M);
        tlb.fill(b.vpn, &b, &[b]);
        // Train the predictor: first lookup mispredicts (cold → 4 KB).
        tlb.lookup_pc(Vpn::new(0x400), AccessKind::Load, 0x80);
        let probes_before = tlb.stats().sets_probed;
        // Second lookup from the same PC predicts 2 MB: one probe.
        assert!(tlb.lookup_pc(Vpn::new(0x401), AccessKind::Load, 0x80).is_hit());
        assert_eq!(tlb.stats().sets_probed - probes_before, 1);
    }

    #[test]
    fn mispredictions_pay_extra_probes() {
        let mut tlb = PredictiveHashRehash::new(16, 4, 64);
        let b = trans(0x400, 0x2000, PageSize::Size2M);
        tlb.fill(b.vpn, &b, &[b]);
        // Cold predictor says 4 KB: the hit needs 2 probes.
        assert!(tlb.lookup_pc(Vpn::new(0x400), AccessKind::Load, 0x80).is_hit());
        assert_eq!(tlb.stats().sets_probed, 2);
        assert!(tlb.stats().predictor_misses >= 1);
    }

    #[test]
    fn fills_train_the_predictor_after_misses() {
        let mut tlb = PredictiveHashRehash::new(16, 4, 64);
        // Miss from PC 0x90, then fill a 1 GB translation.
        assert!(!tlb.lookup_pc(Vpn::new(1 << 18), AccessKind::Load, 0x90).is_hit());
        let g = trans(1 << 18, 2 << 18, PageSize::Size1G);
        tlb.fill(g.vpn, &g, &[g]);
        // Next lookup from that PC predicts 1 GB and hits in one probe.
        let probes_before = tlb.stats().sets_probed;
        assert!(tlb.lookup_pc(Vpn::new((1 << 18) + 5), AccessKind::Load, 0x90).is_hit());
        assert_eq!(tlb.stats().sets_probed - probes_before, 1);
    }

    #[test]
    fn predictive_skew_reads_fewer_entries_when_right() {
        let mut tlb = PredictiveSkew::new(2, 16, 64);
        let b = trans(0x400, 0x2000, PageSize::Size2M);
        tlb.fill(b.vpn, &b, &[b]);
        tlb.lookup_pc(Vpn::new(0x400), AccessKind::Load, 0x80); // trains
        let before = tlb.stats().entries_read;
        assert!(tlb.lookup_pc(Vpn::new(0x433), AccessKind::Load, 0x80).is_hit());
        // Only the 2 MB ways (2 entries) were read, not all 6.
        assert_eq!(tlb.stats().entries_read - before, 2);
    }

    #[test]
    fn plain_lookup_defaults_pc_zero() {
        let mut tlb = PredictiveHashRehash::new(16, 4, 64);
        let t = trans(7, 70, PageSize::Size4K);
        tlb.fill(t.vpn, &t, &[t]);
        assert!(tlb.lookup(Vpn::new(7), AccessKind::Load).is_hit());
    }
}
