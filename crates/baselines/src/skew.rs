//! A skew-associative TLB supporting multiple page sizes concurrently
//! (Seznec, IEEE ToC 2004; paper Sec. 5.1).

use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, Vpn};

use mixtlb_core::{Lookup, TlbDevice, TlbStats};

/// Geometry of a [`SkewTlb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewTlbConfig {
    /// Ways dedicated to each page size (total ways = 3 × this).
    pub ways_per_size: usize,
    /// Entries per way (a power of two).
    pub way_sets: usize,
    /// Design name for reports.
    pub name: String,
}

impl SkewTlbConfig {
    /// A skew TLB with `ways_per_size` ways per page size and `way_sets`
    /// entries per way.
    pub fn new(ways_per_size: usize, way_sets: usize) -> SkewTlbConfig {
        SkewTlbConfig {
            ways_per_size,
            way_sets,
            name: "skew".to_owned(),
        }
    }

    /// Total entries.
    pub fn total_entries(&self) -> usize {
        self.ways_per_size * PageSize::ALL.len() * self.way_sets
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: Vpn,
    pfn: Pfn,
    perms: Permissions,
    dirty: bool,
}

/// A skew-associative TLB.
///
/// Each page size owns `ways_per_size` ways; way `w` indexes entries with
/// its own hash of the size-aligned VPN, so translations that conflict in
/// one way usually do not conflict in another. Every lookup reads **all**
/// ways in parallel (`entries_read` grows with the sum of associativities —
/// the design's energy weakness), and replacement uses global timestamps
/// (its area weakness, which area-equivalent comparisons in the benchmarks
/// charge as fewer entries).
#[derive(Debug, Clone)]
pub struct SkewTlb {
    config: SkewTlbConfig,
    /// `slots[way][index]`; ways are grouped by size:
    /// `way = size_class * ways_per_size + k`.
    slots: Vec<Vec<Option<Entry>>>,
    stamps: Vec<Vec<u64>>,
    tick: u64,
    stats: TlbStats,
}

impl SkewTlb {
    /// Creates an empty skew TLB.
    ///
    /// # Panics
    ///
    /// Panics if `way_sets` is not a power of two or the geometry is zero.
    pub fn new(config: SkewTlbConfig) -> SkewTlb {
        assert!(config.way_sets.is_power_of_two(), "way_sets must be a power of two");
        assert!(config.ways_per_size > 0, "ways_per_size must be non-zero");
        let total_ways = config.ways_per_size * PageSize::ALL.len();
        SkewTlb {
            slots: vec![vec![None; config.way_sets]; total_ways],
            stamps: vec![vec![0; config.way_sets]; total_ways],
            tick: 0,
            config,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SkewTlbConfig {
        &self.config
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.slots
            .iter()
            .map(|w| w.iter().filter(|s| s.is_some()).count())
            .sum()
    }

    fn ways_of(&self, size: PageSize) -> std::ops::Range<usize> {
        let class = size.encode() as usize;
        let start = class * self.config.ways_per_size;
        start..start + self.config.ways_per_size
    }

    /// The skewing hash of way `w`: a way-salted multiplicative hash of the
    /// size-granular page number. (Real implementations use simple XOR
    /// skews; behaviourally what matters is that different ways disperse
    /// conflicting translations differently.)
    fn index(&self, way: usize, base: Vpn, size: PageSize) -> usize {
        let x = base.page_number(size);
        let salt = 0x9E37_79B9_7F4A_7C15u64 ^ ((way as u64 + 1) * 0x00C2_B2AE_3D27_D4EB);
        let mut h = x.wrapping_mul(salt);
        h ^= h >> 31;
        (h as usize) & (self.config.way_sets - 1)
    }

    /// Records one serial (rehash) probe driven externally.
    pub(crate) fn note_serial_probe(&mut self) {
        self.stats.serial_probes += 1;
    }

    /// Records a logical lookup outcome driven externally (the predictive
    /// wrapper probes sizes itself via [`SkewTlb::probe_size`]).
    pub(crate) fn record_external_lookup(&mut self, hit: Option<&Lookup>) {
        self.stats.lookups += 1;
        match hit {
            Some(Lookup::Hit { translation, .. }) => self.stats.record_hit(translation.size),
            _ => self.stats.misses += 1,
        }
    }

    /// Probes only the ways of one size (prediction plumbing). Counts probe
    /// cost for those ways.
    pub(crate) fn probe_size(&mut self, vpn: Vpn, size: PageSize, kind: AccessKind) -> Lookup {
        let base = vpn.align_down(size);
        self.stats.sets_probed += 1;
        self.stats.entries_read += self.config.ways_per_size as u64;
        for way in self.ways_of(size) {
            let idx = self.index(way, base, size);
            let hit = matches!(&self.slots[way][idx], Some(e) if e.vpn == base);
            if hit {
                self.tick += 1;
                self.stamps[way][idx] = self.tick;
                // lint: allow(panic) — index returned by the hit probe, entry is occupied
                let entry = self.slots[way][idx].as_mut().expect("hit slot is valid");
                let mut dirty_microop = false;
                if kind.is_store() && !entry.dirty {
                    dirty_microop = true;
                    entry.dirty = true;
                    self.stats.dirty_microops += 1;
                }
                let entry = *entry;
                return Lookup::Hit {
                    translation: Translation {
                        vpn: entry.vpn,
                        pfn: entry.pfn,
                        size,
                        perms: entry.perms,
                        accessed: true,
                        dirty: entry.dirty,
                    },
                    dirty_microop,
                    run: None,
                };
            }
        }
        Lookup::Miss
    }
}

impl TlbDevice for SkewTlb {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn lookup(&mut self, vpn: Vpn, kind: AccessKind) -> Lookup {
        self.stats.lookups += 1;
        // All ways of all sizes are read in parallel.
        let mut result = Lookup::Miss;
        for size in PageSize::ALL {
            let probe = self.probe_size(vpn, size, kind);
            if probe.is_hit() {
                debug_assert!(!result.is_hit(), "two sizes hit the same page");
                result = probe;
            }
        }
        match &result {
            Lookup::Hit { translation, .. } => self.stats.record_hit(translation.size),
            Lookup::Miss => self.stats.misses += 1,
        }
        result
    }

    fn fill(&mut self, _vpn: Vpn, requested: &Translation, _line: &[Translation]) {
        self.stats.fills += 1;
        let base = requested.vpn;
        // Refresh an existing copy if present.
        for way in self.ways_of(requested.size) {
            let idx = self.index(way, base, requested.size);
            if matches!(&self.slots[way][idx], Some(e) if e.vpn == base) {
                self.tick += 1;
                self.stamps[way][idx] = self.tick;
                self.slots[way][idx] = Some(Entry {
                    vpn: base,
                    pfn: requested.pfn,
                    perms: requested.perms,
                    dirty: requested.dirty,
                });
                self.stats.entries_written += 1;
                return;
            }
        }
        // Choose the emptiest/oldest candidate slot across this size's
        // ways (timestamp replacement).
        let (way, idx) = self
            .ways_of(requested.size)
            .map(|way| {
                let idx = self.index(way, base, requested.size);
                let key = match &self.slots[way][idx] {
                    None => 0,
                    Some(_) => self.stamps[way][idx] + 1,
                };
                (key, way, idx)
            })
            .min()
            .map(|(_, way, idx)| (way, idx))
            // lint: allow(panic) — every size class owns >= 1 way, the candidate list is never empty
            .expect("at least one way per size");
        if self.slots[way][idx].is_some() {
            self.stats.evictions += 1;
        }
        self.tick += 1;
        self.stamps[way][idx] = self.tick;
        self.slots[way][idx] = Some(Entry {
            vpn: base,
            pfn: requested.pfn,
            perms: requested.perms,
            dirty: requested.dirty,
        });
        self.stats.entries_written += 1;
    }

    fn invalidate(&mut self, vpn: Vpn, size: PageSize) {
        self.stats.invalidations += 1;
        let base = vpn.align_down(size);
        for way in self.ways_of(size) {
            let idx = self.index(way, base, size);
            if matches!(&self.slots[way][idx], Some(e) if e.vpn == base) {
                self.slots[way][idx] = None;
            }
        }
    }

    fn flush(&mut self) {
        for way in &mut self.slots {
            way.fill(None);
        }
        for way in &mut self.stamps {
            way.fill(0);
        }
    }

    fn invalidate_sets(&self, _vpn: Vpn, _size: PageSize) -> u64 {
        // The skew hashes pinpoint one candidate slot per way of the page's
        // size; all ways are probed in parallel, so the sweep is one "set"
        // wide, like a conventional design.
        1
    }

    fn capacity(&self) -> usize {
        self.config.total_entries()
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    fn trans(vpn: u64, pfn: u64, size: PageSize) -> Translation {
        Translation::new(Vpn::new(vpn), Pfn::new(pfn), size, rw())
    }

    #[test]
    fn all_sizes_coexist() {
        let mut tlb = SkewTlb::new(SkewTlbConfig::new(2, 16));
        let ts = [
            trans(7, 70, PageSize::Size4K),
            trans(0x400, 0x2000, PageSize::Size2M),
            trans(1 << 18, 2 << 18, PageSize::Size1G),
        ];
        for t in ts {
            tlb.fill(t.vpn, &t, &[t]);
        }
        for t in ts {
            let hit = tlb.lookup(t.vpn, AccessKind::Load);
            assert_eq!(hit.translation().unwrap().size, t.size);
        }
        assert_eq!(tlb.occupancy(), 3);
    }

    #[test]
    fn lookup_reads_every_way() {
        let mut tlb = SkewTlb::new(SkewTlbConfig::new(2, 16));
        tlb.lookup(Vpn::new(0), AccessKind::Load);
        // 3 sizes x 2 ways read per lookup.
        assert_eq!(tlb.stats().entries_read, 6);
    }

    #[test]
    fn skewing_disperses_conflicts() {
        // Translations that would collide under modulo indexing land in
        // different slots across ways; with 2 ways x 64 slots we expect to
        // hold far more than 2 of a 64-entry stride-conflict set.
        let mut tlb = SkewTlb::new(SkewTlbConfig::new(2, 64));
        let n = 32u64;
        for i in 0..n {
            // Stride chosen to alias badly under modulo-64 indexing.
            let t = trans(i * 64, i * 64, PageSize::Size4K);
            tlb.fill(t.vpn, &t, &[t]);
        }
        let hits = (0..n)
            .filter(|&i| tlb.lookup(Vpn::new(i * 64), AccessKind::Load).is_hit())
            .count();
        assert!(hits > n as usize / 2, "only {hits}/{n} survived skewing");
    }

    #[test]
    fn timestamps_give_lru_like_replacement() {
        let mut tlb = SkewTlb::new(SkewTlbConfig::new(1, 1));
        // One way of one slot per size: a second 4 KB fill evicts the first.
        let a = trans(1, 10, PageSize::Size4K);
        let b = trans(2, 20, PageSize::Size4K);
        tlb.fill(a.vpn, &a, &[a]);
        tlb.fill(b.vpn, &b, &[b]);
        assert!(!tlb.lookup(Vpn::new(1), AccessKind::Load).is_hit());
        assert!(tlb.lookup(Vpn::new(2), AccessKind::Load).is_hit());
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = SkewTlb::new(SkewTlbConfig::new(2, 16));
        let b = trans(0x400, 0x2000, PageSize::Size2M);
        tlb.fill(b.vpn, &b, &[b]);
        tlb.invalidate(Vpn::new(0x433), PageSize::Size2M);
        assert!(!tlb.lookup(Vpn::new(0x400), AccessKind::Load).is_hit());
        tlb.fill(b.vpn, &b, &[b]);
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn dirty_microop_semantics() {
        let mut tlb = SkewTlb::new(SkewTlbConfig::new(2, 16));
        let t = trans(7, 70, PageSize::Size4K);
        tlb.fill(t.vpn, &t, &[t]);
        match tlb.lookup(Vpn::new(7), AccessKind::Store) {
            Lookup::Hit { dirty_microop, .. } => assert!(dirty_microop),
            Lookup::Miss => panic!("expected hit"),
        }
        match tlb.lookup(Vpn::new(7), AccessKind::Store) {
            Lookup::Hit { dirty_microop, .. } => assert!(!dirty_microop),
            Lookup::Miss => panic!("expected hit"),
        }
    }

    #[test]
    fn total_entries() {
        assert_eq!(SkewTlbConfig::new(2, 16).total_entries(), 96);
    }
}
