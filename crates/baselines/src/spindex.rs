//! The rejected superpage-index-bits alternative (paper Sec. 3).

use mixtlb_core::{MixTlb, MixTlbConfig};

/// Builds a MIX-style TLB that indexes every translation with the **2 MB
/// superpage's** index bits instead of the small page's.
///
/// The upside: a 2 MB superpage maps to exactly one set, eliminating
/// mirroring. The downside (which the paper measures as a 4-8× miss
/// increase): groups of 512 spatially-adjacent 4 KB pages now collide in
/// one set, and real programs have spatial locality. The `index_bits`
/// benchmark regenerates that in-text experiment.
///
/// # Examples
///
/// ```
/// use mixtlb_baselines::superpage_indexed_mix;
/// use mixtlb_core::TlbDevice;
/// use mixtlb_types::{AccessKind, Permissions, PageSize, Pfn, Translation, Vpn};
///
/// let mut tlb = superpage_indexed_mix(16, 4);
/// let b = Translation::new(Vpn::new(0x400), Pfn::new(0), PageSize::Size2M,
///                          Permissions::rw_user());
/// tlb.fill(b.vpn, &b, &[b]);
/// assert!(tlb.lookup(Vpn::new(0x5FF), AccessKind::Load).is_hit());
/// ```
pub fn superpage_indexed_mix(sets: usize, ways: usize) -> MixTlb {
    let config = MixTlbConfig {
        extra_index_shift: 9, // index with bits 21+ (2 MB granularity)
        ..MixTlbConfig::l1(sets, ways)
    }
    .named("superpage-indexed");
    MixTlb::new(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_core::TlbDevice;
    use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, Vpn};

    fn t4k(vpn: u64, pfn: u64) -> Translation {
        Translation::new(
            Vpn::new(vpn),
            Pfn::new(pfn),
            PageSize::Size4K,
            Permissions::rw_user(),
        )
    }

    #[test]
    fn superpages_map_to_one_set_without_mirrors() {
        let mut tlb = superpage_indexed_mix(16, 4);
        let b = Translation::new(
            Vpn::new(0x400),
            Pfn::new(0x2000),
            PageSize::Size2M,
            Permissions::rw_user(),
        );
        tlb.fill(b.vpn, &b, &[b]);
        assert_eq!(tlb.occupancy(), 1, "no mirrors with superpage indexing");
        assert!(tlb.lookup(Vpn::new(0x433), AccessKind::Load).is_hit());
    }

    #[test]
    fn adjacent_small_pages_conflict_in_one_set() {
        // 16 sets, 1 way: 5 spatially-adjacent small pages all collide in
        // one set; only the last survives.
        let mut tlb = superpage_indexed_mix(16, 1);
        for i in 0..5u64 {
            let t = t4k(0x400 + i, 0x900 + i);
            tlb.fill(t.vpn, &t, &[t]);
        }
        let hits = (0..5u64)
            .filter(|&i| tlb.lookup(Vpn::new(0x400 + i), AccessKind::Load).is_hit())
            .count();
        assert_eq!(hits, 1);
        // The same workload on a small-page-indexed MIX TLB keeps all 5.
        let mut mix = MixTlb::new(MixTlbConfig::l1(16, 1));
        for i in 0..5u64 {
            let t = t4k(0x400 + i, 0x900 + i);
            mix.fill(t.vpn, &t, &[t]);
        }
        let mix_hits = (0..5u64)
            .filter(|&i| mix.lookup(Vpn::new(0x400 + i), AccessKind::Load).is_hit())
            .count();
        assert_eq!(mix_hits, 5);
    }
}
