//! A PC-indexed page-size predictor (Papadopoulou et al., HPCA 2014).

use mixtlb_types::PageSize;

/// Predicts the page size of a memory access from the PC of the
/// instruction making it, with 2-bit-counter-style hysteresis: a stored
/// prediction must lose confidence twice before being replaced.
///
/// # Examples
///
/// ```
/// use mixtlb_baselines::SizePredictor;
/// use mixtlb_types::PageSize;
///
/// let mut pred = SizePredictor::new(64);
/// assert_eq!(pred.predict(0x400), PageSize::Size4K); // cold default
/// pred.update(0x400, PageSize::Size2M);
/// pred.update(0x400, PageSize::Size2M);
/// assert_eq!(pred.predict(0x400), PageSize::Size2M);
/// ```
#[derive(Debug, Clone)]
pub struct SizePredictor {
    /// `(predicted size, confidence 0..=3)` per slot.
    table: Vec<(PageSize, u8)>,
    reads: u64,
    updates: u64,
    mispredicts: u64,
}

impl SizePredictor {
    /// Creates a predictor with `slots` entries (a power of two). Cold
    /// entries predict 4 KB — the architectural base size.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two.
    pub fn new(slots: usize) -> SizePredictor {
        assert!(slots.is_power_of_two(), "predictor slots must be a power of two");
        SizePredictor {
            table: vec![(PageSize::Size4K, 0); slots],
            reads: 0,
            updates: 0,
            mispredicts: 0,
        }
    }

    fn slot(&self, pc: u64) -> usize {
        // Drop the low bits (instruction alignment) before indexing.
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// Predicts the page size for an access made by `pc`.
    pub fn predict(&mut self, pc: u64) -> PageSize {
        self.reads += 1;
        self.table[self.slot(pc)].0
    }

    /// Trains the predictor with the actual size observed for `pc`.
    /// Counts a misprediction if the stored prediction disagreed.
    pub fn update(&mut self, pc: u64, actual: PageSize) {
        self.updates += 1;
        let slot = self.slot(pc);
        let (predicted, confidence) = &mut self.table[slot];
        if *predicted == actual {
            *confidence = (*confidence + 1).min(3);
        } else {
            self.mispredicts += 1;
            if *confidence == 0 {
                *predicted = actual;
                *confidence = 1;
            } else {
                *confidence -= 1;
            }
        }
    }

    /// `(reads, updates, mispredicts)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reads, self.updates, self.mispredicts)
    }

    /// Misprediction rate over all updates; 0 with no updates.
    pub fn mispredict_rate(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictions_default_to_4k() {
        let mut p = SizePredictor::new(16);
        assert_eq!(p.predict(0), PageSize::Size4K);
        assert_eq!(p.predict(0xFFFF_FFFF), PageSize::Size4K);
    }

    #[test]
    fn learns_stable_sizes() {
        let mut p = SizePredictor::new(16);
        p.update(0x100, PageSize::Size1G);
        assert_eq!(p.predict(0x100), PageSize::Size1G);
    }

    #[test]
    fn hysteresis_resists_single_flips() {
        let mut p = SizePredictor::new(16);
        p.update(0x100, PageSize::Size2M);
        p.update(0x100, PageSize::Size2M);
        // One disagreement lowers confidence but keeps the prediction.
        p.update(0x100, PageSize::Size4K);
        assert_eq!(p.predict(0x100), PageSize::Size2M);
        // Sustained disagreement eventually flips it.
        p.update(0x100, PageSize::Size4K);
        p.update(0x100, PageSize::Size4K);
        assert_eq!(p.predict(0x100), PageSize::Size4K);
    }

    #[test]
    fn distinct_pcs_use_distinct_slots() {
        let mut p = SizePredictor::new(16);
        p.update(0x100, PageSize::Size2M);
        assert_eq!(p.predict(0x104), PageSize::Size4K);
        assert_eq!(p.predict(0x100), PageSize::Size2M);
    }

    #[test]
    fn mispredict_accounting() {
        let mut p = SizePredictor::new(16);
        p.update(0, PageSize::Size4K); // agrees with cold default
        p.update(0, PageSize::Size2M); // mispredict
        let (_, updates, miss) = p.stats();
        assert_eq!(updates, 2);
        assert_eq!(miss, 1);
        assert!((p.mispredict_rate() - 0.5).abs() < 1e-12);
    }
}
