//! Comparator TLB designs from the MIX TLB paper's Sec. 5: multi-indexing
//! schemes (hash-rehash, skew-associative, and their prediction-enhanced
//! variants), the COLT family, and the rejected superpage-index-bits
//! alternative.
//!
//! Everything here implements the same [`TlbDevice`] interface as the
//! designs in `mixtlb-core`, so the translation engine, energy model, and
//! differential tests treat them interchangeably:
//!
//! * [`SkewTlb`] — Seznec-style skew-associative TLB: every page size gets
//!   its own ways, each with its own hash function; lookups read *all* ways
//!   in parallel (the energy cost Sec. 5.1 criticizes) and replacement uses
//!   timestamps.
//! * [`SizePredictor`] — a PC-indexed page-size predictor with hysteresis
//!   (Papadopoulou et al., HPCA 2014).
//! * [`PredictiveHashRehash`] / [`PredictiveSkew`] — probe the predicted
//!   size first, paying extra probes only on mispredictions.
//! * [`CoalescedSizeTlb`] — a per-size COLT array (coalesces up to 4
//!   contiguous pages of one size into an entry).
//! * [`HeteroSplitTlb`] with constructors [`colt_split`] and
//!   [`colt_plus_plus_split`] — split hierarchies whose parts coalesce
//!   (COLT and the paper's COLT++ extension, Sec. 7.2).
//! * [`superpage_indexed_mix`] — the Sec. 3 strawman that indexes with
//!   2 MB bits, mapping 512 adjacent small pages to one set.
//!
//! # Examples
//!
//! ```
//! use mixtlb_baselines::{SkewTlb, SkewTlbConfig};
//! use mixtlb_core::TlbDevice;
//! use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, Vpn};
//!
//! let mut tlb = SkewTlb::new(SkewTlbConfig::new(2, 16));
//! let b = Translation::new(Vpn::new(0x400), Pfn::new(0), PageSize::Size2M,
//!                          Permissions::rw_user());
//! tlb.fill(b.vpn, &b, &[b]);
//! assert!(tlb.lookup(Vpn::new(0x433), AccessKind::Load).is_hit());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod colt;
mod predictive;
mod predictor;
mod skew;
mod spindex;

pub use colt::{colt_plus_plus_split, colt_split, CoalescedSizeTlb, CoalescedSizeTlbConfig, HeteroSplitTlb};
pub use predictive::{PredictiveHashRehash, PredictiveSkew};
pub use predictor::SizePredictor;
pub use skew::{SkewTlb, SkewTlbConfig};
pub use spindex::superpage_indexed_mix;

pub use mixtlb_core::TlbDevice;
