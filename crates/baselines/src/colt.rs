//! COLT-style coalesced TLBs (Pham et al., MICRO 2012) and the split
//! hierarchies built from them (paper Secs. 5.2 and 7.2).

use mixtlb_types::{AccessKind, PageSize, Permissions, Translation, Vpn};

use mixtlb_core::{Lookup, SingleSizeTlbConfig, SingleSizeTlb, TlbDevice, TlbStats};

/// Geometry of a [`CoalescedSizeTlb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalescedSizeTlbConfig {
    /// The one page size cached.
    pub size: PageSize,
    /// Number of sets (a power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Maximum contiguous pages coalesced per entry (a power of two,
    /// ≤ 128; the paper compares against 4).
    pub bundle: u32,
    /// Design name for reports.
    pub name: String,
}

impl CoalescedSizeTlbConfig {
    /// A COLT array for one size with bundle 4 (the paper's comparison
    /// point).
    pub fn colt4(size: PageSize, sets: usize, ways: usize) -> CoalescedSizeTlbConfig {
        CoalescedSizeTlbConfig {
            size,
            sets,
            ways,
            bundle: 4,
            name: format!("colt-{size}"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Bundle-base page number (aligned to `bundle` pages of `size`).
    bundle_base: Vpn,
    /// PFN anchor for the bundle base (wrapping arithmetic).
    anchor_pfn: u64,
    bits: u128,
    perms: Permissions,
    dirty: bool,
}

/// A per-size COLT TLB: a set-associative array whose entries coalesce up
/// to `bundle` virtually- and physically-contiguous pages of one size,
/// indexed at bundle granularity (each bundle maps to exactly one set — no
/// mirroring, unlike MIX TLBs, because the page size is fixed).
///
/// # Examples
///
/// ```
/// use mixtlb_baselines::{CoalescedSizeTlb, CoalescedSizeTlbConfig};
/// use mixtlb_core::TlbDevice;
/// use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, Vpn};
///
/// let cfg = CoalescedSizeTlbConfig::colt4(PageSize::Size4K, 16, 4);
/// let mut tlb = CoalescedSizeTlb::new(cfg);
/// let line: Vec<_> = (0..4)
///     .map(|i| Translation::new(Vpn::new(0x100 + i), Pfn::new(0x900 + i),
///                               PageSize::Size4K, Permissions::rw_user()))
///     .collect();
/// tlb.fill(line[0].vpn, &line[0], &line); // 4 pages in one entry
/// assert!(tlb.lookup(Vpn::new(0x103), AccessKind::Load).is_hit());
/// assert_eq!(tlb.occupancy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CoalescedSizeTlb {
    config: CoalescedSizeTlbConfig,
    /// `slots[set * ways + way]`.
    slots: Vec<Option<Entry>>,
    stamps: Vec<u64>,
    tick: u64,
    stats: TlbStats,
}

impl CoalescedSizeTlb {
    /// Creates an empty COLT array.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (non-power-of-two sets/bundle, or
    /// bundle above 128).
    pub fn new(config: CoalescedSizeTlbConfig) -> CoalescedSizeTlb {
        assert!(config.sets.is_power_of_two(), "set count must be a power of two");
        assert!(config.bundle.is_power_of_two() && config.bundle <= 128,
            "bundle must be a power of two ≤ 128");
        assert!(config.ways > 0, "ways must be non-zero");
        let slots = config.sets * config.ways;
        CoalescedSizeTlb {
            slots: vec![None; slots],
            stamps: vec![0; slots],
            tick: 0,
            config,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CoalescedSizeTlbConfig {
        &self.config
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    fn bundle_pages(&self) -> u64 {
        u64::from(self.config.bundle) * self.config.size.pages_4k()
    }

    fn bundle_base(&self, vpn: Vpn) -> Vpn {
        vpn.align_down_pages(self.bundle_pages())
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        let idx = vpn.chunk_index(self.bundle_pages());
        (idx as usize) & (self.config.sets - 1)
    }

    fn pos_of(&self, vpn: Vpn) -> u32 {
        let pos = vpn
            .page_offset_from(self.bundle_base(vpn), self.config.size)
            // lint: allow(panic) — bundle_base aligns downward, so vpn >= base by construction
            .expect("vpn precedes its own bundle base");
        u32::try_from(pos)
            // lint: allow(panic) — bundle positions are bounded by the configured bundle size (<= 8 for COLT)
            .expect("bundle position exceeds the configured bundle size")
    }

    fn find(&self, set: usize, base: Vpn) -> Option<usize> {
        (0..self.config.ways)
            .find(|&w| matches!(&self.slots[set * self.config.ways + w],
                Some(e) if e.bundle_base == base))
    }
}

impl TlbDevice for CoalescedSizeTlb {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn lookup(&mut self, vpn: Vpn, kind: AccessKind) -> Lookup {
        self.stats.lookups += 1;
        self.stats.sets_probed += 1;
        self.stats.entries_read += self.config.ways as u64;
        let base = self.bundle_base(vpn);
        let set = self.set_of(vpn);
        let pos = self.pos_of(vpn);
        if let Some(way) = self.find(set, base) {
            let slot = set * self.config.ways + way;
            let covers = self.slots[slot].as_ref().is_some_and(|e| e.bits & (1 << pos) != 0);
            if covers {
                self.tick += 1;
                self.stamps[slot] = self.tick;
                // lint: allow(panic) — slot was just found occupied by the probe above
                let entry = self.slots[slot].as_mut().expect("slot is valid");
                let singleton = entry.bits.count_ones() == 1;
                let mut dirty_microop = false;
                if kind.is_store() && !entry.dirty {
                    dirty_microop = true;
                    self.stats.dirty_microops += 1;
                    if singleton {
                        entry.dirty = true;
                    }
                }
                let entry = *entry;
                let size = self.config.size;
                self.stats.record_hit(size);
                // Maximal contiguous run of set bits around the hit.
                let mut run_start = pos;
                while run_start > 0 && entry.bits & (1 << (run_start - 1)) != 0 {
                    run_start -= 1;
                }
                let mut run_end = pos + 1;
                while run_end < self.config.bundle && entry.bits & (1 << run_end) != 0 {
                    run_end += 1;
                }
                let run = Some(mixtlb_core::CoalescedRun {
                    first: Translation {
                        vpn: Vpn::new(base.raw() + u64::from(run_start) * size.pages_4k()),
                        pfn: mixtlb_types::Pfn::new(
                            entry
                                .anchor_pfn
                                .wrapping_add(u64::from(run_start) * size.pages_4k()),
                        ),
                        size,
                        perms: entry.perms,
                        accessed: true,
                        dirty: entry.dirty,
                    },
                    len: run_end - run_start,
                });
                return Lookup::Hit {
                    translation: Translation {
                        vpn: Vpn::new(base.raw() + u64::from(pos) * size.pages_4k()),
                        pfn: mixtlb_types::Pfn::new(
                            entry.anchor_pfn.wrapping_add(u64::from(pos) * size.pages_4k()),
                        ),
                        size,
                        perms: entry.perms,
                        accessed: true,
                        dirty: entry.dirty,
                    },
                    dirty_microop,
                    run,
                };
            }
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    fn fill(&mut self, _vpn: Vpn, requested: &Translation, line: &[Translation]) {
        if requested.size != self.config.size {
            return;
        }
        self.stats.fills += 1;
        let base = self.bundle_base(requested.vpn);
        let anchor = requested
            .pfn
            .raw()
            .wrapping_sub(requested.vpn.raw() - base.raw());
        // Coalesce qualifying line neighbours (same bundle, contiguous,
        // same permissions, accessed).
        let mut bits = 0u128;
        let mut all_dirty = true;
        let take = |t: &Translation, bits: &mut u128, all_dirty: &mut bool| {
            if t.size == self.config.size
                && t.perms == requested.perms
                && t.accessed
                && self.bundle_base(t.vpn) == base
                && t.pfn.raw() == anchor.wrapping_add(t.vpn.raw() - base.raw())
            {
                *bits |= 1 << self.pos_of(t.vpn);
                *all_dirty &= t.dirty;
            }
        };
        for t in line {
            take(t, &mut bits, &mut all_dirty);
        }
        take(requested, &mut bits, &mut all_dirty);
        let set = self.set_of(requested.vpn);
        if let Some(way) = self.find(set, base) {
            let slot = set * self.config.ways + way;
            self.tick += 1;
            self.stamps[slot] = self.tick;
            // lint: allow(panic) — slot was just found occupied by the probe above
            let entry = self.slots[slot].as_mut().expect("slot is valid");
            if entry.anchor_pfn == anchor && entry.perms == requested.perms {
                let before = entry.bits.count_ones();
                entry.bits |= bits;
                entry.dirty = entry.dirty && all_dirty;
                if entry.bits.count_ones() > before {
                    self.stats.coalesce_merges += 1;
                }
            } else {
                *entry = Entry {
                    bundle_base: base,
                    anchor_pfn: anchor,
                    bits,
                    perms: requested.perms,
                    dirty: all_dirty,
                };
            }
            self.stats.entries_written += 1;
            return;
        }
        // Insert into an empty way or evict LRU.
        let ways = self.config.ways;
        let way = (0..ways)
            .find(|&w| self.slots[set * ways + w].is_none())
            .unwrap_or_else(|| {
                (0..ways)
                    .min_by_key(|&w| self.stamps[set * ways + w])
                    // lint: allow(panic) — ways >= 1 by construction, the min always exists
                    .expect("at least one way")
            });
        let slot = set * ways + way;
        if self.slots[slot].is_some() {
            self.stats.evictions += 1;
        }
        self.tick += 1;
        self.stamps[slot] = self.tick;
        self.slots[slot] = Some(Entry {
            bundle_base: base,
            anchor_pfn: anchor,
            bits,
            perms: requested.perms,
            dirty: all_dirty,
        });
        self.stats.entries_written += 1;
    }

    fn invalidate(&mut self, vpn: Vpn, size: PageSize) {
        self.stats.invalidations += 1;
        if size != self.config.size {
            return;
        }
        let base = self.bundle_base(vpn);
        let set = self.set_of(vpn);
        let pos = self.pos_of(vpn);
        if let Some(way) = self.find(set, base) {
            let slot = set * self.config.ways + way;
            let empty = {
                // lint: allow(panic) — slot occupancy established by the surrounding branch
                let entry = self.slots[slot].as_mut().expect("slot is valid");
                entry.bits &= !(1 << pos);
                entry.bits == 0
            };
            if empty {
                self.slots[slot] = None;
            }
        }
    }

    fn flush(&mut self) {
        self.slots.fill(None);
        self.stamps.fill(0);
        self.tick = 0;
    }

    fn invalidate_sets(&self, _vpn: Vpn, size: PageSize) -> u64 {
        // Bundle indexing still puts the page in exactly one set; sizes this
        // array does not cache cost nothing.
        u64::from(size == self.config.size)
    }

    fn capacity(&self) -> usize {
        self.config.sets * self.config.ways
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }
}

/// A split TLB whose parts are arbitrary [`TlbDevice`]s — used to assemble
/// the COLT and COLT++ hierarchies. All parts are probed in parallel on
/// lookup; fills reach every part (each part ignores sizes it does not
/// cache).
pub struct HeteroSplitTlb {
    parts: Vec<Box<dyn TlbDevice>>,
    name: String,
    lookups: u64,
    hits: u64,
    misses: u64,
    hits_by_size: [u64; 3],
    dirty_microops: u64,
    invalidations: u64,
    fills: u64,
}

impl std::fmt::Debug for HeteroSplitTlb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeteroSplitTlb")
            .field("name", &self.name)
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl HeteroSplitTlb {
    /// Assembles a split TLB from parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(name: &str, parts: Vec<Box<dyn TlbDevice>>) -> HeteroSplitTlb {
        assert!(!parts.is_empty(), "a split TLB needs at least one part");
        HeteroSplitTlb {
            parts,
            name: name.to_owned(),
            lookups: 0,
            hits: 0,
            misses: 0,
            hits_by_size: [0; 3],
            dirty_microops: 0,
            invalidations: 0,
            fills: 0,
        }
    }
}

impl TlbDevice for HeteroSplitTlb {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&mut self, vpn: Vpn, kind: AccessKind) -> Lookup {
        self.lookups += 1;
        let mut result = Lookup::Miss;
        for part in &mut self.parts {
            let probe = part.lookup(vpn, kind);
            if probe.is_hit() {
                debug_assert!(!result.is_hit(), "two parts hit the same page");
                result = probe;
            }
        }
        match &result {
            Lookup::Hit { translation, dirty_microop, .. } => {
                self.hits += 1;
                self.hits_by_size[translation.size.encode() as usize] += 1;
                if *dirty_microop {
                    self.dirty_microops += 1;
                }
            }
            Lookup::Miss => self.misses += 1,
        }
        result
    }

    fn fill(&mut self, vpn: Vpn, requested: &Translation, line: &[Translation]) {
        self.fills += 1;
        for part in &mut self.parts {
            part.fill(vpn, requested, line);
        }
    }

    fn invalidate(&mut self, vpn: Vpn, size: PageSize) {
        self.invalidations += 1;
        for part in &mut self.parts {
            part.invalidate(vpn, size);
        }
    }

    fn flush(&mut self) {
        for part in &mut self.parts {
            part.flush();
        }
    }

    fn invalidate_sets(&self, vpn: Vpn, size: PageSize) -> u64 {
        self.parts.iter().map(|p| p.invalidate_sets(vpn, size)).sum()
    }

    fn capacity(&self) -> usize {
        self.parts.iter().map(|p| p.capacity()).sum()
    }

    fn stats(&self) -> TlbStats {
        // Top-level lookup/hit/miss tallies + probe/write costs from parts
        // (the parts' own lookup tallies describe probes, not logical
        // lookups, and are intentionally discarded).
        let mut merged = TlbStats {
            lookups: self.lookups,
            hits: self.hits,
            misses: self.misses,
            hits_by_size: self.hits_by_size,
            dirty_microops: self.dirty_microops,
            invalidations: self.invalidations,
            fills: self.fills,
            ..TlbStats::default()
        };
        for part in &self.parts {
            let ps = part.stats();
            merged.sets_probed += ps.sets_probed;
            merged.entries_read += ps.entries_read;
            merged.entries_written += ps.entries_written;
            merged.evictions += ps.evictions;
            merged.coalesce_merges += ps.coalesce_merges;
            merged.dup_merges += ps.dup_merges;
            merged.serial_probes += ps.serial_probes;
        }
        merged
    }

    fn reset_stats(&mut self) {
        self.lookups = 0;
        self.hits = 0;
        self.misses = 0;
        self.hits_by_size = [0; 3];
        self.dirty_microops = 0;
        self.invalidations = 0;
        self.fills = 0;
        for part in &mut self.parts {
            part.reset_stats();
        }
    }
}

/// The original COLT design in a Haswell-style split: a coalescing 4 KB
/// part (bundle 4) next to conventional 2 MB and 1 GB parts.
pub fn colt_split() -> HeteroSplitTlb {
    HeteroSplitTlb::new(
        "colt",
        vec![
            Box::new(CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
                PageSize::Size4K,
                16,
                4,
            ))),
            Box::new(SingleSizeTlb::new(SingleSizeTlbConfig::set_associative(
                PageSize::Size2M,
                8,
                4,
            ))),
            Box::new(SingleSizeTlb::new(SingleSizeTlbConfig::fully_associative(
                PageSize::Size1G,
                4,
            ))),
        ],
    )
}

/// COLT++ (paper Sec. 7.2): every split part coalesces its own size —
/// contiguous superpages too — but the parts remain split, so capacity is
/// still partitioned by page size.
pub fn colt_plus_plus_split() -> HeteroSplitTlb {
    HeteroSplitTlb::new(
        "colt++",
        vec![
            Box::new(CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
                PageSize::Size4K,
                16,
                4,
            ))),
            Box::new(CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
                PageSize::Size2M,
                8,
                4,
            ))),
            Box::new(CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
                PageSize::Size1G,
                1,
                4,
            ))),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_types::Pfn;

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    fn t4k(vpn: u64, pfn: u64) -> Translation {
        Translation::new(Vpn::new(vpn), Pfn::new(pfn), PageSize::Size4K, rw())
    }

    fn sp2m(vpn: u64, pfn: u64) -> Translation {
        Translation::new(Vpn::new(vpn), Pfn::new(pfn), PageSize::Size2M, rw())
    }

    #[test]
    fn colt_coalesces_contiguous_small_pages() {
        let mut tlb = CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
            PageSize::Size4K,
            16,
            4,
        ));
        let line: Vec<Translation> = (0..4).map(|i| t4k(0x100 + i, 0x900 + i)).collect();
        tlb.fill(line[0].vpn, &line[0], &line);
        assert_eq!(tlb.occupancy(), 1);
        for i in 0..4u64 {
            let hit = tlb.lookup(Vpn::new(0x100 + i), AccessKind::Load);
            assert_eq!(
                hit.translation().unwrap().pfn,
                Pfn::new(0x900 + i),
                "page {i}"
            );
        }
    }

    #[test]
    fn colt_respects_bundle_alignment() {
        let mut tlb = CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
            PageSize::Size4K,
            16,
            4,
        ));
        // 0x102 and 0x104 are contiguous but in different aligned bundles
        // ([0x100,0x104) vs [0x104,0x108)).
        let a = t4k(0x102, 0x902);
        let b = t4k(0x104, 0x904);
        tlb.fill(a.vpn, &a, &[a, b]);
        assert!(tlb.lookup(Vpn::new(0x102), AccessKind::Load).is_hit());
        assert!(!tlb.lookup(Vpn::new(0x104), AccessKind::Load).is_hit());
    }

    #[test]
    fn colt_non_contiguous_frames_do_not_coalesce() {
        let mut tlb = CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
            PageSize::Size4K,
            16,
            4,
        ));
        let a = t4k(0x100, 0x900);
        let b = t4k(0x101, 0x777); // not anchor-consistent
        tlb.fill(a.vpn, &a, &[a, b]);
        assert!(tlb.lookup(Vpn::new(0x100), AccessKind::Load).is_hit());
        assert!(!tlb.lookup(Vpn::new(0x101), AccessKind::Load).is_hit());
    }

    #[test]
    fn colt_superpage_array_coalesces_superpages() {
        let mut tlb = CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
            PageSize::Size2M,
            8,
            4,
        ));
        let line: Vec<Translation> = (0..4)
            .map(|i| sp2m(0x4000 + i * 512, 0x10_0000 + i * 512))
            .collect();
        tlb.fill(line[0].vpn, &line[0], &line);
        assert_eq!(tlb.occupancy(), 1);
        for i in 0..4u64 {
            assert!(tlb
                .lookup(Vpn::new(0x4000 + i * 512 + 99), AccessKind::Load)
                .is_hit());
        }
    }

    #[test]
    fn colt_invalidation_clears_one_bit() {
        let mut tlb = CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
            PageSize::Size4K,
            16,
            4,
        ));
        let line: Vec<Translation> = (0..4).map(|i| t4k(0x100 + i, 0x900 + i)).collect();
        tlb.fill(line[0].vpn, &line[0], &line);
        tlb.invalidate(Vpn::new(0x101), PageSize::Size4K);
        assert!(tlb.lookup(Vpn::new(0x100), AccessKind::Load).is_hit());
        assert!(!tlb.lookup(Vpn::new(0x101), AccessKind::Load).is_hit());
        assert!(tlb.lookup(Vpn::new(0x102), AccessKind::Load).is_hit());
    }

    #[test]
    fn colt_extension_merges_later_fills() {
        let mut tlb = CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
            PageSize::Size4K,
            16,
            4,
        ));
        let a = t4k(0x100, 0x900);
        let b = t4k(0x101, 0x901);
        tlb.fill(a.vpn, &a, &[a]);
        tlb.fill(b.vpn, &b, &[b]);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.stats().coalesce_merges, 1);
        assert!(tlb.lookup(Vpn::new(0x100), AccessKind::Load).is_hit());
        assert!(tlb.lookup(Vpn::new(0x101), AccessKind::Load).is_hit());
    }

    #[test]
    fn colt_split_routes_sizes() {
        let mut tlb = colt_split();
        let s = sp2m(0x400, 0x2000);
        let line: Vec<Translation> = (0..4).map(|i| t4k(0x100 + i, 0x900 + i)).collect();
        tlb.fill(line[0].vpn, &line[0], &line);
        tlb.fill(s.vpn, &s, &[s]);
        assert!(tlb.lookup(Vpn::new(0x103), AccessKind::Load).is_hit());
        assert!(tlb.lookup(Vpn::new(0x433), AccessKind::Load).is_hit());
        assert_eq!(tlb.stats().hits_by_size, [1, 1, 0]);
    }

    #[test]
    fn colt_plus_plus_coalesces_superpages_in_split() {
        let mut tlb = colt_plus_plus_split();
        let line: Vec<Translation> = (0..4)
            .map(|i| sp2m(0x4000 + i * 512, 0x10_0000 + i * 512))
            .collect();
        tlb.fill(line[0].vpn, &line[0], &line);
        for i in 0..4u64 {
            assert!(tlb
                .lookup(Vpn::new(0x4000 + i * 512), AccessKind::Load)
                .is_hit());
        }
        // But capacity remains partitioned: small-page parts are idle.
        let s = tlb.stats();
        assert_eq!(s.hits_by_size[1], 4);
    }

    #[test]
    fn hetero_split_stats_merge_probe_costs() {
        let mut tlb = colt_split();
        tlb.lookup(Vpn::new(0), AccessKind::Load);
        let s = tlb.stats();
        assert_eq!(s.lookups, 1);
        assert_eq!(s.misses, 1);
        // 4 (colt) + 4 (2M) + 4 (1G FA) entries read.
        assert_eq!(s.entries_read, 12);
    }

    #[test]
    fn hetero_invalidation_reaches_every_part() {
        let mut tlb = colt_plus_plus_split();
        let line: Vec<Translation> = (0..4).map(|i| t4k(0x100 + i, 0x900 + i)).collect();
        let s = sp2m(0x400, 0x2000);
        tlb.fill(line[0].vpn, &line[0], &line);
        tlb.fill(s.vpn, &s, &[s]);
        tlb.invalidate(Vpn::new(0x101), PageSize::Size4K);
        tlb.invalidate(Vpn::new(0x433), PageSize::Size2M);
        assert!(tlb.lookup(Vpn::new(0x100), AccessKind::Load).is_hit());
        assert!(!tlb.lookup(Vpn::new(0x101), AccessKind::Load).is_hit());
        assert!(!tlb.lookup(Vpn::new(0x400), AccessKind::Load).is_hit());
        assert_eq!(tlb.stats().invalidations, 2);
    }

    #[test]
    fn hetero_reset_stats_clears_parts_too() {
        let mut tlb = colt_split();
        let t = t4k(0x100, 0x900);
        tlb.fill(t.vpn, &t, &[t]);
        tlb.lookup(Vpn::new(0x100), AccessKind::Load);
        tlb.reset_stats();
        let s = tlb.stats();
        assert_eq!((s.lookups, s.hits, s.entries_read, s.entries_written), (0, 0, 0, 0));
        // Entries survive a stats reset.
        assert!(tlb.lookup(Vpn::new(0x100), AccessKind::Load).is_hit());
    }

    #[test]
    fn colt_run_reporting_matches_contiguity() {
        let mut tlb = CoalescedSizeTlb::new(CoalescedSizeTlbConfig::colt4(
            PageSize::Size4K,
            8,
            2,
        ));
        let line: Vec<Translation> = (0..3).map(|i| t4k(0x200 + i, 0x700 + i)).collect();
        tlb.fill(line[0].vpn, &line[0], &line);
        match tlb.lookup(Vpn::new(0x201), AccessKind::Load) {
            Lookup::Hit { run: Some(run), .. } => {
                assert_eq!(run.len, 3);
                assert_eq!(run.first.vpn, Vpn::new(0x200));
                assert_eq!(run.translations().len(), 3);
            }
            other => panic!("expected a hit with a run, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_split_rejected() {
        let _ = HeteroSplitTlb::new("x", Vec::new());
    }
}
