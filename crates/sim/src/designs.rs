//! Area-equivalent L1 + L2 hierarchies for every design the paper
//! compares.
//!
//! Area equivalence follows the paper's Sec. 6.2: every design gets
//! (roughly) the entry budget of the commercial Haswell configuration —
//! 100 L1 entries (64 × 4 KB + 32 × 2 MB + 4 × 1 GB) and 544 L2 entries
//! (512 shared 4 KB/2 MB + 32 × 1 GB). Set counts must be powers of two,
//! so budgets land on the nearest feasible geometry (documented per
//! design). The skew designs are additionally charged for their timestamp
//! replacement metadata with a ~25% entry reduction at L2 (Sec. 7.2).

use mixtlb_baselines::{
    colt_plus_plus_split, colt_split, superpage_indexed_mix, PredictiveHashRehash, PredictiveSkew,
};
use mixtlb_core::{
    CoalesceKind, MixTlb, MixTlbConfig, MultiProbeConfig, MultiProbeTlb, OracleUnifiedTlb,
    SingleSizeTlb, SingleSizeTlbConfig, SplitTlb, SplitTlbConfig,
};
use mixtlb_types::PageSize;

use crate::engine::TlbHierarchy;

/// The commercial baseline: split L1 TLBs + a partly-split Haswell L2
/// (hash-rehash 4 KB/2 MB array plus a separate 1 GB TLB).
pub fn haswell_split() -> TlbHierarchy {
    let l2_main = MultiProbeTlb::new(MultiProbeConfig::haswell_l2());
    let l2_1g = SingleSizeTlb::new(SingleSizeTlbConfig::set_associative(PageSize::Size1G, 8, 4));
    TlbHierarchy::new(
        "split",
        Box::new(SplitTlb::new(SplitTlbConfig::haswell_l1())),
        Some(Box::new(mixtlb_baselines::HeteroSplitTlb::new(
            "haswell-l2",
            vec![Box::new(l2_main), Box::new(l2_1g)],
        ))),
    )
}

/// The paper's contribution: MIX L1 (bitmap, 16 sets × 6 ways = 96
/// entries ≈ the split L1's 100) and MIX L2 (64 sets × 8 ways = 512
/// entries ≈ the Haswell L2's 544, at Haswell's own 8-way associativity).
/// The L2 uses bitmap coalescing: an ablation against the paper's
/// length-field L2 showed length maps cannot converge under scattered
/// misses (disjoint fragments are unrepresentable), and the 64-set
/// geometry needs only 64 contiguous superpages to offset mirroring —
/// matching the ~80 the OS actually delivers (Fig. 11).
pub fn mix() -> TlbHierarchy {
    TlbHierarchy::new(
        "mix",
        Box::new(MixTlb::new(MixTlbConfig::l1(16, 6))),
        Some(Box::new(MixTlb::new(MixTlbConfig {
            kind: CoalesceKind::Bitmap,
            ..MixTlbConfig::l2(64, 8)
        }))),
    )
}

/// MIX combined with COLT small-page coalescing (bundle 4) at both levels
/// (Sec. 7.2's best configuration).
pub fn mix_colt() -> TlbHierarchy {
    TlbHierarchy::new(
        "mix+colt",
        Box::new(MixTlb::new(
            MixTlbConfig::l1(16, 6).with_small_coalescing(4),
        )),
        Some(Box::new(MixTlb::new(MixTlbConfig {
            kind: CoalesceKind::Bitmap,
            ..MixTlbConfig::l2(64, 8).with_small_coalescing(4)
        }))),
    )
}

/// Hash-rehash for all page sizes at both levels, enhanced with a
/// PC-indexed page-size predictor (Sec. 5.1).
pub fn hash_rehash_pred() -> TlbHierarchy {
    TlbHierarchy::new(
        "hr+pred",
        Box::new(PredictiveHashRehash::new(16, 6, 256)),
        Some(Box::new(PredictiveHashRehash::new(128, 4, 256))),
    )
}

/// Skew-associative for all page sizes with prediction. Area-equivalent
/// after charging timestamp metadata: L1 2 ways/size × 16 = 96 entries;
/// L2 2 ways/size × 64 = 384 entries (≈ 544 − 25% timestamp overhead).
pub fn skew_pred() -> TlbHierarchy {
    TlbHierarchy::new(
        "skew+pred",
        Box::new(PredictiveSkew::new(2, 16, 256)),
        Some(Box::new(PredictiveSkew::new(2, 64, 256))),
    )
}

/// The original COLT design: split hierarchy whose 4 KB parts coalesce.
pub fn colt() -> TlbHierarchy {
    let l2_main = MultiProbeTlb::new(MultiProbeConfig::haswell_l2());
    let l2_1g = SingleSizeTlb::new(SingleSizeTlbConfig::set_associative(PageSize::Size1G, 8, 4));
    TlbHierarchy::new(
        "colt",
        Box::new(colt_split()),
        Some(Box::new(mixtlb_baselines::HeteroSplitTlb::new(
            "haswell-l2",
            vec![Box::new(l2_main), Box::new(l2_1g)],
        ))),
    )
}

/// COLT++: every split part coalesces its own page size (Sec. 7.2).
pub fn colt_plus_plus() -> TlbHierarchy {
    let l2_main = MultiProbeTlb::new(MultiProbeConfig::haswell_l2());
    let l2_1g = SingleSizeTlb::new(SingleSizeTlbConfig::set_associative(PageSize::Size1G, 8, 4));
    TlbHierarchy::new(
        "colt++",
        Box::new(colt_plus_plus_split()),
        Some(Box::new(mixtlb_baselines::HeteroSplitTlb::new(
            "haswell-l2",
            vec![Box::new(l2_main), Box::new(l2_1g)],
        ))),
    )
}

/// The unrealizable ideal of Figure 1: a unified set-associative TLB that
/// magically indexes with the right page size at both levels.
pub fn oracle() -> TlbHierarchy {
    TlbHierarchy::new(
        "oracle",
        Box::new(OracleUnifiedTlb::new(16, 6)),
        Some(Box::new(OracleUnifiedTlb::new(128, 4))),
    )
}

/// The Sec. 3 strawman: MIX geometry but indexed with 2 MB superpage bits.
pub fn superpage_indexed() -> TlbHierarchy {
    TlbHierarchy::new(
        "sp-indexed",
        Box::new(superpage_indexed_mix(16, 6)),
        Some(Box::new({
            let config = MixTlbConfig {
                extra_index_shift: 9,
                ..MixTlbConfig::l2(128, 4)
            }
            .named("sp-indexed-l2");
            MixTlb::new(config)
        })),
    )
}

/// A scaled MIX hierarchy with the given L2 set count (the Sec. 7.2
/// "Scaling TLBs" study; 512 sets stresses coalescing).
pub fn mix_scaled(l2_sets: usize) -> TlbHierarchy {
    TlbHierarchy::new(
        "mix-scaled",
        Box::new(MixTlb::new(MixTlbConfig::l1(16, 6))),
        Some(Box::new(MixTlb::new(MixTlbConfig::l2(l2_sets, 4)))),
    )
}

/// GPU per-SM L1 designs (Sec. 6.3 geometries): split 128+32+4 entries vs
/// an area-equivalent MIX (32 sets × 5 ways = 160).
pub fn gpu_split_l1() -> Box<dyn mixtlb_core::TlbDevice> {
    Box::new(SplitTlb::new(SplitTlbConfig::gpu_l1()))
}

/// GPU per-SM MIX L1.
pub fn gpu_mix_l1() -> Box<dyn mixtlb_core::TlbDevice> {
    Box::new(MixTlb::new(MixTlbConfig::l1(32, 5).named("mix-gpu-l1")))
}

/// A design constructor, as stored in the sweep tables.
pub type DesignFactory = fn() -> TlbHierarchy;

/// Every CPU design keyed by name — the sweep the figure benchmarks run.
pub fn all_cpu_designs() -> Vec<(&'static str, DesignFactory)> {
    vec![
        ("split", haswell_split as fn() -> TlbHierarchy),
        ("mix", mix),
        ("mix+colt", mix_colt),
        ("hr+pred", hash_rehash_pred),
        ("skew+pred", skew_pred),
        ("colt", colt),
        ("colt++", colt_plus_plus),
        ("oracle", oracle),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_build() {
        for (name, f) in all_cpu_designs() {
            let h = f();
            assert_eq!(h.name(), name);
        }
        let _ = superpage_indexed();
        let _ = mix_scaled(512);
        let _ = gpu_split_l1();
        let _ = gpu_mix_l1();
    }

    #[test]
    fn area_budgets_match_the_baseline() {
        // L1 budget: split = 100 entries; everyone else within ±10%.
        assert_eq!(SplitTlbConfig::haswell_l1().total_entries(), 100);
        assert_eq!(MixTlbConfig::l1(16, 6).total_entries(), 96);
        // L2 budget: split = 544; MIX 512; skew charged for timestamps.
        assert_eq!(MixTlbConfig::l2(128, 4).total_entries(), 512);
    }
}
