//! The analytical performance model (paper Sec. 6.2).

use mixtlb_core::TlbStats;
use mixtlb_energy::{EnergyBreakdown, EnergyModel};
use mixtlb_trace::WorkloadSpec;

use crate::engine::EngineStats;

/// Converts functional-simulation stall cycles into runtime, weighting
/// them against a workload's base CPI and memory intensity — the same
/// construction the paper uses with performance-counter data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Cycles per instruction with ideal translation.
    pub base_cpi: f64,
    /// Memory operations per instruction.
    pub mem_ops_per_instr: f64,
}

impl PerfModel {
    /// The model constants of a workload.
    pub fn from_spec(spec: &WorkloadSpec) -> PerfModel {
        PerfModel {
            base_cpi: spec.base_cpi,
            mem_ops_per_instr: spec.mem_ops_per_instr,
        }
    }

    /// Instructions implied by a number of memory accesses.
    pub fn instructions(&self, accesses: u64) -> f64 {
        accesses as f64 / self.mem_ops_per_instr
    }

    /// Runtime in cycles: base work plus translation stalls.
    pub fn total_cycles(&self, accesses: u64, stall_cycles: u64) -> f64 {
        self.instructions(accesses) * self.base_cpi + stall_cycles as f64
    }
}

/// The full per-(workload, design) result: runtime decomposition, hit
/// rates, and energy.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Design name.
    pub design: String,
    /// Trace events replayed.
    pub accesses: u64,
    /// Cycles with ideal translation.
    pub base_cycles: f64,
    /// Translation stall cycles.
    pub stall_cycles: f64,
    /// `base + stall`.
    pub total_cycles: f64,
    /// `stall / total` — the paper's "% runtime on address translation".
    pub translation_overhead: f64,
    /// L1 TLB hit rate.
    pub l1_hit_rate: f64,
    /// L2 TLB hit rate (of L1 misses); 0 with no L2.
    pub l2_hit_rate: f64,
    /// Page-table walks per 1000 accesses.
    pub walks_per_kilo: f64,
    /// Dynamic translation energy decomposition.
    pub dynamic_energy: EnergyBreakdown,
    /// Static (leakage) translation energy.
    pub leakage_pj: f64,
    /// Dynamic + leakage.
    pub total_energy_pj: f64,
}

impl PerfReport {
    /// Builds a report from the engine's output.
    pub fn build(
        design: &str,
        spec: &WorkloadSpec,
        engine: &EngineStats,
        l1: &TlbStats,
        l2: Option<&TlbStats>,
        total_entries: usize,
    ) -> PerfReport {
        let model = PerfModel::from_spec(spec);
        let base_cycles = model.instructions(engine.accesses) * model.base_cpi;
        let stall_cycles = engine.stall_cycles as f64;
        let total_cycles = base_cycles + stall_cycles;
        let energy_model = EnergyModel::default();
        let mut levels = vec![*l1];
        if let Some(l2) = l2 {
            levels.push(*l2);
        }
        let dynamic = energy_model.dynamic(&levels, &engine.walk_traffic);
        let leakage = energy_model.leakage(total_entries, total_cycles);
        let l1_misses = engine.accesses - engine.l1_hits;
        PerfReport {
            design: design.to_owned(),
            accesses: engine.accesses,
            base_cycles,
            stall_cycles,
            total_cycles,
            translation_overhead: if total_cycles > 0.0 {
                stall_cycles / total_cycles
            } else {
                0.0
            },
            l1_hit_rate: if engine.accesses > 0 {
                engine.l1_hits as f64 / engine.accesses as f64
            } else {
                0.0
            },
            l2_hit_rate: if l1_misses > 0 {
                engine.l2_hits as f64 / l1_misses as f64
            } else {
                0.0
            },
            walks_per_kilo: if engine.accesses > 0 {
                engine.walks as f64 * 1000.0 / engine.accesses as f64
            } else {
                0.0
            },
            dynamic_energy: dynamic,
            leakage_pj: leakage,
            total_energy_pj: dynamic.total_pj() + leakage,
        }
    }

    /// Percent energy saved versus a baseline report (positive = better).
    pub fn energy_savings_vs(&self, baseline: &PerfReport) -> f64 {
        if baseline.total_energy_pj <= 0.0 {
            return 0.0;
        }
        (baseline.total_energy_pj - self.total_energy_pj) / baseline.total_energy_pj * 100.0
    }
}

/// Percent runtime improvement of `new` over `baseline` (positive = `new`
/// is faster) — the y-axis of the paper's Figures 14, 15, and 18.
pub fn improvement_percent(baseline: &PerfReport, new: &PerfReport) -> f64 {
    if baseline.total_cycles <= 0.0 {
        return 0.0;
    }
    (baseline.total_cycles - new.total_cycles) / baseline.total_cycles * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_energy::WalkTraffic;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::by_name("gups").unwrap()
    }

    fn engine_stats(accesses: u64, stalls: u64, l1_hits: u64, walks: u64) -> EngineStats {
        EngineStats {
            accesses,
            l1_hits,
            l2_hits: accesses - l1_hits - walks,
            walks,
            stall_cycles: stalls,
            walk_traffic: WalkTraffic::default(),
            ..EngineStats::default()
        }
    }

    #[test]
    fn overhead_fraction_matches_definition() {
        let e = engine_stats(1000, 5000, 900, 50);
        let r = PerfReport::build("x", &spec(), &e, &TlbStats::default(), None, 100);
        assert!((r.translation_overhead - r.stall_cycles / r.total_cycles).abs() < 1e-12);
        assert!(r.translation_overhead > 0.0 && r.translation_overhead < 1.0);
    }

    #[test]
    fn improvement_is_symmetric_sane() {
        let fast = PerfReport::build(
            "fast",
            &spec(),
            &engine_stats(1000, 100, 990, 1),
            &TlbStats::default(),
            None,
            100,
        );
        let slow = PerfReport::build(
            "slow",
            &spec(),
            &engine_stats(1000, 50_000, 400, 500),
            &TlbStats::default(),
            None,
            100,
        );
        assert!(improvement_percent(&slow, &fast) > 0.0);
        assert!(improvement_percent(&fast, &slow) < 0.0);
        assert_eq!(improvement_percent(&fast, &fast), 0.0);
    }

    #[test]
    fn hit_rates() {
        let e = engine_stats(1000, 0, 800, 100);
        let r = PerfReport::build("x", &spec(), &e, &TlbStats::default(), None, 100);
        assert!((r.l1_hit_rate - 0.8).abs() < 1e-12);
        assert!((r.l2_hit_rate - 0.5).abs() < 1e-12);
        assert!((r.walks_per_kilo - 100.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_grows_with_runtime() {
        let quick = PerfReport::build(
            "q",
            &spec(),
            &engine_stats(1000, 10, 999, 1),
            &TlbStats::default(),
            None,
            644,
        );
        let slow = PerfReport::build(
            "s",
            &spec(),
            &engine_stats(1000, 100_000, 100, 900),
            &TlbStats::default(),
            None,
            644,
        );
        assert!(slow.leakage_pj > quick.leakage_pj);
        assert!(quick.energy_savings_vs(&slow) > 0.0);
    }
}
