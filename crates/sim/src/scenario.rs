//! Native-CPU experiment scenarios: fragmentation, OS state, pre-faulted
//! footprints, and per-design trace replay.

use mixtlb_mem::{Memhog, MemhogConfig, MemoryConfig, PhysicalMemory};
use mixtlb_os::scan::{ContiguityStats, PageSizeDistribution};
use mixtlb_os::{FaultStats, Kernel, PagingPolicy, SpaceId, ThsConfig};
use mixtlb_trace::{TraceGenerator, WorkloadSpec};
use mixtlb_types::{Asid, PageSize, Permissions, Vpn, PAGE_SIZE_4K};

use crate::engine::{TlbHierarchy, TranslationEngine, WalkBackend};
use crate::model::PerfReport;

/// How the OS chooses page sizes in a scenario — the paper's Figure 14
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// 4 KB pages only (libhugetlbfs disabled, THS off).
    SmallOnly,
    /// libhugetlbfs with a 2 MB pool covering the footprint.
    Huge2M,
    /// libhugetlbfs with a 1 GB pool covering the footprint.
    Huge1G,
    /// Transparent hugepage support (2 MB + 4 KB fallback).
    Ths,
    /// A 1 GB pool for part of the footprint plus THS — all three sizes.
    Mixed,
}

impl PolicyChoice {
    fn to_policy(self, footprint_bytes: u64) -> PagingPolicy {
        match self {
            PolicyChoice::SmallOnly => PagingPolicy::SmallOnly,
            PolicyChoice::Huge2M => PagingPolicy::Hugetlbfs {
                size: PageSize::Size2M,
                pool_bytes: footprint_bytes,
            },
            PolicyChoice::Huge1G => PagingPolicy::Hugetlbfs {
                size: PageSize::Size1G,
                pool_bytes: footprint_bytes,
            },
            PolicyChoice::Ths => PagingPolicy::TransparentHuge(ThsConfig::default()),
            PolicyChoice::Mixed => PagingPolicy::Mixed {
                gb_pool_bytes: footprint_bytes / 2,
                ths: ThsConfig::default(),
            },
        }
    }
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Machine memory in bytes. The paper's machine has 80 GB; scaled-down
    /// runs keep footprint ≈ memory so allocation behaviour is preserved.
    pub mem_bytes: u64,
    /// Fraction of memory `memhog` fragments in the background.
    pub memhog_fraction: f64,
    /// Page-size policy.
    pub policy: PolicyChoice,
    /// Cap on the workload footprint (None = as much as fits).
    pub footprint_cap: Option<u64>,
    /// RNG seed (memhog placement and the trace share it).
    pub seed: u64,
}

impl ScenarioConfig {
    /// A tiny configuration for doc tests and unit tests (512 MB).
    pub fn quick() -> ScenarioConfig {
        ScenarioConfig {
            mem_bytes: 512 << 20,
            memhog_fraction: 0.0,
            policy: PolicyChoice::Ths,
            footprint_cap: Some(256 << 20),
            seed: 42,
        }
    }

    /// The benchmark default: 8 GB machine (experiments note the scaling
    /// from the paper's 80 GB; allocation-pattern figures run at 80 GB).
    pub fn standard() -> ScenarioConfig {
        ScenarioConfig {
            mem_bytes: 8 << 30,
            memhog_fraction: 0.0,
            policy: PolicyChoice::Ths,
            footprint_cap: None,
            seed: 42,
        }
    }

    /// The paper's full machine scale (80 GB). Slow; used by the
    /// allocation-characterization figures.
    pub fn paper_scale() -> ScenarioConfig {
        ScenarioConfig {
            mem_bytes: 80 << 30,
            memhog_fraction: 0.0,
            policy: PolicyChoice::Ths,
            footprint_cap: None,
            seed: 42,
        }
    }

    /// Sets the memhog fraction.
    pub fn with_memhog(mut self, fraction: f64) -> ScenarioConfig {
        self.memhog_fraction = fraction;
        self
    }

    /// Sets the policy.
    pub fn with_policy(mut self, policy: PolicyChoice) -> ScenarioConfig {
        self.policy = policy;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioConfig {
        self.seed = seed;
        self
    }
}

/// A prepared native scenario: fragmented memory, OS state, and a fully
/// faulted footprint, ready to replay traces against any design.
pub struct NativeScenario {
    kernel: Kernel,
    space: SpaceId,
    spec: WorkloadSpec,
    region: Vpn,
    seed: u64,
}

impl std::fmt::Debug for NativeScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeScenario")
            .field("workload", &self.spec.name)
            .field("footprint_bytes", &self.spec.footprint_bytes)
            .finish()
    }
}

impl NativeScenario {
    /// Builds the scenario: fragment with memhog, create the address space
    /// under the configured policy, and pre-fault the whole footprint in
    /// ascending order (the paper measures steady state, after the OS has
    /// made its page-size decisions).
    ///
    /// The footprint is the workload's, capped to what fits in the machine
    /// (≈ 85% of post-memhog free memory).
    pub fn prepare(spec: &WorkloadSpec, cfg: &ScenarioConfig) -> NativeScenario {
        let mem = PhysicalMemory::new(MemoryConfig::with_bytes(cfg.mem_bytes));
        let mut kernel = Kernel::new(mem);
        // 1 GB hugepage pools are reserved at boot, while memory is
        // pristine (`hugepagesz=1G` is a kernel parameter precisely
        // because 1 GB regions cannot be assembled after fragmentation).
        let est_free = (cfg.mem_bytes as f64 * (1.0 - cfg.memhog_fraction)) as u64;
        let mut est_footprint = spec.footprint_bytes.min(est_free * 85 / 100);
        if let Some(cap) = cfg.footprint_cap {
            est_footprint = est_footprint.min(cap);
        }
        let boot_pool = match cfg.policy {
            PolicyChoice::Huge1G => {
                Some(kernel.reserve_boot_pool(PageSize::Size1G, est_footprint))
            }
            PolicyChoice::Mixed => {
                Some(kernel.reserve_boot_pool(PageSize::Size1G, est_footprint / 2))
            }
            _ => None,
        };
        if cfg.memhog_fraction > 0.0 {
            let _hog = Memhog::fragment(
                kernel.mem_mut(),
                MemhogConfig::with_fraction(cfg.memhog_fraction).seed(cfg.seed),
            );
            // The hog stays resident for the scenario's lifetime.
        }
        let free_bytes = kernel.mem().free_frames() * PAGE_SIZE_4K
            + boot_pool
                .as_ref()
                .map_or(0, |p| p.len() as u64 * PageSize::Size1G.bytes());
        let mut footprint = spec.footprint_bytes.min(free_bytes * 85 / 100);
        if let Some(cap) = cfg.footprint_cap {
            footprint = footprint.min(cap);
        }
        footprint = footprint.max(PAGE_SIZE_4K);
        let spec = spec.clone().with_footprint(footprint);
        let space = match boot_pool {
            Some(pool) => kernel.create_space_with_pool(
                cfg.policy.to_policy(footprint),
                PageSize::Size1G,
                pool,
            ),
            None => kernel.create_space(cfg.policy.to_policy(footprint)),
        };
        // 1 GB-aligned virtual base so every page size is usable.
        let region = Vpn::new(1 << 18);
        kernel
            .mmap(space, region, spec.footprint_pages(), Permissions::rw_user())
            // lint: allow(panic) — a freshly created address space has no VMAs to overlap
            .expect("fresh address space has no overlapping VMAs");
        kernel.fault_all(space);
        NativeScenario {
            kernel,
            space,
            spec,
            region,
            seed: cfg.seed,
        }
    }

    /// The workload (with its final footprint).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// A clone of the faulted page table, for engines that own their
    /// replay state (the SMP engine clones one per core so every core
    /// sees identical A/D state).
    pub fn clone_page_table(&self) -> mixtlb_pagetable::PageTable {
        self.kernel.space(self.space).page_table().clone()
    }

    /// First 4 KB page of the mapped footprint.
    pub fn region(&self) -> Vpn {
        self.region
    }

    /// The scenario's RNG seed (trace streams derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The page-size distribution the OS produced (Figures 1, 9).
    pub fn distribution(&self) -> PageSizeDistribution {
        PageSizeDistribution::of(self.kernel.space(self.space).page_table())
    }

    /// Superpage contiguity for one size (Figures 11-13).
    pub fn contiguity(&self, size: PageSize) -> ContiguityStats {
        ContiguityStats::of(self.kernel.space(self.space).page_table(), size)
    }

    /// Fault statistics (THS fallbacks, compactions, pool hits).
    pub fn fault_stats(&self) -> FaultStats {
        self.kernel.space(self.space).stats()
    }

    /// Replays `refs` trace events against a design and reports. The page
    /// table is cloned per run, so every design sees identical A/D state
    /// and the scenario can be reused.
    pub fn run(&mut self, hierarchy: TlbHierarchy, refs: u64) -> PerfReport {
        self.run_configured(hierarchy, refs, |_| {})
    }

    /// Like [`NativeScenario::run`], flushing all translation structures
    /// every `interval` references — context switches on hardware without
    /// address-space identifiers. Exercises each design's *refill*
    /// efficiency: a coalescing TLB rebuilds its reach with far fewer
    /// walks after a flush.
    pub fn run_with_flushes(
        &mut self,
        hierarchy: TlbHierarchy,
        refs: u64,
        interval: u64,
    ) -> PerfReport {
        assert!(interval > 0, "flush interval must be non-zero");
        let mut pt = self.clone_page_table();
        let design = hierarchy.name().to_owned();
        let total_entries = hierarchy.total_entries();
        let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(&mut pt));
        let mut generator = TraceGenerator::new(&self.spec, self.seed, self.region);
        let mut done = 0u64;
        while done < refs {
            let burst = interval.min(refs - done);
            engine.run(generator.by_ref().take(burst as usize));
            done += burst;
            if done < refs {
                engine.flush_tlbs();
            }
        }
        let (stats, l1, l2, _caches) = engine.finish();
        PerfReport::build(&design, &self.spec, &stats, &l1, l2.as_ref(), total_entries)
    }

    /// Like [`NativeScenario::run_with_flushes`], but context switches go
    /// through the **ASID path**: the workload runs under PCID 1, and at
    /// every switch an intruder process (PCID 2, a decorrelated stream of
    /// the same workload class) runs a short burst. On hierarchies that
    /// honour tags ([`TlbHierarchy::supports_asids`]) no flush happens —
    /// both processes' entries coexist, tagged, and the workload's reach
    /// survives the switch. Hierarchies without tag support must still
    /// flush around the intruder, exactly as untagged hardware would.
    ///
    /// The intruder burst is `interval / 8` references, identical for
    /// every design, so reports stay comparable side by side with
    /// [`NativeScenario::run_with_flushes`].
    pub fn run_with_asid_switches(
        &mut self,
        hierarchy: TlbHierarchy,
        refs: u64,
        interval: u64,
    ) -> PerfReport {
        assert!(interval > 0, "switch interval must be non-zero");
        let mut pt = self.clone_page_table();
        let design = hierarchy.name().to_owned();
        let total_entries = hierarchy.total_entries();
        let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(&mut pt));
        let tagged = engine.supports_asids();
        let workload = Asid::new(1);
        let intruder = Asid::new(2);
        let mut generator = TraceGenerator::new(&self.spec, self.seed, self.region);
        let mut intruder_gen =
            TraceGenerator::new(&self.spec, self.seed ^ 0xDEAD_BEEF, self.region);
        let intruder_burst = (interval / 8).max(1);
        let mut done = 0u64;
        while done < refs {
            engine.set_asid(workload);
            let burst = interval.min(refs - done);
            engine.run(generator.by_ref().take(burst as usize));
            done += burst;
            if done < refs {
                if !tagged {
                    engine.flush_tlbs();
                }
                engine.set_asid(intruder);
                engine.run(intruder_gen.by_ref().take(intruder_burst as usize));
                if !tagged {
                    engine.flush_tlbs();
                }
            }
        }
        let (stats, l1, l2, _caches) = engine.finish();
        PerfReport::build(&design, &self.spec, &stats, &l1, l2.as_ref(), total_entries)
    }

    /// Like [`NativeScenario::run`], with a hook to reconfigure the engine
    /// before replay (e.g. [`TranslationEngine::disable_pwc`] for
    /// ablations).
    pub fn run_configured(
        &mut self,
        hierarchy: TlbHierarchy,
        refs: u64,
        configure: impl FnOnce(&mut TranslationEngine<'_>),
    ) -> PerfReport {
        let mut pt = self.clone_page_table();
        let design = hierarchy.name().to_owned();
        let total_entries = hierarchy.total_entries();
        let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(&mut pt));
        configure(&mut engine);
        let generator = TraceGenerator::new(&self.spec, self.seed, self.region);
        engine.run(generator.take(refs as usize));
        let (stats, l1, l2, _caches) = engine.finish();
        PerfReport::build(&design, &self.spec, &stats, &l1, l2.as_ref(), total_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    fn spec(name: &str) -> WorkloadSpec {
        WorkloadSpec::by_name(name).unwrap()
    }

    #[test]
    fn ths_scenario_produces_superpages_when_clean() {
        let s = NativeScenario::prepare(&spec("gups"), &ScenarioConfig::quick());
        let d = s.distribution();
        assert!(d.superpage_fraction() > 0.95, "{d:?}");
        // The fault-path counters must agree: a clean THS run maps 2 MB pages.
        let fs = s.fault_stats();
        assert!(fs.mapped_2m > 0, "{fs:?}");
    }

    #[test]
    fn small_only_scenario_produces_no_superpages() {
        let cfg = ScenarioConfig::quick().with_policy(PolicyChoice::SmallOnly);
        let s = NativeScenario::prepare(&spec("gups"), &cfg);
        assert_eq!(s.distribution().superpage_fraction(), 0.0);
    }

    #[test]
    fn fragmentation_reduces_superpage_fraction() {
        let clean = NativeScenario::prepare(&spec("gups"), &ScenarioConfig::quick());
        let cfg = ScenarioConfig::quick().with_memhog(0.7);
        let fragged = NativeScenario::prepare(&spec("gups"), &cfg);
        assert!(
            fragged.distribution().superpage_fraction()
                < clean.distribution().superpage_fraction()
        );
    }

    #[test]
    fn superpages_come_out_contiguous() {
        let s = NativeScenario::prepare(&spec("gups"), &ScenarioConfig::quick());
        let c = s.contiguity(PageSize::Size2M);
        assert!(c.average_contiguity() > 8.0, "{}", c.average_contiguity());
    }

    #[test]
    fn mix_beats_split_under_superpage_pressure() {
        let mut s = NativeScenario::prepare(&spec("gups"), &ScenarioConfig::quick());
        let split = s.run(designs::haswell_split(), 30_000);
        let mix = s.run(designs::mix(), 30_000);
        assert!(
            mix.total_cycles <= split.total_cycles,
            "mix {} vs split {}",
            mix.total_cycles,
            split.total_cycles
        );
        assert!(mix.l1_hit_rate >= split.l1_hit_rate);
    }

    #[test]
    fn scenario_is_reusable_across_designs() {
        let mut s = NativeScenario::prepare(&spec("streamcluster"), &ScenarioConfig::quick());
        let a = s.run(designs::mix(), 10_000);
        let b = s.run(designs::mix(), 10_000);
        assert_eq!(a.total_cycles, b.total_cycles, "same design, same result");
    }

    #[test]
    fn footprint_respects_memory() {
        let mut cfg = ScenarioConfig::quick();
        cfg.footprint_cap = None;
        let s = NativeScenario::prepare(&spec("gups"), &cfg);
        assert!(s.spec().footprint_bytes < cfg.mem_bytes);
    }
}
