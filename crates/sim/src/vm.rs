//! Virtualized scenarios: guest OSes over a hypervisor, nested page
//! tables, and 2-D walks (paper Secs. 2, 7.1-7.2).

use mixtlb_mem::{Memhog, MemhogConfig, MemoryConfig, PhysicalMemory};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use mixtlb_os::scan::{self, ContiguityStats, PageSizeDistribution};
use mixtlb_os::{Kernel, PagingPolicy, SpaceId, ThsConfig};
use mixtlb_trace::{TraceGenerator, WorkloadSpec};
use mixtlb_types::{PageSize, Permissions, Vpn, PAGE_SIZE_4K};

use crate::engine::{TlbHierarchy, TranslationEngine, WalkBackend};
use crate::model::PerfReport;

/// Virtualized-scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtConfig {
    /// System (host) memory in bytes.
    pub mem_bytes: u64,
    /// Number of consolidated VMs (the paper consolidates 1-8).
    pub vms: u32,
    /// memhog fraction *inside each VM* (Figure 10's `M mh`).
    pub memhog_in_vm: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cap on each VM's workload footprint.
    pub footprint_cap: Option<u64>,
}

impl VirtConfig {
    /// A tiny configuration for tests (512 MB host, 1 VM).
    pub fn quick() -> VirtConfig {
        VirtConfig {
            mem_bytes: 512 << 20,
            vms: 1,
            memhog_in_vm: 0.0,
            seed: 42,
            footprint_cap: Some(128 << 20),
        }
    }

    /// The benchmark default: 2 GB of host memory per consolidated VM
    /// (the paper gives each VM a fixed 10 GB; keeping per-VM memory
    /// constant across consolidation levels preserves the regime where
    /// footprints exceed every TLB's reach).
    pub fn standard(vms: u32, memhog_in_vm: f64) -> VirtConfig {
        VirtConfig {
            mem_bytes: (2u64 << 30) * u64::from(vms),
            vms,
            memhog_in_vm,
            seed: 42,
            footprint_cap: None,
        }
    }
}

struct GuestVm {
    /// The guest OS managing guest-physical memory.
    kernel: Kernel,
    space: SpaceId,
    /// The EPT for this VM inside the host kernel.
    ept_space: SpaceId,
    spec: WorkloadSpec,
    region: Vpn,
}

/// A prepared virtualized scenario: a host kernel whose memory backs `N`
/// guest OS images (each with its own guest page table), connected by
/// per-VM nested (EPT) tables built with host THS.
///
/// Consolidation pressure is modeled two ways: each VM gets `1/N` of host
/// memory, and host-level fragmentation grows with `N` (standing in for
/// the page-sharing and migration churn the paper cites [47-49]).
pub struct VirtScenario {
    host: Kernel,
    guests: Vec<GuestVm>,
    seed: u64,
}

impl std::fmt::Debug for VirtScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtScenario")
            .field("vms", &self.guests.len())
            .finish()
    }
}

impl VirtScenario {
    /// Builds the scenario: host kernel, per-VM guest kernels with memhog
    /// and THS, guest footprints faulted in, and EPTs backing every
    /// guest-physical page through host THS.
    pub fn prepare(spec: &WorkloadSpec, cfg: &VirtConfig) -> VirtScenario {
        assert!(cfg.vms >= 1, "at least one VM required");
        let mut host = Kernel::new(PhysicalMemory::new(MemoryConfig::with_bytes(cfg.mem_bytes)));
        // Consolidation pressure is modeled as host-level page-size
        // *splintering*: as more VMs share the machine, hypervisor page
        // sharing proactively breaks host 2 MB pages into 4 KB pages
        // (Guo et al., VEE 2015 — the paper's [48]; also the NUMA
        // migration effects of [49]). 8% of each VM's EPT superpages per
        // consolidated VM beyond the first are splintered in place after
        // the EPT is built (below).
        let splinter_fraction = (0.08 * (cfg.vms - 1) as f64).min(0.8);
        // Leave the host 1/8 headroom for EPT pages and its own needs.
        let guest_mem = (cfg.mem_bytes / u64::from(cfg.vms)) * 7 / 8;
        let guest_mem = guest_mem - guest_mem % PAGE_SIZE_4K;
        let mut guests = Vec::with_capacity(cfg.vms as usize);
        for vm in 0..cfg.vms {
            let mut kernel =
                Kernel::new(PhysicalMemory::new(MemoryConfig::with_bytes(guest_mem)));
            if cfg.memhog_in_vm > 0.0 {
                let _hog = Memhog::fragment(
                    kernel.mem_mut(),
                    MemhogConfig::with_fraction(cfg.memhog_in_vm)
                        .seed(cfg.seed.wrapping_add(u64::from(vm))),
                );
            }
            let free_bytes = kernel.mem().free_frames() * PAGE_SIZE_4K;
            let mut footprint = spec.footprint_bytes.min(free_bytes * 85 / 100);
            if let Some(cap) = cfg.footprint_cap {
                footprint = footprint.min(cap);
            }
            footprint = footprint.max(PAGE_SIZE_4K);
            let vm_spec = spec.clone().with_footprint(footprint);
            let space = kernel.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
            let region = Vpn::new(1 << 18);
            kernel
                .mmap(space, region, vm_spec.footprint_pages(), Permissions::rw_user())
                // lint: allow(panic) — a freshly created guest address space has no VMAs to overlap
                .expect("fresh guest address space");
            kernel.fault_all(space);
            // EPT: back the whole guest-physical space through host THS.
            let ept_space =
                host.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
            let guest_frames = kernel.mem().total_frames();
            host.mmap(ept_space, Vpn::new(0), guest_frames, Permissions::rw_user())
                // lint: allow(panic) — the EPT space was created empty two lines above
                .expect("fresh EPT space");
            host.fault_all(ept_space);
            if splinter_fraction > 0.0 {
                let mut superpages = Vec::new();
                host.space(ept_space).page_table().for_each_leaf(|t| {
                    if t.size.is_superpage() {
                        superpages.push(t.vpn);
                    }
                });
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ 0x7368_6172 ^ u64::from(vm), // "shar"
                );
                // Sharing victims cluster (zero pages and identical content
                // come in groups), so splinter runs of adjacent superpages
                // rather than sprinkling breaks uniformly — the same
                // splintered *fraction* with far less damage to the
                // contiguity of what remains 2 MB.
                const SPLINTER_CLUSTER: usize = 16;
                let mut i = 0;
                while i < superpages.len() {
                    if rng.gen_bool(splinter_fraction) {
                        for j in 0..SPLINTER_CLUSTER.min(superpages.len() - i) {
                            host.splinter(ept_space, superpages[i + j])
                                // lint: allow(panic) — the superpage leaf was just enumerated from the live table
                                .expect("leaf just enumerated");
                        }
                        i += SPLINTER_CLUSTER;
                    } else {
                        i += SPLINTER_CLUSTER;
                    }
                }
            }
            guests.push(GuestVm {
                kernel,
                space,
                ept_space,
                spec: vm_spec,
                region,
            });
        }
        VirtScenario {
            host,
            guests,
            seed: cfg.seed,
        }
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.guests.len()
    }

    /// The workload of VM `vm` (with its final footprint).
    pub fn spec(&self, vm: usize) -> &WorkloadSpec {
        &self.guests[vm].spec
    }

    /// The *effective* (splintered) page-size distribution seen by nested
    /// translation for VM `vm` — Figure 10's metric.
    pub fn effective_distribution(&self, vm: usize) -> PageSizeDistribution {
        let guest = &self.guests[vm];
        scan::effective_distribution(
            guest.kernel.space(guest.space).page_table(),
            self.host.space(guest.ept_space).page_table(),
        )
    }

    /// Effective superpage contiguity for VM `vm` (Figures 11, 13).
    pub fn effective_contiguity(&self, vm: usize, size: PageSize) -> ContiguityStats {
        let guest = &self.guests[vm];
        scan::effective_contiguity(
            guest.kernel.space(guest.space).page_table(),
            self.host.space(guest.ept_space).page_table(),
            size,
        )
    }

    /// Debug helper: raw guest and host(EPT) contiguity for a VM.
    pub fn debug_contiguity(
        &self,
        vm: usize,
        size: PageSize,
    ) -> (ContiguityStats, ContiguityStats) {
        let guest = &self.guests[vm];
        (
            ContiguityStats::of(guest.kernel.space(guest.space).page_table(), size),
            ContiguityStats::of(self.host.space(guest.ept_space).page_table(), size),
        )
    }

    /// Replays `refs` events of VM `vm`'s workload through 2-D translation
    /// against a design.
    pub fn run(&mut self, vm: usize, hierarchy: TlbHierarchy, refs: u64) -> PerfReport {
        let guest_vm = &self.guests[vm];
        let mut guest_pt = guest_vm.kernel.space(guest_vm.space).page_table().clone();
        let mut host_pt = self.host.space(guest_vm.ept_space).page_table().clone();
        let design = hierarchy.name().to_owned();
        let total_entries = hierarchy.total_entries();
        let mut engine = TranslationEngine::new(
            hierarchy,
            WalkBackend::Nested {
                guest: &mut guest_pt,
                host: &mut host_pt,
            },
        );
        let generator = TraceGenerator::new(
            &guest_vm.spec,
            self.seed.wrapping_add(vm as u64),
            guest_vm.region,
        );
        engine.run(generator.take(refs as usize));
        let (stats, l1, l2, _caches) = engine.finish();
        PerfReport::build(
            &design,
            &guest_vm.spec,
            &stats,
            &l1,
            l2.as_ref(),
            total_entries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::by_name("gups").unwrap()
    }

    #[test]
    fn clean_vm_sees_matched_superpages() {
        let s = VirtScenario::prepare(&spec(), &VirtConfig::quick());
        let d = s.effective_distribution(0);
        assert!(d.superpage_fraction() > 0.9, "{d:?}");
        // A clean guest on a clean host has real 2 MB contiguity in both
        // dimensions, and the guest view never claims more translations
        // than its own raw page table holds.
        let (guest, host) = s.debug_contiguity(0, PageSize::Size2M);
        assert!(guest.translations() > 0, "{guest:?}");
        assert!(host.translations() > 0, "{host:?}");
    }

    #[test]
    fn guest_memhog_splinters_pages() {
        let mut cfg = VirtConfig::quick();
        cfg.memhog_in_vm = 0.7;
        let s = VirtScenario::prepare(&spec(), &cfg);
        let clean = VirtScenario::prepare(&spec(), &VirtConfig::quick());
        assert!(
            s.effective_distribution(0).superpage_fraction()
                < clean.effective_distribution(0).superpage_fraction()
        );
    }

    #[test]
    fn consolidation_splits_memory() {
        let mut cfg = VirtConfig::quick();
        cfg.mem_bytes = 1 << 30;
        cfg.vms = 4;
        cfg.footprint_cap = Some(32 << 20);
        let s = VirtScenario::prepare(&spec(), &cfg);
        assert_eq!(s.vm_count(), 4);
        for vm in 0..4 {
            assert!(s.spec(vm).footprint_bytes <= 32 << 20);
        }
    }

    #[test]
    fn nested_translation_runs_and_mix_wins() {
        let mut s = VirtScenario::prepare(&spec(), &VirtConfig::quick());
        let split = s.run(0, designs::haswell_split(), 15_000);
        let mix = s.run(0, designs::mix(), 15_000);
        assert_eq!(split.accesses, 15_000);
        assert!(split.walks_per_kilo >= 0.0);
        assert!(
            mix.total_cycles <= split.total_cycles * 1.02,
            "mix {} vs split {}",
            mix.total_cycles,
            split.total_cycles
        );
    }
}
