//! The translation engine, analytical performance model, and the native /
//! virtualized experiment scenarios that tie the whole simulator together.
//!
//! This is the crate the benchmarks drive. It provides:
//!
//! * [`TlbHierarchy`] and the [`designs`] factory — the area-equivalent
//!   L1+L2 configurations of every design the paper compares (split
//!   Haswell, MIX, hash-rehash + prediction, skew + prediction, COLT,
//!   COLT++, MIX+COLT, the unified oracle, and the superpage-indexed
//!   strawman).
//! * [`TranslationEngine`] — replays a trace against a hierarchy, walking
//!   the page table (native or nested 2-D) on misses, sending every PTE
//!   reference through the cache hierarchy, and maintaining x86 A/D-bit
//!   semantics, including the MIX dirty-bit micro-op traffic.
//! * [`PerfReport`] / [`PerfModel`] — the paper's analytical runtime model
//!   (Sec. 6.2): translation stall cycles from the functional simulation
//!   weighted against per-workload base CPI and memory intensity, plus the
//!   energy model's dynamic + leakage totals.
//! * [`NativeScenario`] and [`VirtScenario`] — end-to-end experiment
//!   builders: fragment memory with `memhog`, build the OS state (THS /
//!   hugetlbfs / mixed policies), pre-fault the footprint, and replay a
//!   workload trace for each design.
//!
//! # Examples
//!
//! ```
//! use mixtlb_sim::{designs, NativeScenario, ScenarioConfig};
//! use mixtlb_trace::WorkloadSpec;
//!
//! let cfg = ScenarioConfig::quick();
//! let spec = WorkloadSpec::by_name("gups").unwrap();
//! let mut scenario = NativeScenario::prepare(&spec, &cfg);
//! let split = scenario.run(designs::haswell_split(), 20_000);
//! let mix = scenario.run(designs::mix(), 20_000);
//! // MIX TLBs should not lose to the split design.
//! assert!(mix.total_cycles <= split.total_cycles * 1.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
mod engine;
mod model;
mod scenario;
mod vm;

pub use engine::{EngineStats, TlbHierarchy, TranslationEngine, WalkBackend};
pub use model::{improvement_percent, PerfModel, PerfReport};
pub use scenario::{NativeScenario, PolicyChoice, ScenarioConfig};
pub use vm::{VirtConfig, VirtScenario};
