//! The translation engine: trace replay against a TLB hierarchy with
//! page-table walks through the cache hierarchy.

use mixtlb_cache::{CacheHierarchy, HierarchyConfig, HierarchyStats, PageWalkCache};
use mixtlb_core::{BatchAccess, Lookup, MixTlb, MixTlbConfig, TlbDevice, TlbStats};
use mixtlb_energy::WalkTraffic;
use mixtlb_pagetable::{NestedTranslationCache, NestedWalker, PageTable, Walker};
use mixtlb_trace::TraceEvent;
use mixtlb_types::{Asid, PageSize, Pfn, PhysAddr, Translation, VirtAddr, Vpn};

/// The batched-replay reuse window: one resolved 4 KB page whose frame is
/// precomputed, so consecutive accesses to the same page splice their
/// offset onto the frame instead of re-probing. `serves_stores` is set
/// only when the seeding probe *hit* an already-dirty entry — then a
/// consecutive store's probe provably cannot raise a dirty micro-op, so
/// skipping it is invisible. Miss-resolved seeds never serve stores: a
/// coalescing fill may merge into a clean run entry, and the first store
/// must probe so the entry's own dirty bit transitions.
#[derive(Clone, Copy)]
struct ReuseWindow {
    vpn: Vpn,
    frame: Pfn,
    serves_stores: bool,
}

/// Seeds the reuse window from a just-resolved access, precomputing the
/// backing frame of its 4 KB page.
#[inline]
fn seed_window(vpn: Vpn, translation: &Translation, from_dirty_hit: bool) -> Option<ReuseWindow> {
    translation.frame_for(vpn).map(|frame| ReuseWindow {
        vpn,
        frame,
        serves_stores: from_dirty_hit,
    })
}

/// A two-level TLB hierarchy under test.
pub struct TlbHierarchy {
    name: String,
    /// The L1 TLB.
    pub l1: Box<dyn TlbDevice>,
    /// The L2 TLB, if present.
    pub l2: Option<Box<dyn TlbDevice>>,
    total_entries: usize,
}

impl std::fmt::Debug for TlbHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlbHierarchy")
            .field("name", &self.name)
            .field("l1", &self.l1.name())
            .field("l2", &self.l2.as_ref().map(|t| t.name().to_owned()))
            .finish()
    }
}

impl TlbHierarchy {
    /// Assembles a hierarchy. `total_entries` (for leakage) is derived from
    /// the devices' [`TlbDevice::capacity`]; designs that do not report a
    /// capacity fall back to the Haswell budget of 644. Override with
    /// [`TlbHierarchy::with_entries`].
    pub fn new(
        name: &str,
        l1: Box<dyn TlbDevice>,
        l2: Option<Box<dyn TlbDevice>>,
    ) -> TlbHierarchy {
        let derived = l1.capacity() + l2.as_ref().map_or(0, |t| t.capacity());
        TlbHierarchy {
            name: name.to_owned(),
            l1,
            l2,
            total_entries: if derived > 0 { derived } else { 644 },
        }
    }

    /// Sets the total entry count used for leakage accounting.
    pub fn with_entries(mut self, entries: usize) -> TlbHierarchy {
        self.total_entries = entries;
        self
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total entries across levels (leakage accounting).
    pub fn total_entries(&self) -> usize {
        self.total_entries
    }

    /// Number of TLB sets a shootdown of the page at `vpn`/`size` must
    /// probe across both levels — the per-core hardware invalidation cost
    /// during an IPI (MIX hierarchies sweep every set for superpages).
    pub fn invalidate_sets(&self, vpn: Vpn, size: mixtlb_types::PageSize) -> u64 {
        self.l1.invalidate_sets(vpn, size)
            + self.l2.as_ref().map_or(0, |t| t.invalidate_sets(vpn, size))
    }

    /// Sets a full flush of both levels must visit — the saturation point
    /// of a batched shootdown sweep (see [`mixtlb_core::TlbDevice::flush_sets`]).
    pub fn flush_sets(&self) -> u64 {
        self.l1.flush_sets() + self.l2.as_ref().map_or(0, |t| t.flush_sets())
    }

    /// Whether every level honours ASID tags — only then can a context
    /// switch skip the flush (x86 PCID semantics).
    pub fn supports_asids(&self) -> bool {
        self.l1.supports_asids() && self.l2.as_ref().is_none_or(|t| t.supports_asids())
    }
}

/// Which page-table structure misses walk.
pub enum WalkBackend<'a> {
    /// A native 4-level walk.
    Native(&'a mut PageTable),
    /// A virtualized 2-D walk: guest table + host (EPT) table.
    Nested {
        /// The guest's page table (guest virtual → guest physical).
        guest: &'a mut PageTable,
        /// The host's nested table (guest physical → system physical).
        host: &'a mut PageTable,
    },
}

impl std::fmt::Debug for WalkBackend<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkBackend::Native(_) => write!(f, "WalkBackend::Native"),
            WalkBackend::Nested { .. } => write!(f, "WalkBackend::Nested"),
        }
    }
}

/// Adapts any [`TlbDevice`] into the nested-walker's gPA→sPA cache.
struct NtlbAdapter<'a>(&'a mut dyn TlbDevice);

impl NestedTranslationCache for NtlbAdapter<'_> {
    fn lookup_gpa(&mut self, gpn: Vpn) -> Option<Translation> {
        match self.0.lookup(gpn, mixtlb_types::AccessKind::Load) {
            Lookup::Hit { translation, .. } => Some(translation),
            Lookup::Miss => None,
        }
    }

    fn fill_gpa(&mut self, gpn: Vpn, t: &Translation, line: &[Translation]) {
        self.0.fill(gpn, t, line);
    }
}

impl std::fmt::Debug for TranslationEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TranslationEngine")
            .field("hierarchy", &self.hierarchy)
            .field("backend", &self.backend)
            .finish()
    }
}

struct UnifiedWalk {
    translation: Option<Translation>,
    pte_reads: Vec<PhysAddr>,
    pte_writes: Vec<PhysAddr>,
    line: Vec<Translation>,
}

/// Event counters for one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Trace events replayed.
    pub accesses: u64,
    /// L1 TLB hits.
    pub l1_hits: u64,
    /// L2 TLB hits (on L1 misses).
    pub l2_hits: u64,
    /// Page-table walks (misses at every level).
    pub walks: u64,
    /// Walks that faulted (should be zero after pre-faulting).
    pub faults: u64,
    /// Translation stall cycles: L2 probe latency on L1 misses plus the
    /// memory-reference latency of walks.
    pub stall_cycles: u64,
    /// Walk memory traffic, for the energy model.
    pub walk_traffic: WalkTraffic,
    /// Dirty-bit update micro-ops injected on store hits.
    pub dirty_microops: u64,
}

/// Replays trace events against a [`TlbHierarchy`], walking the configured
/// [`WalkBackend`] on misses. PTE references go through a functional cache
/// hierarchy; the latencies they see become translation stall cycles
/// (paper Sec. 6.2).
pub struct TranslationEngine<'a> {
    hierarchy: TlbHierarchy,
    caches: CacheHierarchy,
    /// Paging-structure cache: upper-level PTE reads that hit here cost
    /// one cycle and no memory reference (Haswell's MMU caches). `None`
    /// disables it (an ablation: pre-MMU-cache hardware).
    pwc: Option<PageWalkCache>,
    /// Nested TLB (gPA → sPA, AMD-NPT style), consulted by 2-D walks so
    /// guest PTE reads do not each pay a full host walk. Part of the MMU,
    /// shared by every design under test. `None` disables it.
    ntlb: Option<Box<dyn TlbDevice>>,
    backend: WalkBackend<'a>,
    l2_hit_cycles: u64,
    /// Tag for lookups and fills. [`Asid::UNTAGGED`] (the default)
    /// reproduces untagged hardware exactly.
    asid: Asid,
    stats: EngineStats,
}

impl<'a> TranslationEngine<'a> {
    /// Creates an engine over a hierarchy and a walk backend, with the
    /// Haswell cache hierarchy and a 7-cycle L2 TLB latency (Sec. 4).
    pub fn new(hierarchy: TlbHierarchy, backend: WalkBackend<'a>) -> TranslationEngine<'a> {
        TranslationEngine {
            hierarchy,
            caches: CacheHierarchy::new(HierarchyConfig::haswell()),
            pwc: Some(PageWalkCache::new(32)),
            ntlb: Some(Box::new(MixTlb::new(
                MixTlbConfig::l1(8, 4).named("nested-tlb"),
            ))),
            backend,
            l2_hit_cycles: 7,
            asid: Asid::UNTAGGED,
            stats: EngineStats::default(),
        }
    }

    /// Sets the address-space identifier tagging subsequent lookups and
    /// fills — the PCID of the running process. On designs whose devices
    /// ignore tags this is a no-op (see [`TlbHierarchy::supports_asids`]).
    pub fn set_asid(&mut self, asid: Asid) {
        self.asid = asid;
    }

    /// Whether the hierarchy under test honours ASID tags.
    pub fn supports_asids(&self) -> bool {
        self.hierarchy.supports_asids()
    }

    /// The hierarchy under test.
    pub fn hierarchy(&self) -> &TlbHierarchy {
        &self.hierarchy
    }

    /// Disables the paging-structure cache (ablation: every walk reference
    /// goes through the memory hierarchy).
    pub fn disable_pwc(&mut self) {
        self.pwc = None;
    }

    /// Disables the nested TLB (ablation: every guest-physical access of a
    /// 2-D walk pays a full host walk — the canonical 24 references).
    pub fn disable_nested_tlb(&mut self) {
        self.ntlb = None;
    }

    /// Flushes every TLB level (a context switch on hardware without
    /// ASIDs/PCIDs, or a full shootdown). MMU caches (PWC, nested TLB)
    /// are flushed too; data caches survive, as on real hardware.
    pub fn flush_tlbs(&mut self) {
        self.hierarchy.l1.flush();
        if let Some(l2) = self.hierarchy.l2.as_mut() {
            l2.flush();
        }
        if let Some(pwc) = self.pwc.as_mut() {
            pwc.flush();
        }
        if let Some(ntlb) = self.ntlb.as_mut() {
            ntlb.flush();
        }
    }

    /// Translates one trace event. Returns the physical address, or `None`
    /// on a page fault (which is also counted).
    pub fn access(&mut self, ev: &TraceEvent) -> Option<PhysAddr> {
        self.stats.accesses += 1;
        let vpn = ev.va.vpn();
        // L1. Extra serial probes (hash-rehash) cost pipeline bubbles.
        let l1_serial_before = self.hierarchy.l1.stats().serial_probes;
        let l1_result = self.hierarchy.l1.lookup_asid(self.asid, vpn, ev.kind, ev.pc);
        let l1_serial = self.hierarchy.l1.stats().serial_probes - l1_serial_before;
        self.stats.stall_cycles += 2 * l1_serial;
        match l1_result {
            Lookup::Hit {
                translation,
                dirty_microop,
                ..
            } => {
                if dirty_microop {
                    self.handle_dirty_microop(vpn);
                }
                self.stats.l1_hits += 1;
                return translation.translate(ev.va).ok();
            }
            Lookup::Miss => {}
        }
        self.resolve_miss(ev)
            .and_then(|translation| translation.translate(ev.va).ok())
    }

    /// Everything below an L1 miss: the L2 probe, the page-table walk, and
    /// the refills, with their stall/traffic accounting. Shared verbatim by
    /// [`TranslationEngine::access`] and
    /// [`TranslationEngine::translate_batch`] so the two paths cannot
    /// drift. Returns the resolving translation, or `None` on a fault.
    fn resolve_miss(&mut self, ev: &TraceEvent) -> Option<Translation> {
        let vpn = ev.va.vpn();
        // L2.
        if self.hierarchy.l2.is_some() {
            self.stats.stall_cycles += self.l2_hit_cycles;
            // lint: allow(panic) — is_some() checked in the surrounding condition
            let l2 = self.hierarchy.l2.as_mut().expect("just checked");
            let l2_serial_before = l2.stats().serial_probes;
            let l2_result = l2.lookup_asid(self.asid, vpn, ev.kind, ev.pc);
            let l2_serial = l2.stats().serial_probes - l2_serial_before;
            self.stats.stall_cycles += self.l2_hit_cycles * l2_serial;
            match l2_result {
                Lookup::Hit {
                    translation,
                    dirty_microop,
                    run,
                } => {
                    if dirty_microop {
                        self.handle_dirty_microop(vpn);
                    }
                    self.stats.l2_hits += 1;
                    // Refill L1 from the L2 hit. A coalescing L2 entry
                    // hands its whole run down, so a MIX L1 can absorb the
                    // bundle instead of a lone translation.
                    match run {
                        Some(run) if run.len > 1 => {
                            let line = run.translations();
                            self.hierarchy.l1.fill_asid(self.asid, vpn, &translation, &line);
                        }
                        _ => {
                            self.hierarchy
                                .l1
                                .fill_asid(self.asid, vpn, &translation, &[translation]);
                        }
                    }
                    return Some(translation);
                }
                Lookup::Miss => {}
            }
        }
        // Walk. All PTE reads but the last are upper-level paging
        // structures; the paging-structure cache serves most of them in a
        // cycle without touching the memory hierarchy.
        self.stats.walks += 1;
        let walk = self.walk(ev.va, ev.kind);
        let last = walk.pte_reads.len().saturating_sub(1);
        for (i, pa) in walk.pte_reads.iter().enumerate() {
            if i != last && self.pwc.as_mut().is_some_and(|pwc| pwc.access(*pa)) {
                self.stats.stall_cycles += 1;
                continue;
            }
            let result = self.caches.access(*pa);
            self.stats.stall_cycles += result.cycles;
            match result.level_hit {
                Some(level) => self.stats.walk_traffic.cache_hits[level.min(2)] += 1,
                None => self.stats.walk_traffic.dram_accesses += 1,
            }
        }
        for pa in &walk.pte_writes {
            let result = self.caches.access(*pa);
            self.stats.stall_cycles += result.cycles;
            self.stats.walk_traffic.pte_writes += 1;
        }
        let Some(translation) = walk.translation else {
            self.stats.faults += 1;
            return None;
        };
        if let Some(l2) = self.hierarchy.l2.as_mut() {
            l2.fill_asid(self.asid, vpn, &translation, &walk.line);
            // A coalescing L2 may have merged this fill into an entry that
            // already covered neighbouring translations; hand the merged
            // run down so the L1 absorbs the full extent (same datapath
            // as an L2-hit handdown).
            if let Some(run) = l2.peek_run(vpn) {
                if run.len as usize > walk.line.len() {
                    let line = run.translations();
                    self.hierarchy.l1.fill_asid(self.asid, vpn, &translation, &line);
                    return Some(translation);
                }
            }
        }
        self.hierarchy.l1.fill_asid(self.asid, vpn, &translation, &walk.line);
        Some(translation)
    }

    /// Replays a batch of events.
    pub fn run<I: IntoIterator<Item = TraceEvent>>(&mut self, events: I) {
        for ev in events {
            self.access(&ev);
        }
    }

    /// Translates a slice of trace events, appending one physical address
    /// (or `None` for a fault) per event to `out` — the batched
    /// counterpart of calling [`TranslationEngine::access`] in a loop,
    /// with two hot-loop savings:
    ///
    /// * L1 probes go through [`TlbDevice::lookup_batch`], so the replay
    ///   loop pays one dynamic dispatch per chunk instead of per access
    ///   (serial-probe stalls are accounted per chunk; the per-access sum
    ///   is identical).
    /// * A run of *immediately consecutive* accesses to the same 4 KB page
    ///   reuses the previous access's resolution instead of re-probing —
    ///   sound because nothing can intervene between consecutive accesses
    ///   of one batch: the scalar path's repeat probe is a guaranteed hit
    ///   on the same entry, its LRU re-touch preserves relative recency
    ///   order, and its duplicate sweep is a no-op. Stores take the window
    ///   only when it was seeded by a probe hit on an already-dirty entry
    ///   (so no dirty micro-op can fire); faults never seed it.
    ///
    /// Per-access results and [`EngineStats`] match the scalar path
    /// exactly for every non-predictive design (window hits count as L1
    /// hits); prediction-based designs skip predictor training on window
    /// hits, which can only alter their serial-probe stall accounting,
    /// never presence or translations.
    pub fn translate_batch(&mut self, events: &[TraceEvent], out: &mut Vec<Option<PhysAddr>>) {
        /// Probe-chunk cap: keeps the staging buffer cache-resident.
        const CHUNK: usize = 256;
        // Pre-size the output and write by index: every event owns exactly
        // one slot (slot i = events[i]), faults simply stay `None`, and the
        // hot loops avoid `push`'s per-element capacity check — on the
        // replay fast path that check costs more than the translation.
        let base = out.len();
        out.resize(base + events.len(), None);
        let out = &mut out[base..];
        let mut batch: Vec<BatchAccess> = Vec::with_capacity(CHUNK);
        let mut lookups: Vec<Lookup> = Vec::with_capacity(CHUNK);
        let mut window: Option<ReuseWindow> = None;
        // Serial-probe stall accounting is a sum over probes, so one
        // before/after read of the (by-value, possibly merged) device
        // stats covers the whole batch — scalar reads them per access,
        // which is a large share of its per-access cost.
        let l1_serial_before = self.hierarchy.l1.stats().serial_probes;
        let mut i = 0usize;
        while i < events.len() {
            // Fast path: drain the whole run of accesses the reuse window
            // serves in one tight loop — the frame of the window's 4 KB
            // page is precomputed at seed time, so each served access is a
            // page-number compare plus an offset splice, with one stats
            // update for the run.
            if let Some(w) = window {
                let run_start = i;
                while let Some(ev) = events.get(i) {
                    if ev.va.vpn() != w.vpn || (!w.serves_stores && ev.kind.is_store()) {
                        break;
                    }
                    out[i] = Some(PhysAddr::from_page(
                        w.frame,
                        ev.va.page_offset(PageSize::Size4K),
                    ));
                    i += 1;
                }
                let served = (i - run_start) as u64;
                self.stats.accesses += served;
                self.stats.l1_hits += served;
                if i >= events.len() {
                    break;
                }
            }
            // Stage a chunk of probes, stopping before any access the
            // reuse window should serve (same page as its predecessor,
            // not a store) so the fast path above gets it.
            batch.clear();
            let mut j = i;
            while j < events.len() && batch.len() < CHUNK {
                let e = &events[j];
                if j > i && e.va.vpn() == events[j - 1].va.vpn() && !e.kind.is_store() {
                    break;
                }
                batch.push(BatchAccess {
                    vpn: e.va.vpn(),
                    kind: e.kind,
                    pc: e.pc,
                });
                j += 1;
            }
            // Probe the staged chunk. The device consumes accesses up to
            // and including its first miss; after resolving that miss,
            // continue from the next staged access — the staged copies
            // are immutable, so nothing needs re-staging.
            let mut pos = 0usize;
            while pos < batch.len() {
                lookups.clear();
                let consumed =
                    self.hierarchy
                        .l1
                        .lookup_batch(self.asid, &batch[pos..], &mut lookups);
                if consumed == 0 {
                    // A conforming device always consumes at least one
                    // access; fall back to the scalar path so a degenerate
                    // implementation still makes forward progress. The
                    // scalar path charges its own serial-probe stalls, so
                    // back out what the batch-wide sum below will re-add.
                    let before = self.hierarchy.l1.stats().serial_probes;
                    out[i + pos] = self.access(&events[i + pos]);
                    let double = self.hierarchy.l1.stats().serial_probes - before;
                    self.stats.stall_cycles -= 2 * double;
                    pos += 1;
                    continue;
                }
                for (k, result) in lookups.iter().enumerate() {
                    let ev = &events[i + pos + k];
                    self.stats.accesses += 1;
                    match *result {
                        Lookup::Hit {
                            translation,
                            dirty_microop,
                            ..
                        } => {
                            if dirty_microop {
                                self.handle_dirty_microop(ev.va.vpn());
                            }
                            self.stats.l1_hits += 1;
                            out[i + pos + k] = translation.translate(ev.va).ok();
                            window = seed_window(ev.va.vpn(), &translation, translation.dirty);
                        }
                        Lookup::Miss => {
                            if let Some(translation) = self.resolve_miss(ev) {
                                out[i + pos + k] = translation.translate(ev.va).ok();
                                window = seed_window(ev.va.vpn(), &translation, false);
                            }
                        }
                    }
                }
                pos += consumed;
            }
            i += batch.len();
        }
        let l1_serial = self.hierarchy.l1.stats().serial_probes - l1_serial_before;
        self.stats.stall_cycles += 2 * l1_serial;
    }

    fn walk(&mut self, va: VirtAddr, kind: mixtlb_types::AccessKind) -> UnifiedWalk {
        match &mut self.backend {
            WalkBackend::Native(pt) => {
                let w = Walker::walk(pt, va, kind);
                UnifiedWalk {
                    translation: w.translation,
                    pte_reads: w.pte_reads,
                    pte_writes: w.pte_writes,
                    line: w.line_translations,
                }
            }
            WalkBackend::Nested { guest, host } => {
                let w = match self.ntlb.as_mut() {
                    Some(ntlb) => {
                        let mut cache = NtlbAdapter(ntlb.as_mut());
                        NestedWalker::walk_cached(guest, host, va, kind, &mut cache)
                    }
                    None => NestedWalker::walk(guest, host, va, kind),
                };
                UnifiedWalk {
                    translation: w.translation,
                    pte_reads: w.pte_reads,
                    pte_writes: w.pte_writes,
                    line: w.line_translations,
                }
            }
        }
    }

    /// A store hit an entry whose dirty bit is clear: write the PTE's
    /// dirty bit (off the critical path — cache traffic and energy, not
    /// stall cycles; Sec. 4.4).
    fn handle_dirty_microop(&mut self, vpn: Vpn) {
        self.stats.dirty_microops += 1;
        let pte_pa = match &mut self.backend {
            WalkBackend::Native(pt) => pt.set_dirty(vpn),
            WalkBackend::Nested { guest, host } => {
                // The guest PTE's dirty bit lives at a guest-physical
                // address; route the write through the EPT mapping.
                guest.set_dirty(vpn).and_then(|gpa| {
                    host.lookup(Vpn::new(gpa.pfn().raw()))
                        .and_then(|h| h.translate(VirtAddr::new(gpa.raw())).ok())
                })
            }
        };
        if let Some(pa) = pte_pa {
            self.caches.access(pa);
            self.stats.walk_traffic.pte_writes += 1;
        }
    }

    /// Finishes the run: engine counters, per-level TLB stats, and cache
    /// statistics.
    pub fn finish(self) -> (EngineStats, TlbStats, Option<TlbStats>, HierarchyStats) {
        let l1 = self.hierarchy.l1.stats();
        let l2 = self.hierarchy.l2.as_ref().map(|t| t.stats());
        (self.stats, l1, l2, self.caches.stats())
    }

    /// The running counters (without consuming the engine).
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_core::{MixTlb, MixTlbConfig};
    use mixtlb_pagetable::BumpFrameSource;
    use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation};

    fn small_world() -> (PageTable, BumpFrameSource) {
        let mut frames = BumpFrameSource::new(0x10_0000);
        let mut pt = PageTable::new(&mut frames);
        for i in 0..4u64 {
            pt.map(
                Translation::new(
                    Vpn::new(0x400 + i * 512),
                    Pfn::new(0x8000 + i * 512),
                    PageSize::Size2M,
                    Permissions::rw_user(),
                ),
                &mut frames,
            )
            .unwrap();
        }
        (pt, frames)
    }

    fn hierarchy() -> TlbHierarchy {
        TlbHierarchy::new(
            "mix-test",
            Box::new(MixTlb::new(MixTlbConfig::l1(4, 2))),
            Some(Box::new(MixTlb::new(MixTlbConfig::l2(16, 4)))),
        )
    }

    #[test]
    fn with_entries_overrides_leakage_accounting() {
        let h = hierarchy();
        let derived = h.total_entries();
        assert!(derived > 0);
        let h = h.with_entries(1000);
        assert_eq!(h.total_entries(), 1000);
    }

    fn ev(va: u64, kind: AccessKind) -> TraceEvent {
        TraceEvent {
            pc: 0x40_0000,
            va: VirtAddr::new(va),
            kind,
        }
    }

    #[test]
    fn translation_is_correct_through_all_paths() {
        let (mut pt, _frames) = small_world();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        let va = 0x400u64 * 4096 + 0x123;
        // Cold: walk.
        let pa = engine.access(&ev(va, AccessKind::Load)).unwrap();
        assert_eq!(pa.raw(), 0x8000u64 * 4096 + 0x123);
        // Warm: L1 hit yields the same PA.
        let pa2 = engine.access(&ev(va, AccessKind::Load)).unwrap();
        assert_eq!(pa, pa2);
        let stats = engine.stats();
        assert_eq!(stats.walks, 1);
        assert_eq!(stats.l1_hits, 1);
        assert_eq!(stats.faults, 0);
    }

    #[test]
    fn stall_cycles_shrink_as_tlbs_warm() {
        let (mut pt, _frames) = small_world();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        let va = 0x400u64 * 4096;
        engine.access(&ev(va, AccessKind::Load));
        let cold = engine.stats().stall_cycles;
        engine.access(&ev(va, AccessKind::Load));
        assert_eq!(engine.stats().stall_cycles, cold, "L1 hits stall nothing");
    }

    #[test]
    fn faults_are_counted_not_fatal() {
        let (mut pt, _frames) = small_world();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        assert!(engine.access(&ev(0x9999_9000, AccessKind::Load)).is_none());
        assert_eq!(engine.stats().faults, 1);
    }

    #[test]
    fn store_dirty_microops_touch_the_page_table() {
        let (mut pt, _frames) = small_world();
        {
            let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
            let va = 0x400u64 * 4096;
            engine.access(&ev(va, AccessKind::Load)); // fill (clean)
            engine.access(&ev(va, AccessKind::Store)); // hit: micro-op
            let stats = engine.stats();
            assert_eq!(stats.dirty_microops, 1);
            assert_eq!(stats.walk_traffic.pte_writes, 1);
        }
        assert!(pt.lookup(Vpn::new(0x400)).unwrap().dirty);
    }

    #[test]
    fn walk_traffic_reaches_dram_when_cold() {
        let (mut pt, _frames) = small_world();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        engine.access(&ev(0x400u64 * 4096, AccessKind::Load));
        let t = engine.stats().walk_traffic;
        assert!(t.dram_accesses > 0);
        assert_eq!(t.total_reads(), 3); // 2 MB leaf: 3 PTE reads
    }

    #[test]
    fn coalescing_turns_neighbour_misses_into_hits() {
        // After walking superpage 0 (whose PTE cache line holds all 4
        // contiguous superpages), the other three are TLB hits: the L1's
        // 4-superpage bundle covers two of them, and the L2's 16-superpage
        // bundle covers the rest — no further walks.
        let (mut pt, _frames) = small_world();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        engine.access(&ev(0x400u64 * 4096, AccessKind::Load));
        for i in 1..4u64 {
            engine.access(&ev((0x400 + i * 512) * 4096, AccessKind::Load));
        }
        let stats = engine.stats();
        assert_eq!(stats.walks, 1);
        assert_eq!(stats.l1_hits + stats.l2_hits, 3);
        assert!(stats.l1_hits >= 1);
    }

    /// Two 2 MB pages sharing PML4/PDPT/PD nodes but living in different
    /// PTE cache lines *and* different coalescing bundles, so the second
    /// access misses the TLBs and walks.
    fn two_distant_superpages() -> (PageTable, mixtlb_pagetable::BumpFrameSource) {
        use mixtlb_types::{PageSize, Permissions, Pfn};
        let mut frames = mixtlb_pagetable::BumpFrameSource::new(0x10_0000);
        let mut pt = PageTable::new(&mut frames);
        for idx in [2u64, 18] {
            pt.map(
                Translation::new(
                    Vpn::new(idx * 512),
                    Pfn::new(0x8000 + idx * 512),
                    PageSize::Size2M,
                    Permissions::rw_user(),
                ),
                &mut frames,
            )
            .unwrap();
        }
        (pt, frames)
    }

    #[test]
    fn pwc_serves_upper_levels_after_warmup() {
        let (mut pt, _frames) = two_distant_superpages();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        // First walk: all 3 PTE reads go through the memory hierarchy.
        engine.access(&ev(2 * 512 * 4096, AccessKind::Load));
        let first = engine.stats().walk_traffic.total_reads();
        assert_eq!(first, 3);
        // The distant superpage misses the TLBs; its walk's PML4 and PDPT
        // reads hit the PWC, so only the leaf PD read touches memory.
        engine.access(&ev(18 * 512 * 4096, AccessKind::Load));
        assert_eq!(engine.stats().walks, 2, "second access must walk");
        let second = engine.stats().walk_traffic.total_reads() - first;
        assert_eq!(second, 1, "PWC must absorb the upper-level reads");
    }

    #[test]
    fn disabling_the_pwc_restores_full_walk_traffic() {
        let (mut pt, _frames) = two_distant_superpages();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        engine.disable_pwc();
        engine.access(&ev(2 * 512 * 4096, AccessKind::Load));
        engine.access(&ev(18 * 512 * 4096, AccessKind::Load));
        assert_eq!(engine.stats().walks, 2);
        assert_eq!(engine.stats().walk_traffic.total_reads(), 6);
    }

    #[test]
    fn serial_probes_cost_extra_l2_latency() {
        use mixtlb_core::{MultiProbeConfig, MultiProbeTlb};
        // L2 = hash-rehash of all sizes: a 2 MB hit needs 2 serial probes.
        let (mut pt, _frames) = small_world();
        let h = TlbHierarchy::new(
            "hr-test",
            Box::new(MixTlb::new(MixTlbConfig::l1(4, 2))),
            Some(Box::new(MultiProbeTlb::new(MultiProbeConfig::all_sizes(16, 4)))),
        );
        let mut engine = TranslationEngine::new(h, WalkBackend::Native(&mut pt));
        let va = 0x400u64 * 4096;
        engine.access(&ev(va, AccessKind::Load)); // cold walk
        let after_walk = engine.stats().stall_cycles;
        // Evict from L1 by flushing it, then hit the hash-rehash L2: the
        // 2 MB entry is found on the SECOND probe, costing 2 x 7 cycles.
        engine.hierarchy.l1.flush();
        engine.access(&ev(va, AccessKind::Load));
        assert_eq!(engine.stats().stall_cycles - after_walk, 14);
        assert_eq!(engine.stats().l2_hits, 1);
    }

    #[test]
    fn nested_backend_charges_two_dimensional_walks() {
        use mixtlb_pagetable::BumpFrameSource;
        use mixtlb_types::Permissions;
        // Guest: one 4 KB page; host: 4 KB identity-with-offset backing.
        let mut gframes = BumpFrameSource::new(0x1000);
        let mut guest = PageTable::new(&mut gframes);
        let mut hframes = BumpFrameSource::new(0x80_0000);
        let mut host = PageTable::new(&mut hframes);
        for gpn in 0..0x3000u64 {
            host.map(
                Translation::new(
                    Vpn::new(gpn),
                    mixtlb_types::Pfn::new(0x10_0000 + gpn),
                    mixtlb_types::PageSize::Size4K,
                    Permissions::rw_user(),
                ),
                &mut hframes,
            )
            .unwrap();
        }
        guest
            .map(
                Translation::new(
                    Vpn::new(5),
                    mixtlb_types::Pfn::new(0x50),
                    mixtlb_types::PageSize::Size4K,
                    Permissions::rw_user(),
                ),
                &mut gframes,
            )
            .unwrap();
        let mut engine = TranslationEngine::new(
            hierarchy(),
            WalkBackend::Nested {
                guest: &mut guest,
                host: &mut host,
            },
        );
        let pa = engine.access(&ev(5 * 4096 + 0x42, AccessKind::Load)).unwrap();
        assert_eq!(pa.raw(), (0x10_0000 + 0x50) * 4096 + 0x42);
        // 24 PTE reads, some PWC-absorbed, the rest through the caches.
        let t = engine.stats().walk_traffic;
        assert!(t.total_reads() <= 24 && t.total_reads() >= 4);
    }

    #[test]
    fn nested_tlb_cuts_two_dimensional_walk_traffic() {
        use mixtlb_pagetable::BumpFrameSource;
        use mixtlb_types::{PageSize, Permissions, Pfn};
        let build = || {
            let mut gframes = BumpFrameSource::new(0x1000);
            let mut guest = PageTable::new(&mut gframes);
            let mut hframes = BumpFrameSource::new(0x80_0000);
            let mut host = PageTable::new(&mut hframes);
            for gpn in (0..0x3000u64).step_by(512) {
                host.map(
                    Translation::new(
                        Vpn::new(gpn),
                        Pfn::new(0x10_0000 + gpn),
                        PageSize::Size2M,
                        Permissions::rw_user(),
                    ),
                    &mut hframes,
                )
                .unwrap();
            }
            // Guest pages in different guest PT nodes to force repeated
            // guest-PTE host translations.
            for slot in 0..4u64 {
                guest
                    .map(
                        Translation::new(
                            Vpn::new(slot << 18),
                            Pfn::new(0x100 + slot * 8),
                            PageSize::Size4K,
                            Permissions::rw_user(),
                        ),
                        &mut gframes,
                    )
                    .unwrap();
            }
            (guest, host)
        };
        let run = |disable: bool| {
            let (mut guest, mut host) = build();
            let mut engine = TranslationEngine::new(
                hierarchy(),
                WalkBackend::Nested {
                    guest: &mut guest,
                    host: &mut host,
                },
            );
            engine.disable_pwc();
            if disable {
                engine.disable_nested_tlb();
            }
            for slot in 0..4u64 {
                engine.access(&ev((slot << 18) * 4096, AccessKind::Load));
            }
            engine.stats().walk_traffic.total_reads()
        };
        let with_ntlb = run(false);
        let without = run(true);
        assert!(
            with_ntlb < without,
            "nested TLB must reduce walk references: {with_ntlb} vs {without}"
        );
    }

    #[test]
    fn finish_exposes_all_statistics() {
        let (mut pt, _frames) = small_world();
        let mut engine = TranslationEngine::new(hierarchy(), WalkBackend::Native(&mut pt));
        engine.run([ev(0x400u64 * 4096, AccessKind::Load)]);
        let (stats, l1, l2, caches) = engine.finish();
        assert_eq!(stats.accesses, 1);
        assert_eq!(l1.lookups, 1);
        assert_eq!(l2.unwrap().lookups, 1);
        assert!(caches.total_cycles > 0);
    }
}
