//! Trace recording and replay: a compact binary on-disk format.
//!
//! The paper's methodology records Pin memory traces once and replays them
//! through many TLB configurations (Sec. 6.2). This module provides the
//! equivalent tooling for our synthetic traces: record any event stream to
//! a file, then replay it any number of times — guaranteeing every design
//! sees byte-identical input, and letting expensive generators (or, with
//! external conversion, real Pin traces) be captured once.
//!
//! # Format
//!
//! A 16-byte header (`magic "MXTLBTRC"`, `u32` version, `u32` reserved)
//! followed by fixed-size little-endian records:
//!
//! ```text
//! u64 pc | u64 virtual address | u8 kind (0 load, 1 store, 2 fetch)
//! ```
//!
//! # Examples
//!
//! ```no_run
//! use mixtlb_trace::{TraceFile, TraceGenerator, WorkloadSpec};
//! use mixtlb_types::Vpn;
//!
//! let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(1 << 24);
//! let gen = TraceGenerator::new(&spec, 42, Vpn::new(0x1000));
//! TraceFile::record("gups.trc", gen.take(100_000))?;
//! for event in TraceFile::open("gups.trc")? {
//!     let _event = event?;
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mixtlb_types::{AccessKind, VirtAddr};

use crate::generator::TraceEvent;

const MAGIC: &[u8; 8] = b"MXTLBTRC";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 17;

/// Reader/writer for the binary trace format.
#[derive(Debug)]
pub struct TraceFile {
    reader: BufReader<File>,
    remaining_hint: Option<u64>,
}

impl TraceFile {
    /// Records an event stream to `path`. Returns the number of events
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn record<I: IntoIterator<Item = TraceEvent>>(
        path: impl AsRef<Path>,
        events: I,
    ) -> io::Result<u64> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?;
        let mut count = 0u64;
        for ev in events {
            let mut rec = [0u8; RECORD_BYTES];
            rec[0..8].copy_from_slice(&ev.pc.to_le_bytes());
            rec[8..16].copy_from_slice(&ev.va.raw().to_le_bytes());
            rec[16] = match ev.kind {
                AccessKind::Load => 0,
                AccessKind::Store => 1,
                AccessKind::Fetch => 2,
            };
            out.write_all(&rec)?;
            count += 1;
        }
        out.flush()?;
        Ok(count)
    }

    /// Opens a trace for replay.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if the file is not a trace
    /// (bad magic or unsupported version), or propagates I/O errors.
    pub fn open(path: impl AsRef<Path>) -> io::Result<TraceFile> {
        let file = File::open(&path)?;
        let len = file.metadata().ok().map(|m| m.len());
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a mixtlb trace file (bad magic)",
            ));
        }
        let mut word = [0u8; 4];
        reader.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version == crate::file_v2::VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "v2 compact trace — open it with TraceFileV2 (or downgrade \
                 via `tracectl convert`)",
            ));
        }
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        reader.read_exact(&mut word)?; // reserved
        let remaining_hint = len.map(|l| (l.saturating_sub(16)) / RECORD_BYTES as u64);
        Ok(TraceFile {
            reader,
            remaining_hint,
        })
    }

    /// Number of records the file holds, if the size was determinable.
    pub fn len_hint(&self) -> Option<u64> {
        self.remaining_hint
    }
}

/// Error for a corrupt access-kind byte. `#[cold]`: corruption is not
/// the replay loop's fast path, and isolating the `format!` here keeps
/// formatting machinery out of the hot record decoder.
#[cold]
fn bad_access_kind(other: u8) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("invalid access kind {other}"),
    )
}

impl Iterator for TraceFile {
    type Item = io::Result<TraceEvent>;

    fn next(&mut self) -> Option<io::Result<TraceEvent>> {
        let mut rec = [0u8; RECORD_BYTES];
        match self.reader.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return None,
            Err(e) => return Some(Err(e)),
        }
        // lint: allow(panic) — the slice is exactly 8 bytes by the constant indices
        let pc = u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes"));
        // lint: allow(panic) — the slice is exactly 8 bytes by the constant indices
        let va = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
        let kind = match rec[16] {
            0 => AccessKind::Load,
            1 => AccessKind::Store,
            2 => AccessKind::Fetch,
            other => return Some(Err(bad_access_kind(other))),
        };
        Some(Ok(TraceEvent {
            pc,
            va: VirtAddr::new(va),
            kind,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::workloads::WorkloadSpec;
    use mixtlb_types::Vpn;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mixtlb-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn record_replay_roundtrip() {
        let spec = WorkloadSpec::by_name("memcached")
            .unwrap()
            .with_footprint(1 << 24);
        let original: Vec<TraceEvent> = TraceGenerator::new(&spec, 7, Vpn::new(0x1000))
            .take(5_000)
            .collect();
        let path = temp("roundtrip.trc");
        let written = TraceFile::record(&path, original.iter().copied()).unwrap();
        assert_eq!(written, 5_000);
        let file = TraceFile::open(&path).unwrap();
        assert_eq!(file.len_hint(), Some(5_000));
        let replayed: Vec<TraceEvent> = file.map(|e| e.unwrap()).collect();
        assert_eq!(replayed, original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_is_valid() {
        let path = temp("empty.trc");
        TraceFile::record(&path, std::iter::empty()).unwrap();
        let mut file = TraceFile::open(&path).unwrap();
        assert!(file.next().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_access_kinds_roundtrip() {
        let path = temp("kinds.trc");
        let events = vec![
            TraceEvent { pc: 1, va: VirtAddr::new(0x1000), kind: AccessKind::Load },
            TraceEvent { pc: 2, va: VirtAddr::new(0x2000), kind: AccessKind::Store },
            TraceEvent { pc: 3, va: VirtAddr::new(0x3000), kind: AccessKind::Fetch },
        ];
        TraceFile::record(&path, events.iter().copied()).unwrap();
        let replayed: Vec<TraceEvent> = TraceFile::open(&path)
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(replayed, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp("bad.trc");
        std::fs::write(&path, b"NOTATRACE_______________").unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_ends_iteration() {
        let path = temp("trunc.trc");
        let events = vec![TraceEvent {
            pc: 1,
            va: VirtAddr::new(0x1000),
            kind: AccessKind::Load,
        }];
        TraceFile::record(&path, events).unwrap();
        // Chop 5 bytes off the record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut file = TraceFile::open(&path).unwrap();
        // A partial record reads as EOF (clean end).
        assert!(file.next().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_files_get_a_version_hint_not_garbage() {
        let path = temp("v2hint.trc");
        crate::file_v2::TraceFileV2::record(&path, std::iter::empty()).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("TraceFileV2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_kind_is_an_error() {
        let path = temp("kind.trc");
        TraceFile::record(&path, std::iter::empty()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        bytes.push(9); // bogus kind
        std::fs::write(&path, &bytes).unwrap();
        let mut file = TraceFile::open(&path).unwrap();
        assert!(file.next().unwrap().is_err());
        std::fs::remove_file(&path).ok();
    }
}
