//! Synthetic workload trace generation.
//!
//! The paper drives its functional simulations with Pin memory traces of
//! Spec/PARSEC, big-memory server workloads (80 GB footprints), and Rodinia
//! GPU kernels (24 GB). Those traces cannot be regenerated here, so this
//! crate substitutes seeded synthetic generators that reproduce each
//! workload's *access-pattern class* — the property that determines TLB
//! behaviour: reach, locality, stride, and hot-set skew (see DESIGN.md,
//! substitution 2). Every generator:
//!
//! * emits [`TraceEvent`]s (PC, virtual address, load/store) confined to a
//!   configurable footprint,
//! * is deterministic for a given seed,
//! * carries a plausible PC stream (a small set of instruction addresses),
//!   which the page-size-predictor baselines index.
//!
//! Per-workload analytical-model constants (base CPI, memory ops per
//! instruction) live in [`WorkloadSpec`]; they weight translation stalls
//! into runtime the way the paper's performance-counter data does.
//!
//! # Examples
//!
//! ```
//! use mixtlb_trace::{TraceGenerator, WorkloadSpec};
//! use mixtlb_types::Vpn;
//!
//! let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(1 << 30);
//! let mut gen = TraceGenerator::new(&spec, 42, Vpn::new(0x10_0000));
//! let events: Vec<_> = gen.by_ref().take(1000).collect();
//! assert!(events.iter().all(|e| {
//!     let page = e.va.vpn().raw() - 0x10_0000;
//!     page < (1 << 30) / 4096
//! }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod file;
mod file_v2;
mod generator;
mod percore;
mod workloads;

pub use file::TraceFile;
pub use file_v2::{
    decode_block, probe_version, v1_equivalent_bytes, BlockReader, RawBlock, TraceFileV2,
    BLOCK_EVENTS as V2_BLOCK_EVENTS,
};
pub use generator::{TraceEvent, TraceGenerator};
pub use percore::{split_partitioned, split_shared, CoreStream};
pub use workloads::{AccessPattern, WorkloadClass, WorkloadSpec};
