//! The trace generator: one seeded iterator per workload.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mixtlb_types::{AccessKind, VirtAddr, Vpn, PAGE_SIZE_4K};

use crate::workloads::{AccessPattern, WorkloadSpec};

/// One memory reference of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// PC of the instruction making the access (predictor index).
    pub pc: u64,
    /// The virtual address accessed.
    pub va: VirtAddr,
    /// Load or store.
    pub kind: AccessKind,
}

/// An infinite, deterministic stream of [`TraceEvent`]s reproducing a
/// workload's access-pattern class. See the [crate docs](crate) for the
/// substitution rationale.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    pattern: AccessPattern,
    store_fraction: f64,
    /// Footprint base, in bytes.
    base: u64,
    /// Footprint length, in bytes.
    len: u64,
    rng: SmallRng,
    /// Pattern state: current position(s), in bytes from `base`.
    cursor: u64,
    streams: Vec<u64>,
    stream_idx: usize,
    burst_left: u32,
    /// Synthetic code region the PC stream walks through.
    pc_base: u64,
    pc_count: u64,
    /// Zipf parameters (precomputed).
    zipf_pages: u64,
    zipf_exp: f64,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, seeded with `seed`, with the
    /// footprint starting at the 4 KB page `region_base`.
    pub fn new(spec: &WorkloadSpec, seed: u64, region_base: Vpn) -> TraceGenerator {
        let pattern = spec.pattern;
        let len = spec.footprint_bytes;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7261_6365); // "race"
        let streams = match pattern {
            // Grid-stride tiling: the machine's CTAs process *adjacent*
            // 2 MB tiles concurrently, then jump forward one tile-group —
            // cursor k lives in tile `tile_group * streams + k`.
            AccessPattern::CoalescedStreams { streams } => vec![0; streams as usize],
            _ => Vec::new(),
        };
        let cursor = rng.gen_range(0..len.max(1));
        let pages = spec.footprint_pages().max(1);
        let zipf_theta = match pattern {
            AccessPattern::Zipf { theta } => Some(theta),
            AccessPattern::ScanPoint { .. } => Some(0.9),
            _ => None,
        };
        let zipf_exp = match zipf_theta {
            Some(theta) => {
                assert!(
                    theta > 0.0 && (theta - 1.0).abs() > 1e-6,
                    "theta must be > 0 and != 1"
                );
                1.0 - theta
            }
            None => 0.0,
        };
        TraceGenerator {
            pattern,
            store_fraction: spec.store_fraction,
            base: region_base.raw() * PAGE_SIZE_4K,
            len,
            rng,
            cursor,
            streams,
            stream_idx: 0,
            burst_left: 0,
            pc_base: 0x40_0000, // a typical text-segment base
            pc_count: 32,
            zipf_pages: pages,
            zipf_exp,
        }
    }

    /// Samples a Zipf-distributed page rank in `[0, zipf_pages)` via the
    /// inverse-CDF of the continuous bounded-Pareto approximation, then
    /// scrambles it so the hot set is scattered across the footprint (as
    /// hash-distributed keys are in a real key-value store).
    fn zipf_page(&mut self) -> u64 {
        let n = self.zipf_pages as f64;
        let s = self.zipf_exp; // 1 - theta
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let rank = ((n.powf(s) - 1.0) * u + 1.0).powf(1.0 / s) - 1.0;
        let rank = (rank as u64).min(self.zipf_pages - 1);
        // Multiplicative scramble (bijective modulo 2^64, then reduced).
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.zipf_pages
    }

    fn next_offset(&mut self) -> u64 {
        match self.pattern {
            AccessPattern::UniformRandom => self.rng.gen_range(0..self.len),
            AccessPattern::PointerChase { locality } => {
                if self.rng.gen_bool(locality) {
                    // Near jump: within ±64 KB.
                    let delta = self.rng.gen_range(0..131_072u64);
                    self.cursor = (self.cursor + self.len + delta - 65_536) % self.len;
                } else {
                    self.cursor = self.rng.gen_range(0..self.len);
                }
                self.cursor
            }
            AccessPattern::Zipf { .. } => {
                let page = self.zipf_page();
                page * PAGE_SIZE_4K + self.rng.gen_range(0..PAGE_SIZE_4K)
            }
            AccessPattern::Streaming { stride } => {
                self.cursor = (self.cursor + stride) % self.len;
                self.cursor
            }
            AccessPattern::GraphTraversal { avg_degree } => {
                if self.burst_left == 0 {
                    // Jump to a random vertex's adjacency list.
                    self.cursor = self.rng.gen_range(0..self.len);
                    self.burst_left = 1 + self.rng.gen_range(0..avg_degree * 2);
                }
                self.burst_left -= 1;
                self.cursor = (self.cursor + 64) % self.len;
                self.cursor
            }
            AccessPattern::Stencil { row_bytes } => {
                // Sweep forward; every third access reads the previous row.
                self.cursor = (self.cursor + 8) % self.len;
                if self.cursor.is_multiple_of(24) && self.cursor >= row_bytes {
                    self.cursor - row_bytes
                } else {
                    self.cursor
                }
            }
            AccessPattern::CoalescedStreams { .. } => {
                const TILE: u64 = 2 << 20; // one superpage per stream
                let n = self.streams.len() as u64;
                self.stream_idx = (self.stream_idx + 1) % self.streams.len();
                if self.stream_idx == 0 {
                    // One access per stream per round; advance the offset
                    // within the tile, moving to the next tile group when
                    // the tiles are consumed.
                    self.cursor += 128;
                    if self.cursor >= TILE {
                        self.cursor = 0;
                        self.burst_left = self.burst_left.wrapping_add(1); // tile group
                    }
                }
                let group = u64::from(self.burst_left);
                let tile = (group * n + self.stream_idx as u64) * TILE;
                (tile + self.cursor) % self.len
            }
            AccessPattern::LoopedStream { window_bytes, stride } => {
                let window = window_bytes.min(self.len).max(stride);
                self.cursor = (self.cursor + stride) % window;
                self.cursor
            }
            AccessPattern::ScanPoint { scan_fraction } => {
                if self.rng.gen_bool(scan_fraction) {
                    self.cursor = (self.cursor + 64) % self.len;
                    self.cursor
                } else {
                    let page = self.zipf_page();
                    page * PAGE_SIZE_4K + self.rng.gen_range(0..PAGE_SIZE_4K)
                }
            }
        }
    }

    fn next_pc(&mut self) -> u64 {
        // A small loop of instruction addresses, with occasional transfers
        // to a different "function" — enough structure for a PC-indexed
        // predictor to latch onto.
        let slot = self.rng.gen_range(0..self.pc_count);
        self.pc_base + slot * 4
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        let offset = self.next_offset();
        let kind = if self.rng.gen_bool(self.store_fraction) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let pc = self.next_pc();
        Some(TraceEvent {
            pc,
            va: VirtAddr::new(self.base + offset),
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadSpec;
    use std::collections::HashSet;

    fn events(name: &str, seed: u64, n: usize) -> Vec<TraceEvent> {
        let spec = WorkloadSpec::by_name(name).unwrap().with_footprint(64 << 20);
        TraceGenerator::new(&spec, seed, Vpn::new(0x10_0000))
            .take(n)
            .collect()
    }

    #[test]
    fn all_patterns_stay_in_bounds() {
        for w in WorkloadSpec::catalog() {
            let spec = w.clone().with_footprint(32 << 20);
            let base = 0x10_0000u64 * 4096;
            let len = spec.footprint_bytes;
            for e in TraceGenerator::new(&spec, 1, Vpn::new(0x10_0000)).take(5_000) {
                assert!(
                    e.va.raw() >= base && e.va.raw() < base + len,
                    "{} strayed to {}",
                    w.name,
                    e.va
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(events("gups", 7, 500), events("gups", 7, 500));
        assert_ne!(events("gups", 7, 500), events("gups", 8, 500));
    }

    #[test]
    fn gups_spreads_over_many_pages() {
        let pages: HashSet<u64> = events("gups", 1, 10_000)
            .iter()
            .map(|e| e.va.vpn().raw())
            .collect();
        assert!(pages.len() > 5_000, "only {} distinct pages", pages.len());
    }

    #[test]
    fn streaming_touches_pages_in_order() {
        let evs = events("streamcluster", 1, 1_000);
        let mut last = 0;
        let mut wraps = 0;
        for e in &evs {
            let page = e.va.vpn().raw();
            if page < last {
                wraps += 1;
            }
            last = page;
        }
        assert!(wraps <= 1, "streaming should be monotone modulo one wrap");
    }

    #[test]
    fn zipf_concentrates_on_hot_pages() {
        let evs = events("memcached", 1, 20_000);
        let mut counts: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for e in &evs {
            *counts.entry(e.va.vpn().raw()).or_default() += 1;
        }
        let mut freq: Vec<u32> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top16: u32 = freq.iter().take(16).sum();
        assert!(
            top16 as f64 > 0.10 * evs.len() as f64,
            "no hot set: top 16 pages got {top16} of {}",
            evs.len()
        );
    }

    #[test]
    fn pointer_chase_mixes_near_and_far() {
        let evs = events("mcf", 1, 10_000);
        let mut near = 0;
        let mut far = 0;
        for pair in evs.windows(2) {
            let d = pair[1].va.raw().abs_diff(pair[0].va.raw());
            if d <= 131_072 {
                near += 1;
            } else {
                far += 1;
            }
        }
        assert!(near > 1_000, "near jumps missing: {near}");
        assert!(far > 1_000, "far jumps missing: {far}");
    }

    #[test]
    fn store_fractions_are_respected() {
        let evs = events("gups", 1, 20_000);
        let stores = evs.iter().filter(|e| e.kind.is_store()).count();
        let frac = stores as f64 / evs.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "store fraction {frac}");
    }

    #[test]
    fn pcs_form_a_small_set() {
        let pcs: HashSet<u64> = events("memcached", 1, 5_000).iter().map(|e| e.pc).collect();
        assert!(pcs.len() <= 32);
        assert!(pcs.len() > 4);
    }

    #[test]
    fn coalesced_streams_interleave_partitions() {
        let evs = events("backprop", 1, 4_096);
        let quarter = (24u64 << 20) / 4; // footprint scaled to 64 MB below? use observed spread
        let _ = quarter;
        let distinct_mb: HashSet<u64> = evs.iter().map(|e| e.va.raw() >> 22).collect();
        assert!(distinct_mb.len() >= 8, "streams not spread: {}", distinct_mb.len());
    }
}
