//! Splitting one logical workload into per-core trace streams.
//!
//! The SMP engine replays one stream per core. Two splits cover the
//! paper's multicore evaluation shapes:
//!
//! * **Shared** — every core walks the *same* footprint with its own
//!   deterministic RNG stream, like the threads of one multithreaded
//!   process (graph500's traversal workers). Cores contend for the same
//!   translations, so TLB shootdowns hit hot entries everywhere.
//! * **Partitioned** — the footprint is divided into per-core slices,
//!   like a data-parallel job (GUPS ranks). Cores miss on disjoint pages
//!   and only the shared LLC couples them.
//!
//! Both splits are deterministic: each core's stream is a pure function
//! of `(spec, seed, core)`, never of the other cores' progress — the
//! property that lets parallel replay produce bit-identical per-core
//! statistics in any interleaving.

use mixtlb_types::{Vpn, PAGE_SIZE_4K};

use crate::generator::TraceGenerator;
use crate::workloads::WorkloadSpec;

/// One core's share of a split workload: where its pages live and the
/// deterministic event stream that touches them.
#[derive(Debug, Clone)]
pub struct CoreStream {
    /// The owning core's index.
    pub core: usize,
    /// First 4 KB page of the region this stream touches.
    pub region_base: Vpn,
    /// Bytes of footprint reachable from `region_base`.
    pub footprint_bytes: u64,
    /// The event stream (infinite; take as many events as needed).
    pub generator: TraceGenerator,
}

/// Per-core seed derivation: decorrelates the streams while keeping each
/// one a pure function of the base seed and core index.
fn core_seed(seed: u64, core: usize) -> u64 {
    seed ^ (core as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Splits `spec` into `cores` streams over one **shared** footprint at
/// `region_base`. Every stream covers the whole footprint.
///
/// # Panics
///
/// Panics when `cores` is zero.
///
/// # Examples
///
/// ```
/// use mixtlb_trace::{split_shared, WorkloadSpec};
/// use mixtlb_types::Vpn;
///
/// let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(16 << 20);
/// let streams = split_shared(&spec, 42, Vpn::new(0x10_0000), 4);
/// assert_eq!(streams.len(), 4);
/// assert!(streams.iter().all(|s| s.region_base == Vpn::new(0x10_0000)));
/// ```
pub fn split_shared(
    spec: &WorkloadSpec,
    seed: u64,
    region_base: Vpn,
    cores: usize,
) -> Vec<CoreStream> {
    assert!(cores > 0, "at least one core is required");
    (0..cores)
        .map(|core| CoreStream {
            core,
            region_base,
            footprint_bytes: spec.footprint_bytes,
            generator: TraceGenerator::new(spec, core_seed(seed, core), region_base),
        })
        .collect()
}

/// Splits `spec` into `cores` streams over **disjoint** per-core slices
/// of the footprint, each slice aligned to a 2 MB superpage boundary so
/// the OS allocator can back any slice with superpages.
///
/// # Panics
///
/// Panics when `cores` is zero or the footprint is too small to give
/// every core at least one 2 MB slice.
///
/// # Examples
///
/// ```
/// use mixtlb_trace::{split_partitioned, WorkloadSpec};
/// use mixtlb_types::Vpn;
///
/// let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(16 << 20);
/// let streams = split_partitioned(&spec, 42, Vpn::new(0x10_0000), 4);
/// // Slices tile the footprint without overlap.
/// assert_eq!(streams[1].region_base.raw(),
///            streams[0].region_base.raw() + streams[0].footprint_bytes / 4096);
/// ```
pub fn split_partitioned(
    spec: &WorkloadSpec,
    seed: u64,
    region_base: Vpn,
    cores: usize,
) -> Vec<CoreStream> {
    assert!(cores > 0, "at least one core is required");
    const ALIGN: u64 = 2 << 20;
    let slice = (spec.footprint_bytes / cores as u64) / ALIGN * ALIGN;
    assert!(
        slice >= ALIGN,
        "footprint {} B cannot give {cores} cores a 2 MB-aligned slice each",
        spec.footprint_bytes
    );
    (0..cores)
        .map(|core| {
            let base = Vpn::new(region_base.raw() + core as u64 * slice / PAGE_SIZE_4K);
            let core_spec = spec.clone().with_footprint(slice);
            CoreStream {
                core,
                region_base: base,
                footprint_bytes: slice,
                generator: TraceGenerator::new(&core_spec, core_seed(seed, core), base),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceEvent;

    fn take(stream: &CoreStream, n: usize) -> Vec<TraceEvent> {
        stream.generator.clone().take(n).collect()
    }

    #[test]
    fn shared_streams_cover_one_region_deterministically() {
        let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(8 << 20);
        let a = split_shared(&spec, 7, Vpn::new(0x10_0000), 4);
        let b = split_shared(&spec, 7, Vpn::new(0x10_0000), 4);
        for core in 0..4 {
            assert_eq!(take(&a[core], 200), take(&b[core], 200), "core {core}");
        }
        // Streams are decorrelated across cores.
        assert_ne!(take(&a[0], 200), take(&a[1], 200));
    }

    #[test]
    fn shared_streams_are_independent_of_core_count() {
        // Core 1's stream is the same whether the machine has 2 or 8
        // cores — the determinism property parallel replay relies on.
        let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(8 << 20);
        let two = split_shared(&spec, 7, Vpn::new(0x10_0000), 2);
        let eight = split_shared(&spec, 7, Vpn::new(0x10_0000), 8);
        assert_eq!(take(&two[1], 300), take(&eight[1], 300));
    }

    #[test]
    fn partitioned_slices_are_disjoint_and_aligned() {
        let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(32 << 20);
        let streams = split_partitioned(&spec, 7, Vpn::new(0x10_0000), 4);
        for s in &streams {
            assert_eq!(s.footprint_bytes % (2 << 20), 0);
            assert_eq!(s.region_base.raw() % 512, 0, "2 MB alignment");
            let lo = s.region_base.raw() * PAGE_SIZE_4K;
            let hi = lo + s.footprint_bytes;
            for e in take(s, 2_000) {
                assert!(e.va.raw() >= lo && e.va.raw() < hi, "core {} strayed", s.core);
            }
        }
        for pair in streams.windows(2) {
            let end = pair[0].region_base.raw() + pair[0].footprint_bytes / PAGE_SIZE_4K;
            assert_eq!(end, pair[1].region_base.raw(), "slices must tile");
        }
    }

    #[test]
    #[should_panic(expected = "2 MB-aligned slice")]
    fn partitioned_rejects_tiny_footprints() {
        let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(4 << 20);
        let _ = split_partitioned(&spec, 7, Vpn::new(0), 4);
    }
}
