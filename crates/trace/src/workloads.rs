//! The workload catalog and per-workload model constants.

use mixtlb_types::PAGE_SIZE_4K;

/// Which of the paper's workload groups a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Spec CPU + PARSEC, inputs scaled to 80 GB (paper Sec. 6.4).
    SpecParsec,
    /// Big-memory server workloads (gups, graph processing, memcached,
    /// Cloudsuite), 80 GB.
    BigMemory,
    /// Rodinia GPU kernels, 24 GB.
    Gpu,
}

/// The memory access-pattern class a generator reproduces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Pointer chasing with tunable locality: with probability `locality`
    /// the next access lands near the current one, otherwise it jumps to a
    /// random location (mcf, omnetpp).
    PointerChase {
        /// Probability of a near jump.
        locality: f64,
    },
    /// Uniform random updates over the whole footprint (gups, canneal).
    UniformRandom,
    /// Zipf-distributed key lookups (memcached, redis, xalancbmk).
    Zipf {
        /// Skew parameter; larger = hotter hot set. Must be > 0, ≠ 1.
        theta: f64,
    },
    /// Sequential streaming with a fixed byte stride (streamcluster,
    /// pathfinder).
    Streaming {
        /// Byte stride between accesses.
        stride: u64,
    },
    /// Graph traversal: short sequential adjacency bursts punctuated by
    /// random jumps to neighbour vertices (graph500, Rodinia bfs).
    GraphTraversal {
        /// Average sequential burst length (edges per vertex).
        avg_degree: u32,
    },
    /// Row-sweep stencil: a sequential sweep reading the previous row in
    /// step (hotspot, lud, needle, cactusADM).
    Stencil {
        /// Row length in bytes.
        row_bytes: u64,
    },
    /// GPU-coalesced grid-stride streams: the machine's resident CTAs
    /// sweep a group of *adjacent* 2 MB tiles in lockstep, then jump
    /// forward one tile group (backprop, kmeans, srad). The concurrent
    /// working set is `streams` adjacent superpages — more than a split
    /// design's superpage TLB holds, and exactly what coalescing covers.
    CoalescedStreams {
        /// Number of concurrent stream cursors (tiles per group).
        streams: u32,
    },
    /// Analytics mix: long scans interleaved with Zipf point lookups
    /// (Cloudsuite data analytics).
    ScanPoint {
        /// Fraction of accesses that belong to the scan.
        scan_fraction: f64,
    },
    /// Repeated sequential sweeps over a fixed window (a hot buffer
    /// re-traversed each iteration, e.g. cluster centres, blocked matrix
    /// tiles). The working set is `window_bytes` of *adjacent* pages —
    /// the pattern that separates small-page from superpage index bits
    /// (paper Sec. 3's experiment).
    LoopedStream {
        /// Window size in bytes.
        window_bytes: u64,
        /// Byte stride within the window.
        stride: u64,
    },
}

/// A workload: its name, class, footprint, access pattern, and the
/// analytical-model constants that weight translation stalls into runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (matches the paper where applicable).
    pub name: &'static str,
    /// Workload group.
    pub class: WorkloadClass,
    /// Memory footprint in bytes.
    pub footprint_bytes: u64,
    /// The access pattern class.
    pub pattern: AccessPattern,
    /// Cycles per instruction with ideal address translation — including
    /// the workload's own data-cache stalls (memory-bound workloads like
    /// gups run at high base CPI on real hardware), which is what the
    /// paper's performance-counter weighting captures.
    pub base_cpi: f64,
    /// Memory operations per instruction (loads + stores).
    pub mem_ops_per_instr: f64,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
}

const GB: u64 = 1 << 30;

impl WorkloadSpec {
    /// The full catalog: every workload the benchmarks sweep.
    pub fn catalog() -> Vec<WorkloadSpec> {
        use AccessPattern::*;
        use WorkloadClass::*;
        let w = |name, class, gb, pattern, base_cpi, mem_ops, stores| WorkloadSpec {
            name,
            class,
            footprint_bytes: gb * GB,
            pattern,
            base_cpi,
            mem_ops_per_instr: mem_ops,
            store_fraction: stores,
        };
        vec![
            // Spec + PARSEC (scaled to 80 GB per the paper).
            w("mcf", SpecParsec, 80, PointerChase { locality: 0.6 }, 3.5, 0.35, 0.12),
            w("omnetpp", SpecParsec, 80, PointerChase { locality: 0.75 }, 2.2, 0.33, 0.20),
            w("xalancbmk", SpecParsec, 80, Zipf { theta: 0.8 }, 1.6, 0.32, 0.15),
            w("cactusADM", SpecParsec, 80, Stencil { row_bytes: 1 << 22 }, 1.4, 0.40, 0.30),
            w("canneal", SpecParsec, 80, UniformRandom, 3.2, 0.30, 0.10),
            w("streamcluster", SpecParsec, 80, Streaming { stride: 64 }, 1.2, 0.38, 0.05),
            w("dedup", SpecParsec, 80, Zipf { theta: 0.7 }, 1.6, 0.28, 0.25),
            w("ferret", SpecParsec, 80, ScanPoint { scan_fraction: 0.5 }, 1.8, 0.30, 0.10),
            // Big-memory server workloads.
            w("gups", BigMemory, 80, UniformRandom, 8.0, 0.45, 0.50),
            w("graph500", BigMemory, 80, GraphTraversal { avg_degree: 16 }, 3.5, 0.40, 0.08),
            w("memcached", BigMemory, 80, Zipf { theta: 0.99 }, 2.8, 0.35, 0.10),
            w("redis", BigMemory, 80, Zipf { theta: 0.8 }, 2.6, 0.35, 0.15),
            w("cs-analytics", BigMemory, 80, ScanPoint { scan_fraction: 0.7 }, 2.0, 0.36, 0.08),
            w("cs-graph", BigMemory, 80, GraphTraversal { avg_degree: 24 }, 3.2, 0.38, 0.06),
            // Rodinia GPU kernels (24 GB per the paper's Sec. 6.4).
            w("bfs", Gpu, 24, GraphTraversal { avg_degree: 8 }, 3.5, 0.30, 0.10),
            w("backprop", Gpu, 24, CoalescedStreams { streams: 48 }, 2.0, 0.35, 0.30),
            w("hotspot", Gpu, 24, Stencil { row_bytes: 1 << 21 }, 1.8, 0.33, 0.33),
            w("kmeans", Gpu, 24, CoalescedStreams { streams: 64 }, 2.2, 0.40, 0.10),
            w("lud", Gpu, 24, Stencil { row_bytes: 1 << 20 }, 2.0, 0.36, 0.25),
            w("needle", Gpu, 24, Stencil { row_bytes: 1 << 21 }, 2.1, 0.34, 0.25),
            w("pathfinder", Gpu, 24, Streaming { stride: 128 }, 1.5, 0.38, 0.15),
            w("srad", Gpu, 24, CoalescedStreams { streams: 48 }, 1.9, 0.37, 0.30),
        ]
    }

    /// Every workload of a class.
    pub fn of_class(class: WorkloadClass) -> Vec<WorkloadSpec> {
        Self::catalog()
            .into_iter()
            .filter(|w| w.class == class)
            .collect()
    }

    /// Looks up a workload by name.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::catalog().into_iter().find(|w| w.name == name)
    }

    /// The same workload with a scaled footprint (simulation tractability;
    /// the pattern is footprint-relative).
    pub fn with_footprint(mut self, bytes: u64) -> WorkloadSpec {
        assert!(bytes >= PAGE_SIZE_4K, "footprint below one page");
        self.footprint_bytes = bytes;
        self
    }

    /// Footprint in 4 KB pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_bytes / PAGE_SIZE_4K
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_classes() {
        assert_eq!(WorkloadSpec::of_class(WorkloadClass::SpecParsec).len(), 8);
        assert_eq!(WorkloadSpec::of_class(WorkloadClass::BigMemory).len(), 6);
        assert_eq!(WorkloadSpec::of_class(WorkloadClass::Gpu).len(), 8);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = WorkloadSpec::catalog().iter().map(|w| w.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }

    #[test]
    fn paper_footprints() {
        assert_eq!(
            WorkloadSpec::by_name("gups").unwrap().footprint_bytes,
            80 * GB
        );
        assert_eq!(WorkloadSpec::by_name("bfs").unwrap().footprint_bytes, 24 * GB);
    }

    #[test]
    fn footprint_scaling() {
        let w = WorkloadSpec::by_name("mcf").unwrap().with_footprint(1 << 30);
        assert_eq!(w.footprint_pages(), 262_144);
    }

    #[test]
    fn constants_are_sane() {
        for w in WorkloadSpec::catalog() {
            assert!(w.base_cpi > 0.0, "{}", w.name);
            assert!(w.mem_ops_per_instr > 0.0 && w.mem_ops_per_instr < 1.0, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.store_fraction), "{}", w.name);
        }
    }
}
