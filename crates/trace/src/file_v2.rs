//! Compact v2 trace format: delta coding, varints, checksummed blocks.
//!
//! The v1 format spends a fixed 17 bytes per event, which makes a pinned
//! multi-workload benchmark corpus too large to commit. Version 2 keeps
//! the same magic and event model but encodes each event relative to its
//! predecessor, so the sequential and strided streams that dominate the
//! fig. 9 workloads compress to a few bytes per access:
//!
//! ```text
//! header  : magic "MXTLBTRC" | u32 version = 2 | u32 reserved | u64 events
//! block   : varint event_count | varint payload_len | payload | u64 fnv1a
//! event   : zigzag-varint Δ(4 KB page) | varint (offset << 2 | kind)
//!           | zigzag-varint Δ(pc)
//! ```
//!
//! Deltas reset at each block boundary (previous page and PC start at
//! zero), so any block can be decoded — and its FNV-1a checksum audited —
//! without touching earlier blocks. A truncated or corrupted block is a
//! clean [`io::ErrorKind::InvalidData`] error from the streaming reader,
//! never a panic, and the header's event count lets a reader distinguish
//! honest end-of-file from a chopped tail.
//!
//! # Examples
//!
//! ```no_run
//! use mixtlb_trace::{TraceFileV2, TraceGenerator, WorkloadSpec};
//! use mixtlb_types::Vpn;
//!
//! let spec = WorkloadSpec::by_name("gups").unwrap().with_footprint(1 << 24);
//! let gen = TraceGenerator::new(&spec, 42, Vpn::new(0x1000));
//! TraceFileV2::record("gups.mtc2", gen.take(100_000))?;
//! for event in TraceFileV2::open("gups.mtc2")? {
//!     let _event = event?;
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use mixtlb_types::{AccessKind, PageSize, VirtAddr, Vpn};

use crate::generator::TraceEvent;

const MAGIC: &[u8; 8] = b"MXTLBTRC";
/// Format version stamped in (and required from) every v2 header.
pub(crate) const VERSION: u32 = 2;
/// Events per block. Deliberately *not* a page-sized count: 2048 events
/// keep a block's payload in the ten-kilobyte range, small enough that a
/// checksum failure localizes the damage and a streaming reader never
/// buffers more than one block of decoded events. Public (re-exported as
/// `V2_BLOCK_EVENTS`) so streaming consumers can pre-size reusable decode
/// buffers that never reallocate.
pub const BLOCK_EVENTS: usize = 2048;
/// Byte offset of the u64 event count patched after the stream is written.
const COUNT_OFFSET: u64 = 16;
/// Per-event cost of the v1 fixed-record encoding, for compression ratios.
pub const V1_RECORD_BYTES: u64 = 17;
/// Header cost of the v1 encoding, for compression ratios.
pub const V1_HEADER_BYTES: u64 = 16;

/// FNV-1a over a byte slice — the per-block payload checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Zigzag-encodes a signed delta so small magnitudes of either sign stay
/// in one varint byte.
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn un_zigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Wrapping difference `now - before`, reinterpreted as a signed delta.
fn delta(now: u64, before: u64) -> i64 {
    now.wrapping_sub(before) as i64
}

/// Appends an LEB128 varint to `out`.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `buf` starting at `*pos`, advancing it.
fn read_varint_slice(buf: &[u8], pos: &mut usize) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(invalid("varint runs past the end of its block"));
        };
        *pos += 1;
        if shift >= 64 {
            return Err(invalid("varint longer than 64 bits"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads one LEB128 varint from a byte stream. Returns `Ok(None)` when the
/// stream is already at EOF (a clean end between blocks), and an error if
/// EOF interrupts a varint midway.
fn read_varint_stream(r: &mut impl Read) -> io::Result<Option<u64>> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                if shift == 0 {
                    return Ok(None);
                }
                return Err(invalid("varint truncated by end of file"));
            }
            Err(e) => return Err(e),
        }
        if shift >= 64 {
            return Err(invalid("varint longer than 64 bits"));
        }
        v |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
    }
}

/// Shorthand for the [`io::ErrorKind::InvalidData`] errors this module
/// reports on malformed input.
fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// Per-site corruption errors live in `#[cold]` constructors: malformed
// input is not the replay loop's fast path, and isolating the `format!`
// here keeps formatting machinery out of the hot decode functions.

#[cold]
fn bad_kind_code(code: u64) -> io::Error {
    invalid(format!("invalid access kind code {code}"))
}

#[cold]
fn bad_page_offset(off: u64) -> io::Error {
    invalid(format!("page offset {off} exceeds a 4 KB page"))
}

#[cold]
fn truncated(remaining: u64) -> io::Error {
    invalid(format!(
        "trace truncated: header promises {remaining} more events"
    ))
}

#[cold]
fn bad_block_count(count: u64, remaining: u64) -> io::Error {
    invalid(format!(
        "block event count {count} outside the {remaining} events remaining"
    ))
}

#[cold]
fn oversized_block(count: u64) -> io::Error {
    invalid(format!(
        "block event count {count} exceeds the {BLOCK_EVENTS}-event block size"
    ))
}

#[cold]
fn implausible_payload(payload_len: u64, count: u64) -> io::Error {
    invalid(format!(
        "block payload length {payload_len} implausible for {count} events"
    ))
}

/// Two-bit wire code for an access kind.
// bits: 2
fn kind_code(kind: AccessKind) -> u64 {
    match kind {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
        AccessKind::Fetch => 2,
    }
}

/// Inverse of [`kind_code`].
fn code_kind(code: u64) -> io::Result<AccessKind> {
    match code {
        0 => Ok(AccessKind::Load),
        1 => Ok(AccessKind::Store),
        2 => Ok(AccessKind::Fetch),
        other => Err(bad_kind_code(other)),
    }
}

/// Encodes one event into `payload`, returning the (page, pc) pair the
/// next event's deltas are taken against.
fn encode_event(payload: &mut Vec<u8>, ev: &TraceEvent, prev_page: u64, prev_pc: u64) -> (u64, u64) {
    let page = ev.va.vpn().raw();
    let off = ev.va.page_offset(PageSize::Size4K);
    write_varint(payload, zigzag(delta(page, prev_page)));
    write_varint(payload, (off << 2) | kind_code(ev.kind));
    write_varint(payload, zigzag(delta(ev.pc, prev_pc)));
    (page, ev.pc)
}

/// Decodes one event from `buf` at `*pos` against the running deltas.
fn decode_event(
    buf: &[u8],
    pos: &mut usize,
    prev_page: &mut u64,
    prev_pc: &mut u64,
) -> io::Result<TraceEvent> {
    let dp = un_zigzag(read_varint_slice(buf, pos)?);
    let page = prev_page.wrapping_add(dp as u64);
    let meta = read_varint_slice(buf, pos)?;
    let off = meta >> 2;
    let kind = code_kind(meta & 0x3)?;
    if off >= PageSize::Size4K.bytes() {
        return Err(bad_page_offset(off));
    }
    let dpc = un_zigzag(read_varint_slice(buf, pos)?);
    let pc = prev_pc.wrapping_add(dpc as u64);
    *prev_page = page;
    *prev_pc = pc;
    Ok(TraceEvent {
        pc,
        va: VirtAddr::from_page(Vpn::new(page), off),
        kind,
    })
}

/// One framed block of a v2 trace: the raw payload bytes plus the framing
/// the wire carried (event count, on-wire checksum, 0-based sequence
/// number within the file).
///
/// The internal payload buffer is reused across [`BlockReader::read_block`]
/// calls, so a fixed pool of `RawBlock`s gives a streaming consumer
/// zero steady-state allocation: decode of a corpus of any length touches
/// only O(pool size × block size) resident bytes.
#[derive(Debug, Default)]
pub struct RawBlock {
    count: u64,
    seq: u64,
    checksum: u64,
    payload: Vec<u8>,
}

impl RawBlock {
    /// An empty block buffer, ready to be filled by
    /// [`BlockReader::read_block`].
    pub fn new() -> RawBlock {
        RawBlock::default()
    }

    /// Events framed in this block.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// 0-based sequence number of this block within its file.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Encoded payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Capacity of the reusable payload buffer, for pool accounting.
    pub fn payload_capacity(&self) -> usize {
        self.payload.capacity()
    }

    /// Audits the payload against the on-wire FNV-1a checksum.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a mismatch.
    pub fn verify(&self) -> io::Result<()> {
        if self.checksum != fnv1a(&self.payload) {
            return Err(invalid("block checksum mismatch (corrupted payload)"));
        }
        Ok(())
    }
}

/// Decodes a framed block into `out` (cleared first, allocation reused),
/// verifying the checksum before trusting a single byte.
///
/// Deltas reset at block boundaries, so any block decodes independently —
/// this is what lets a pool of decoder workers process blocks out of
/// order. Decode errors leave `out` cleared (never a partial chunk).
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a checksum mismatch, a
/// malformed event, or trailing garbage after the framed event count.
pub fn decode_block(block: &RawBlock, out: &mut Vec<TraceEvent>) -> io::Result<()> {
    out.clear();
    block.verify()?;
    let mut pos = 0usize;
    let mut prev_page = 0u64;
    let mut prev_pc = 0u64;
    for _ in 0..block.count {
        match decode_event(&block.payload, &mut pos, &mut prev_page, &mut prev_pc) {
            Ok(ev) => out.push(ev),
            Err(e) => {
                out.clear();
                return Err(e);
            }
        }
    }
    if pos != block.payload.len() {
        out.clear();
        return Err(invalid("block payload has trailing garbage"));
    }
    Ok(())
}

/// Block-granular streaming reader for the v2 format: hands out framed,
/// checksummed payloads one at a time without buffering the whole file.
///
/// This is the corpus-scale entry point: [`TraceFileV2`] (whole events,
/// one block resident) and the `mixtlb-smp` streaming pipeline (a pool of
/// decoder workers over recycled [`RawBlock`]s) are both built on it.
/// After the first error the stream should be abandoned; the reader does
/// not resynchronize inside damaged input.
#[derive(Debug)]
pub struct BlockReader {
    reader: BufReader<File>,
    total: u64,
    remaining: u64,
    next_seq: u64,
}

impl BlockReader {
    /// Opens a v2 trace for block-granular streaming.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if the file is not a v2
    /// trace (bad magic, wrong version, or short header), or propagates
    /// I/O errors.
    pub fn open(path: impl AsRef<Path>) -> io::Result<BlockReader> {
        let file = File::open(&path)?;
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("not a mixtlb trace file (bad magic)"));
        }
        let mut word = [0u8; 4];
        reader.read_exact(&mut word)?;
        let version = u32::from_le_bytes(word);
        if version != VERSION {
            return Err(invalid(format!(
                "not a v2 trace (version {version}; use TraceFile for v1 \
                 or `tracectl convert` to upgrade)"
            )));
        }
        reader.read_exact(&mut word)?; // reserved
        let mut count = [0u8; 8];
        reader.read_exact(&mut count)?;
        let total = u64::from_le_bytes(count);
        Ok(BlockReader {
            reader,
            total,
            remaining: total,
            next_seq: 0,
        })
    }

    /// Total number of events the header promises.
    pub fn event_count(&self) -> u64 {
        self.total
    }

    /// Events the header promises beyond the blocks read so far.
    pub fn events_remaining(&self) -> u64 {
        self.remaining
    }

    /// Blocks handed out so far — equivalently, the sequence number the
    /// next successful [`Self::read_block`] will assign. A pipeline that
    /// hits a read error reports this as the damaged block's sequence.
    pub fn blocks_read(&self) -> u64 {
        self.next_seq
    }

    /// Reads the next framed block into `block`, reusing its payload
    /// buffer. Returns `Ok(false)` on a clean end of stream (every
    /// promised event delivered). The checksum is carried, not audited —
    /// verification happens in [`decode_block`] / [`RawBlock::verify`],
    /// wherever the consuming worker runs.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on truncated framing, a
    /// count outside the header's promise, or an implausible payload
    /// length (all before any oversized allocation happens).
    pub fn read_block(&mut self, block: &mut RawBlock) -> io::Result<bool> {
        let Some(count) = read_varint_stream(&mut self.reader)? else {
            if self.remaining == 0 {
                return Ok(false);
            }
            return Err(truncated(self.remaining));
        };
        if count == 0 || count > self.remaining {
            return Err(bad_block_count(count, self.remaining));
        }
        // The writer never frames more than BLOCK_EVENTS per block, and
        // enforcing that here keeps the plausibility arithmetic below free
        // of overflow: without this cap, a crafted count near u64::MAX / 22
        // wraps `count * 22` small enough to smuggle an arbitrary
        // payload_len past the bound and into a giant allocation.
        if count > BLOCK_EVENTS as u64 {
            return Err(oversized_block(count));
        }
        let Some(payload_len) = read_varint_stream(&mut self.reader)? else {
            return Err(invalid("block header truncated before payload length"));
        };
        // An event encodes to at most 22 bytes (two worst-case 10-byte
        // zigzag varints plus a 2-byte offset/kind word); a longer claim is
        // corruption, not a big block.
        if payload_len > count * 22 + 64 {
            return Err(implausible_payload(payload_len, count));
        }
        block.payload.clear();
        block.payload.resize(payload_len as usize, 0);
        self.reader
            .read_exact(&mut block.payload)
            .map_err(|_| invalid("block payload truncated"))?;
        let mut sum = [0u8; 8];
        self.reader
            .read_exact(&mut sum)
            .map_err(|_| invalid("block checksum truncated"))?;
        block.checksum = u64::from_le_bytes(sum);
        block.count = count;
        block.seq = self.next_seq;
        self.next_seq += 1;
        self.remaining -= count;
        Ok(true)
    }
}

/// Streaming reader/writer for the compact v2 trace format.
///
/// Iterating yields [`TraceEvent`]s exactly as [`crate::TraceFile`] does
/// for v1 files, so the two formats are drop-in interchangeable on the
/// replay side; blocks are checksum-verified as they stream. Built on
/// [`BlockReader`] + [`decode_block`], with one block of decoded events
/// resident at a time.
#[derive(Debug)]
pub struct TraceFileV2 {
    blocks: BlockReader,
    raw: RawBlock,
    block: Vec<TraceEvent>,
    cursor: usize,
    /// Set after the first decode error; iteration ends rather than
    /// resynchronizing inside a damaged stream.
    poisoned: bool,
}

impl TraceFileV2 {
    /// Records an event stream to `path` in v2 format. Returns the number
    /// of events written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn record<I: IntoIterator<Item = TraceEvent>>(
        path: impl AsRef<Path>,
        events: I,
    ) -> io::Result<u64> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u32.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?; // patched with the count below
        let mut total = 0u64;
        let mut payload = Vec::with_capacity(BLOCK_EVENTS * 8);
        let mut framing = Vec::with_capacity(16);
        let mut in_block = 0u64;
        let mut prev_page = 0u64;
        let mut prev_pc = 0u64;
        for ev in events {
            let (page, pc) = encode_event(&mut payload, &ev, prev_page, prev_pc);
            prev_page = page;
            prev_pc = pc;
            in_block += 1;
            total += 1;
            if in_block as usize == BLOCK_EVENTS {
                flush_block(&mut out, &mut framing, in_block, &mut payload)?;
                in_block = 0;
                prev_page = 0;
                prev_pc = 0;
            }
        }
        if in_block > 0 {
            flush_block(&mut out, &mut framing, in_block, &mut payload)?;
        }
        out.flush()?;
        out.seek(SeekFrom::Start(COUNT_OFFSET))?;
        out.write_all(&total.to_le_bytes())?;
        out.flush()?;
        Ok(total)
    }

    /// Opens a v2 trace for streaming replay.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] if the file is not a v2
    /// trace (bad magic, wrong version, or short header), or propagates
    /// I/O errors.
    pub fn open(path: impl AsRef<Path>) -> io::Result<TraceFileV2> {
        Ok(TraceFileV2 {
            blocks: BlockReader::open(path)?,
            raw: RawBlock::new(),
            block: Vec::new(),
            cursor: 0,
            poisoned: false,
        })
    }

    /// Total number of events the header promises.
    pub fn event_count(&self) -> u64 {
        self.blocks.event_count()
    }

    /// Loads and verifies the next block into the decode buffer.
    fn load_block(&mut self) -> io::Result<bool> {
        if !self.blocks.read_block(&mut self.raw)? {
            return Ok(false);
        }
        decode_block(&self.raw, &mut self.block)?;
        self.cursor = 0;
        Ok(true)
    }
}

/// Writes one framed block (count, payload length, payload, checksum) and
/// clears `payload` for reuse.
fn flush_block(
    out: &mut impl Write,
    framing: &mut Vec<u8>,
    count: u64,
    payload: &mut Vec<u8>,
) -> io::Result<()> {
    framing.clear();
    write_varint(framing, count);
    write_varint(framing, payload.len() as u64);
    out.write_all(framing)?;
    out.write_all(payload)?;
    out.write_all(&fnv1a(payload).to_le_bytes())?;
    payload.clear();
    Ok(())
}

impl Iterator for TraceFileV2 {
    type Item = io::Result<TraceEvent>;

    fn next(&mut self) -> Option<io::Result<TraceEvent>> {
        if self.poisoned {
            return None;
        }
        if self.cursor == self.block.len() {
            match self.load_block() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.poisoned = true;
                    return Some(Err(e));
                }
            }
        }
        let ev = self.block[self.cursor];
        self.cursor += 1;
        Some(Ok(ev))
    }
}

/// Reads just the magic and version of a trace file, for format-agnostic
/// tooling (`tracectl info` and friends).
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic, or propagates
/// I/O errors (including a file shorter than the 12-byte prefix).
pub fn probe_version(path: impl AsRef<Path>) -> io::Result<u32> {
    let mut reader = BufReader::new(File::open(&path)?);
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("not a mixtlb trace file (bad magic)"));
    }
    let mut word = [0u8; 4];
    reader.read_exact(&mut word)?;
    Ok(u32::from_le_bytes(word))
}

/// The size in bytes the v1 fixed-record format would need for `events`
/// events — the numerator of a v2 compression ratio.
pub fn v1_equivalent_bytes(events: u64) -> u64 {
    V1_HEADER_BYTES + events * V1_RECORD_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::workloads::WorkloadSpec;

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mixtlb-test-v2-{}-{name}", std::process::id()));
        p
    }

    fn sample_events(n: usize) -> Vec<TraceEvent> {
        let spec = WorkloadSpec::by_name("gups")
            .unwrap()
            .with_footprint(1 << 24);
        TraceGenerator::new(&spec, 7, Vpn::new(0x1000)).take(n).collect()
    }

    #[test]
    fn roundtrip_across_block_boundaries() {
        // Spans three blocks with a ragged tail.
        let original = sample_events(BLOCK_EVENTS * 2 + 123);
        let path = temp("roundtrip.mtc2");
        let written = TraceFileV2::record(&path, original.iter().copied()).unwrap();
        assert_eq!(written as usize, original.len());
        let file = TraceFileV2::open(&path).unwrap();
        assert_eq!(file.event_count() as usize, original.len());
        let replayed: Vec<TraceEvent> = file.map(|e| e.unwrap()).collect();
        assert_eq!(replayed, original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_is_valid() {
        let path = temp("empty.mtc2");
        TraceFileV2::record(&path, std::iter::empty()).unwrap();
        let mut file = TraceFileV2::open(&path).unwrap();
        assert_eq!(file.event_count(), 0);
        assert!(file.next().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compresses_the_fixed_format() {
        let original = sample_events(20_000);
        let path = temp("ratio.mtc2");
        TraceFileV2::record(&path, original.iter().copied()).unwrap();
        let v2 = std::fs::metadata(&path).unwrap().len();
        let v1 = v1_equivalent_bytes(original.len() as u64);
        assert!(
            v2 * 2 < v1,
            "v2 ({v2} B) should at least halve the v1 encoding ({v1} B)"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let original = sample_events(100);
        let path = temp("trunc.mtc2");
        TraceFileV2::record(&path, original.iter().copied()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let mut file = TraceFileV2::open(&path).unwrap();
        let err = file.find_map(|e| e.err()).expect("must surface an error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_fails_its_checksum() {
        let original = sample_events(100);
        let path = temp("corrupt.mtc2");
        TraceFileV2::record(&path, original.iter().copied()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut file = TraceFileV2::open(&path).unwrap();
        let err = file.find_map(|e| e.err()).expect("must surface an error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chopped_tail_block_is_reported_missing() {
        let original = sample_events(BLOCK_EVENTS + 500);
        let path = temp("tail.mtc2");
        TraceFileV2::record(&path, original.iter().copied()).unwrap();
        // Find where block 2 starts by re-encoding block 1 alone.
        let head = temp("tail-head.mtc2");
        TraceFileV2::record(&head, original.iter().copied().take(BLOCK_EVENTS)).unwrap();
        let cut = std::fs::metadata(&head).unwrap().len();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..cut as usize]).unwrap();
        let file = TraceFileV2::open(&path).unwrap();
        let mut ok = 0usize;
        let mut err = None;
        for e in file {
            match e {
                Ok(_) => ok += 1,
                Err(x) => err = Some(x),
            }
        }
        assert_eq!(ok, BLOCK_EVENTS, "first block still decodes");
        let err = err.expect("the missing tail must be an error");
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&head).ok();
    }

    #[test]
    fn overflowing_block_count_is_rejected_before_allocating() {
        // A crafted header promises u64::MAX events and a block claims a
        // count chosen so `count * 22` wraps past u64::MAX, which used to
        // slip an enormous payload_len past the plausibility bound and
        // into `vec![0u8; payload_len]`. The block-size cap must reject
        // the count before any allocation happens.
        let path = temp("overflow-count.mtc2");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        // ceil(2^64 / 22) wraps `count * 22` back to ~0; the extra term
        // pushes the wrapped product to ~2^61 so the old bound accepted a
        // multi-exabyte payload_len (and the reader aborted trying to
        // allocate it).
        let count = u64::MAX / 22 + 1 + ((1u64 << 61) / 22 + 1);
        write_varint(&mut bytes, count);
        let payload_len = 1u64 << 61;
        assert!(
            payload_len <= count.wrapping_mul(22) + 64,
            "crafted payload must have passed the pre-fix wrapped bound"
        );
        write_varint(&mut bytes, payload_len);
        std::fs::write(&path, &bytes).unwrap();
        let mut file = TraceFileV2::open(&path).unwrap();
        let err = file.find_map(|e| e.err()).expect("must surface an error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("block size"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_are_rejected_with_a_convert_hint() {
        let path = temp("v1.trc");
        crate::TraceFile::record(&path, std::iter::empty()).unwrap();
        let err = TraceFileV2::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 1"), "{err}");
        assert_eq!(probe_version(&path).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn probe_reports_v2() {
        let path = temp("probe.mtc2");
        TraceFileV2::record(&path, std::iter::empty()).unwrap();
        assert_eq!(probe_version(&path).unwrap(), 2);
        std::fs::remove_file(&path).ok();
    }
}
