//! Property coverage of the v2 compact trace format: arbitrary event
//! streams round-trip exactly and re-encode byte-stably, and corrupted or
//! truncated files are rejected with clean `io::Error`s, never a panic or
//! garbage records.

use std::io::Read;

use mixtlb_trace::{TraceEvent, TraceFileV2};
use mixtlb_types::{AccessKind, PageSize, VirtAddr, Vpn};
use proptest::prelude::*;

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        // 4 KB page numbers across the canonical low half, including
        // far-apart pages that need wide zigzag deltas.
        0u64..(1u64 << 35),
        0u64..PageSize::Size4K.bytes(),
        prop_oneof![
            Just(AccessKind::Load),
            Just(AccessKind::Store),
            Just(AccessKind::Fetch)
        ],
        any::<u64>(),
    )
        .prop_map(|(page, off, kind, pc)| TraceEvent {
            va: VirtAddr::from_page(Vpn::new(page), off),
            kind,
            pc,
        })
}

fn temp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mixtlb-v2-props-{}-{name}.mtc2", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_and_byte_stability(
        events in proptest::collection::vec(event_strategy(), 0..600),
        case in 0u32..u32::MAX,
    ) {
        let path = temp(&format!("rt-{case}"));
        let written = TraceFileV2::record(&path, events.iter().copied()).unwrap();
        prop_assert_eq!(written, events.len() as u64);

        let reader = TraceFileV2::open(&path).unwrap();
        prop_assert_eq!(reader.event_count(), events.len() as u64);
        let decoded: Vec<TraceEvent> = reader.map(|r| r.unwrap()).collect();
        prop_assert_eq!(&decoded, &events);

        // Re-encoding the decoded stream must reproduce the bytes exactly
        // (the corpus-pinning property the golden test relies on).
        let first = std::fs::read(&path).unwrap();
        let path2 = temp(&format!("rt2-{case}"));
        TraceFileV2::record(&path2, decoded).unwrap();
        let second = std::fs::read(&path2).unwrap();
        prop_assert_eq!(first, second);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic(
        events in proptest::collection::vec(event_strategy(), 1..300),
        cut_fraction in 0.0f64..1.0,
        case in 0u32..u32::MAX,
    ) {
        let path = temp(&format!("trunc-{case}"));
        TraceFileV2::record(&path, events.iter().copied()).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Cut strictly inside the file, but keep at least the header so
        // open() succeeds and the damage surfaces during iteration.
        let min = 24usize.min(bytes.len().saturating_sub(1));
        let cut = min + ((bytes.len() - 1 - min) as f64 * cut_fraction) as usize;
        let chopped = &bytes[..cut];
        std::fs::write(&path, chopped).unwrap();

        match TraceFileV2::open(&path) {
            Err(_) => {} // header itself unreadable: fine, clean error
            Ok(reader) => {
                let mut decoded = 0u64;
                let mut errored = false;
                for item in reader {
                    match item {
                        Ok(_) => decoded += 1,
                        Err(e) => {
                            prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                            errored = true;
                            break;
                        }
                    }
                }
                // A chopped file must either lose events (reported as an
                // error) or — if the cut landed exactly on the end of the
                // stream — decode fully; it may never invent events.
                prop_assert!(decoded <= events.len() as u64);
                if !errored {
                    prop_assert_eq!(decoded, events.len() as u64);
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// The same truncation sweep through the streaming block interface
    /// ([`BlockReader`] + [`decode_block`]) the pipeline consumes: every
    /// event delivered before the damage surfaces must be an exact
    /// prefix of the original stream (block granular — a damaged block
    /// contributes nothing), the failure must be a clean
    /// `InvalidData`, and an uncut file must stream back in full with
    /// `events_remaining()` reaching zero.
    #[test]
    fn block_reader_truncation_yields_an_exact_prefix(
        events in proptest::collection::vec(event_strategy(), 1..5000),
        cut_fraction in 0.0f64..1.0,
        keep_all in any::<bool>(),
        case in 0u32..u32::MAX,
    ) {
        use mixtlb_trace::{decode_block, BlockReader, RawBlock};

        let path = temp(&format!("blk-trunc-{case}"));
        TraceFileV2::record(&path, events.iter().copied()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let min = 24usize.min(bytes.len().saturating_sub(1));
        let cut = if keep_all {
            bytes.len() // uncut: the clean full-stream case
        } else {
            min + ((bytes.len() - min) as f64 * cut_fraction) as usize
        };
        std::fs::write(&path, &bytes[..cut]).unwrap();

        match BlockReader::open(&path) {
            Err(_) => {} // header itself chopped: clean error at open
            Ok(mut blocks) => {
                let mut raw = RawBlock::default();
                let mut chunk: Vec<TraceEvent> = Vec::new();
                let mut streamed: Vec<TraceEvent> = Vec::new();
                let mut error = None;
                loop {
                    match blocks.read_block(&mut raw) {
                        Ok(true) => {}
                        Ok(false) => break,
                        Err(e) => { error = Some(e); break; }
                    }
                    match decode_block(&raw, &mut chunk) {
                        Ok(()) => streamed.extend_from_slice(&chunk),
                        Err(e) => {
                            prop_assert!(chunk.is_empty(), "failed decode must not leave a partial chunk");
                            error = Some(e);
                            break;
                        }
                    }
                }
                prop_assert!(streamed.len() <= events.len());
                prop_assert_eq!(&streamed[..], &events[..streamed.len()],
                    "streamed events must be an exact prefix");
                match error {
                    Some(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
                    None => {
                        // Clean end: only legal when nothing was lost.
                        prop_assert_eq!(streamed.len(), events.len());
                        prop_assert_eq!(blocks.events_remaining(), 0);
                    }
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Truncation landing *exactly* on a block boundary is the nastiest
    /// cut: every byte the reader sees is self-consistent (whole blocks,
    /// valid checksums), so only the header's event count can expose the
    /// chopped tail. The reader must decode the surviving whole blocks
    /// and then report the missing events — never a clean EOF, never a
    /// panic.
    #[test]
    fn chunk_boundary_truncation_reports_the_missing_tail(
        tail in 1usize..400,
        case in 0u32..u32::MAX,
    ) {
        // One full 2048-event block plus a ragged tail block.
        const BLOCK_EVENTS: usize = 2048;
        let events: Vec<TraceEvent> = {
            let mut v = Vec::with_capacity(BLOCK_EVENTS + tail);
            for i in 0..(BLOCK_EVENTS + tail) as u64 {
                v.push(TraceEvent {
                    va: VirtAddr::from_page(Vpn::new(0x4000 + i * 3), (i * 7) % 4096),
                    kind: AccessKind::Load,
                    pc: 0x40_0000 + i * 4,
                });
            }
            v
        };
        let path = temp(&format!("boundary-{case}"));
        TraceFileV2::record(&path, events.iter().copied()).unwrap();

        // Find the exact boundary after block 1 by encoding block 1 alone:
        // deltas reset per block, so the first block's bytes are identical.
        let head = temp(&format!("boundary-head-{case}"));
        TraceFileV2::record(&head, events.iter().copied().take(BLOCK_EVENTS)).unwrap();
        let cut = std::fs::metadata(&head).unwrap().len() as usize;
        let bytes = std::fs::read(&path).unwrap();
        prop_assert!(cut < bytes.len(), "tail block must exist past the cut");
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let reader = TraceFileV2::open(&path).unwrap();
        let mut decoded = 0usize;
        let mut err = None;
        for item in reader {
            match item {
                Ok(ev) => {
                    prop_assert_eq!(ev, events[decoded], "surviving events must be intact");
                    decoded += 1;
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        prop_assert_eq!(decoded, BLOCK_EVENTS, "the whole first block still decodes");
        let err = err.expect("the chopped tail must surface as an error, not clean EOF");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        prop_assert!(err.to_string().contains("truncated"), "{}", err);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&head);
    }

    #[test]
    fn corruption_is_an_error_not_garbage(
        events in proptest::collection::vec(event_strategy(), 1..300),
        victim_fraction in 0.0f64..1.0,
        bit in 0u8..8,
        case in 0u32..u32::MAX,
    ) {
        let path = temp(&format!("corrupt-{case}"));
        TraceFileV2::record(&path, events.iter().copied()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip one bit somewhere after the header.
        if bytes.len() <= 24 {
            let _ = std::fs::remove_file(&path);
            return Ok(());
        }
        let victim = 24 + ((bytes.len() - 25) as f64 * victim_fraction) as usize;
        bytes[victim] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // Every decoded event must be one the checksummed blocks vouch
        // for; the flip either surfaces as a clean InvalidData error or
        // (if it struck slack the decoder never trusts, e.g. the reserved
        // header word) changes nothing.
        match TraceFileV2::open(&path) {
            Err(_) => {}
            Ok(reader) => {
                for item in reader {
                    if let Err(e) = item {
                        prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                        break;
                    }
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Non-property check: a v2 file's magic matches v1's container magic, so
/// `probe_version` can steer tooling, and a plain byte read confirms the
/// version field the hint in `TraceFile::open` keys on.
#[test]
fn header_layout_is_stable() {
    let path = temp("header");
    TraceFileV2::record(
        &path,
        [TraceEvent {
            va: VirtAddr::from_page(Vpn::new(7), 42),
            kind: AccessKind::Load,
            pc: 0x1000,
        }],
    )
    .unwrap();
    let mut head = [0u8; 24];
    let mut f = std::fs::File::open(&path).unwrap();
    f.read_exact(&mut head).unwrap();
    assert_eq!(&head[..8], b"MXTLBTRC");
    assert_eq!(u32::from_le_bytes([head[8], head[9], head[10], head[11]]), 2);
    assert_eq!(
        u64::from_le_bytes(head[16..24].try_into().unwrap()),
        1,
        "event count at offset 16"
    );
    let _ = std::fs::remove_file(&path);
}
