//! The OS memory-management model: virtual memory areas, demand paging,
//! transparent hugepages, `libhugetlbfs`-style pools, and the page-table
//! scanners behind the paper's allocation-characterization figures.
//!
//! The paper's Sec. 7.1 argument is entirely about OS behaviour: *which page
//! sizes does the OS produce under fragmentation, and when it produces
//! superpages, are they contiguous?* This crate reproduces the mechanisms
//! that generate those distributions:
//!
//! * [`Kernel`] owns the machine's [`PhysicalMemory`] and a set of
//!   [`AddressSpace`]s (processes or guest OSes). Demand faults pick page
//!   sizes per the space's [`PagingPolicy`]:
//!   - [`PagingPolicy::SmallOnly`] — 4 KB everywhere;
//!   - [`PagingPolicy::Hugetlbfs`] — a pool of 2 MB or 1 GB pages reserved
//!     up front, small pages once the pool runs dry;
//!   - [`PagingPolicy::TransparentHuge`] — Linux THS: try a 2 MB block on
//!     the first fault in each aligned 2 MB region, invoking compaction
//!     (within a budget) when the buddy allocator is fragmented, falling
//!     back to 4 KB pages;
//!   - [`PagingPolicy::Mixed`] — a 1 GB pool for part of the footprint plus
//!     THS for the rest, exercising all three sizes concurrently.
//! * [`scan`] walks page tables to produce the page-size distributions
//!   (Figs. 9-10), average superpage contiguity (Fig. 11), and contiguity
//!   CDFs (Figs. 12-13).
//!
//! # Examples
//!
//! ```
//! use mixtlb_mem::{MemoryConfig, PhysicalMemory};
//! use mixtlb_os::{Kernel, PagingPolicy, ThsConfig};
//! use mixtlb_types::{Permissions, Vpn};
//!
//! let mem = PhysicalMemory::new(MemoryConfig::with_bytes(256 << 20));
//! let mut kernel = Kernel::new(mem);
//! let space = kernel.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
//! kernel.mmap(space, Vpn::new(0x400), 1024, Permissions::rw_user()).unwrap();
//! kernel.fault_all(space);
//! let (p4k, p2m, _p1g) = kernel.space(space).page_table().mapped_counts();
//! assert_eq!((p4k, p2m), (0, 2)); // two 2 MB pages, no fragmentation
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod policy;
pub mod scan;
mod vma;

pub use kernel::{AddressSpace, FaultError, FaultStats, Kernel, SpaceId};
pub use policy::{PagingPolicy, ThsConfig};
pub use vma::{Vma, VmaError, VmaSet};

pub use mixtlb_mem::PhysicalMemory;
