//! Page-table scanners: page-size distributions and superpage contiguity.
//!
//! These reproduce the measurement machinery behind the paper's Figures 9-13:
//! the fraction of a footprint backed by superpages, the average superpage
//! contiguity (Sec. 7.1 defines it as the translation-weighted mean run
//! length: a table with runs of lengths `l_i` has average contiguity
//! `Σ l_i² / Σ l_i`), and contiguity CDFs.

use mixtlb_pagetable::PageTable;
use mixtlb_types::{PageSize, Translation, Vpn};

/// Counts of mapped pages by size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageSizeDistribution {
    /// Mapped 4 KB pages.
    pub pages_4k: u64,
    /// Mapped 2 MB pages.
    pub pages_2m: u64,
    /// Mapped 1 GB pages.
    pub pages_1g: u64,
}

impl PageSizeDistribution {
    /// Measures the distribution of a page table.
    pub fn of(pt: &PageTable) -> PageSizeDistribution {
        let (pages_4k, pages_2m, pages_1g) = pt.mapped_counts();
        PageSizeDistribution {
            pages_4k,
            pages_2m,
            pages_1g,
        }
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> u64 {
        self.pages_4k * PageSize::Size4K.bytes()
            + self.pages_2m * PageSize::Size2M.bytes()
            + self.pages_1g * PageSize::Size1G.bytes()
    }

    /// Fraction of the footprint backed by superpages (2 MB + 1 GB), the
    /// y-axis of Figures 9-10. Zero for an empty table.
    pub fn superpage_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let superbytes = self.pages_2m * PageSize::Size2M.bytes()
            + self.pages_1g * PageSize::Size1G.bytes();
        superbytes as f64 / total as f64
    }
}

/// Run-length statistics for superpages of one size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContiguityStats {
    /// Lengths of maximal runs of contiguous superpages (virtually and
    /// physically adjacent, same permissions), ascending VA order.
    pub runs: Vec<u64>,
}

impl ContiguityStats {
    /// Scans a page table for runs of contiguous superpages of `size`.
    pub fn of(pt: &PageTable, size: PageSize) -> ContiguityStats {
        let mut finder = RunFinder::new(size);
        pt.for_each_leaf(|t| finder.feed(t));
        finder.finish()
    }

    /// Total translations of this size.
    pub fn translations(&self) -> u64 {
        self.runs.iter().sum()
    }

    /// The paper's average contiguity: `Σ len² / Σ len` (each translation
    /// weighted by the length of the run containing it). Zero if there are
    /// no translations.
    pub fn average_contiguity(&self) -> f64 {
        let total = self.translations();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.runs.iter().map(|&l| l * l).sum();
        weighted as f64 / total as f64
    }

    /// The longest run.
    pub fn max_run(&self) -> u64 {
        self.runs.iter().copied().max().unwrap_or(0)
    }

    /// The contiguity CDF (Figures 12-13): points `(run_length, fraction)`
    /// where `fraction` is the share of translations living in runs of
    /// length ≤ `run_length`. Ascending in `run_length`.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let total = self.translations();
        if total == 0 {
            return Vec::new();
        }
        let mut sorted = self.runs.clone();
        sorted.sort_unstable();
        let mut out: Vec<(u64, f64)> = Vec::new();
        let mut cum = 0u64;
        for len in sorted {
            cum += len;
            match out.last_mut() {
                Some(last) if last.0 == len => last.1 = cum as f64 / total as f64,
                _ => out.push((len, cum as f64 / total as f64)),
            }
        }
        out
    }
}

/// Incremental run detector over a VA-ordered stream of translations.
#[derive(Debug)]
pub struct RunFinder {
    size: PageSize,
    prev: Option<Translation>,
    current_run: u64,
    runs: Vec<u64>,
}

impl RunFinder {
    /// Creates a finder for superpages of `size`.
    pub fn new(size: PageSize) -> RunFinder {
        RunFinder {
            size,
            prev: None,
            current_run: 0,
            runs: Vec::new(),
        }
    }

    /// Feeds the next translation in ascending VA order.
    pub fn feed(&mut self, t: &Translation) {
        if t.size != self.size {
            self.close();
            return;
        }
        match &self.prev {
            Some(prev) if prev.is_coalescible_successor(t) => {
                self.current_run += 1;
            }
            _ => {
                self.close();
                self.current_run = 1;
            }
        }
        self.prev = Some(*t);
    }

    fn close(&mut self) {
        if self.current_run > 0 {
            self.runs.push(self.current_run);
            self.current_run = 0;
        }
        self.prev = None;
    }

    /// Finishes the scan and returns the statistics.
    pub fn finish(mut self) -> ContiguityStats {
        self.close();
        ContiguityStats { runs: self.runs }
    }
}

/// The *effective* (splintered) page-size distribution seen by nested
/// translation hardware: each guest mapping contributes pages of
/// `min(guest size, host size)` over its extent (paper Sec. 7.1's
/// virtualized results).
pub fn effective_distribution(guest: &PageTable, host: &PageTable) -> PageSizeDistribution {
    let mut dist = PageSizeDistribution::default();
    guest.for_each_leaf(|g| {
        let mut off = 0;
        while off < g.size.pages_4k() {
            let gpn = g.pfn.add_4k(off);
            let step = match host.lookup(Vpn::new(gpn.raw())) {
                Some(h) => {
                    let eff = g.size.min(h.size);
                    match eff {
                        PageSize::Size4K => dist.pages_4k += 1,
                        PageSize::Size2M => dist.pages_2m += 1,
                        PageSize::Size1G => dist.pages_1g += 1,
                    }
                    eff.pages_4k()
                }
                // Unbacked guest-physical range: skip the host hole at 4 KB
                // granularity.
                None => 1,
            };
            off += step;
        }
    });
    dist
}

/// Contiguity of the effective (splintered) translations of a virtualized
/// space, for superpages of `size`.
pub fn effective_contiguity(guest: &PageTable, host: &PageTable, size: PageSize) -> ContiguityStats {
    let mut finder = RunFinder::new(size);
    guest.for_each_leaf(|g| {
        let mut off = 0;
        while off < g.size.pages_4k() {
            let vpn = g.vpn.add_4k(off);
            let gpn = g.pfn.add_4k(off);
            let step = match host.lookup(Vpn::new(gpn.raw())) {
                Some(h) => {
                    let eff = g.size.min(h.size);
                    if let Some(spn) = h.frame_for(Vpn::new(gpn.raw())) {
                        let t = Translation {
                            vpn,
                            pfn: spn,
                            size: eff,
                            perms: g.perms & h.perms,
                            accessed: true,
                            dirty: false,
                        };
                        finder.feed(&t);
                    }
                    eff.pages_4k()
                }
                None => 1,
            };
            off += step;
        }
    });
    finder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_pagetable::BumpFrameSource;
    use mixtlb_types::{Permissions, Pfn};

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    fn pt_with(translations: &[Translation]) -> PageTable {
        let mut frames = BumpFrameSource::new(0x100_0000);
        let mut pt = PageTable::new(&mut frames);
        for t in translations {
            pt.map(*t, &mut frames).unwrap();
        }
        pt
    }

    fn sp2m(vpn: u64, pfn: u64) -> Translation {
        Translation::new(Vpn::new(vpn), Pfn::new(pfn), PageSize::Size2M, rw())
    }

    #[test]
    fn distribution_fractions() {
        let pt = pt_with(&[
            Translation::new(Vpn::new(0), Pfn::new(0), PageSize::Size4K, rw()),
            sp2m(512, 512),
        ]);
        let d = PageSizeDistribution::of(&pt);
        assert_eq!(d.pages_4k, 1);
        assert_eq!(d.pages_2m, 1);
        let expect = (512.0 * 4096.0) / (513.0 * 4096.0);
        assert!((d.superpage_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let pt = pt_with(&[]);
        assert_eq!(PageSizeDistribution::of(&pt).superpage_fraction(), 0.0);
    }

    #[test]
    fn paper_average_contiguity_example() {
        // Sec. 7.1: 2 singletons + one run of 2 → (1 + 1 + 2*2)/4 = 1.5.
        let pt = pt_with(&[
            sp2m(0, 0),
            sp2m(1024, 4096),   // singleton (not phys-adjacent to previous)
            sp2m(4096, 8192),   // run of 2 with the next
            sp2m(4608, 8704),
        ]);
        let c = ContiguityStats::of(&pt, PageSize::Size2M);
        assert_eq!(c.runs.len(), 3);
        assert_eq!(c.translations(), 4);
        assert!((c.average_contiguity() - 1.5).abs() < 1e-12);
        assert_eq!(c.max_run(), 2);
    }

    #[test]
    fn runs_broken_by_interleaved_small_pages() {
        let pt = pt_with(&[
            sp2m(0, 0),
            Translation::new(Vpn::new(512), Pfn::new(700_000), PageSize::Size4K, rw()),
            sp2m(1024, 1024),
        ]);
        let c = ContiguityStats::of(&pt, PageSize::Size2M);
        assert_eq!(c.runs, vec![1, 1]);
    }

    #[test]
    fn runs_broken_by_permission_changes() {
        let mut b = sp2m(512, 512);
        b.perms = Permissions::ro_user();
        let pt = pt_with(&[sp2m(0, 0), b]);
        let c = ContiguityStats::of(&pt, PageSize::Size2M);
        assert_eq!(c.runs, vec![1, 1]);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let pt = pt_with(&[
            sp2m(0, 0),
            sp2m(512, 512),
            sp2m(1024, 1024),
            sp2m(4096, 90_112),
        ]);
        let c = ContiguityStats::of(&pt, PageSize::Size2M);
        let cdf = c.cdf();
        assert_eq!(cdf, vec![(1, 0.25), (3, 1.0)]);
    }

    #[test]
    fn effective_distribution_splinters() {
        // Guest: one 2 MB page at gpa 0x800. Host: 4 KB backing.
        let mut gframes = BumpFrameSource::new(0x1000);
        let mut guest = PageTable::new(&mut gframes);
        guest
            .map(sp2m(0x400, 0x800), &mut gframes)
            .unwrap();
        let mut hframes = BumpFrameSource::new(0x8000);
        let mut host = PageTable::new(&mut hframes);
        for gpn in 0x800..0xA00u64 {
            host.map(
                Translation::new(Vpn::new(gpn), Pfn::new(0x10000 + gpn), PageSize::Size4K, rw()),
                &mut hframes,
            )
            .unwrap();
        }
        let d = effective_distribution(&guest, &host);
        assert_eq!(d.pages_4k, 512);
        assert_eq!(d.pages_2m, 0);
    }

    #[test]
    fn effective_distribution_preserves_matched_superpages() {
        let mut gframes = BumpFrameSource::new(0x1000);
        let mut guest = PageTable::new(&mut gframes);
        guest.map(sp2m(0x400, 0x800), &mut gframes).unwrap();
        let mut hframes = BumpFrameSource::new(0x8000);
        let mut host = PageTable::new(&mut hframes);
        host.map(sp2m(0x800, 0x2000), &mut hframes).unwrap();
        let d = effective_distribution(&guest, &host);
        assert_eq!(d.pages_2m, 1);
        assert_eq!(d.pages_4k, 0);
    }

    #[test]
    fn effective_contiguity_spans_guest_pages_when_both_dimensions_align() {
        // Two adjacent guest 2 MB pages whose gpas are adjacent, hosted by
        // adjacent host 2 MB pages → an effective run of 2.
        let mut gframes = BumpFrameSource::new(0x1000);
        let mut guest = PageTable::new(&mut gframes);
        guest.map(sp2m(0x400, 0x800), &mut gframes).unwrap();
        guest.map(sp2m(0x600, 0xA00), &mut gframes).unwrap();
        let mut hframes = BumpFrameSource::new(0x8000);
        let mut host = PageTable::new(&mut hframes);
        host.map(sp2m(0x800, 0x2000), &mut hframes).unwrap();
        host.map(sp2m(0xA00, 0x2200), &mut hframes).unwrap();
        let c = effective_contiguity(&guest, &host, PageSize::Size2M);
        assert_eq!(c.runs, vec![2]);
    }
}
