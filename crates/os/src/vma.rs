//! Virtual memory areas: the OS' record of what a process has `mmap`ed.

use std::fmt;

use mixtlb_types::{PageSize, Permissions, Vpn};

/// One contiguous virtual memory area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First 4 KB virtual page of the area.
    pub start: Vpn,
    /// Length in 4 KB pages.
    pub pages: u64,
    /// Permissions of the whole area.
    pub perms: Permissions,
}

impl Vma {
    /// One-past-the-last 4 KB page of the area.
    pub fn end(&self) -> Vpn {
        self.start.add_4k(self.pages)
    }

    /// Returns `true` if the area contains the given page.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.start && vpn < self.end()
    }

    /// Returns `true` if the *entire* aligned page of `size` containing
    /// `vpn` lies inside this area — the precondition for the OS to back
    /// that region with a superpage.
    pub fn covers_aligned_region(&self, vpn: Vpn, size: PageSize) -> bool {
        let base = vpn.align_down(size);
        base >= self.start && base.add_4k(size.pages_4k()) <= self.end()
    }

    /// Returns `true` if this area overlaps `other`.
    pub fn overlaps(&self, other: &Vma) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) {}", self.start, self.end(), self.perms)
    }
}

/// Errors from VMA bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaError {
    /// The new area overlaps an existing one.
    Overlap,
    /// Zero-length areas are not allowed.
    Empty,
}

impl fmt::Display for VmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmaError::Overlap => write!(f, "virtual memory area overlaps an existing area"),
            VmaError::Empty => write!(f, "virtual memory area must have at least one page"),
        }
    }
}

impl std::error::Error for VmaError {}

/// An ordered set of non-overlapping VMAs.
///
/// # Examples
///
/// ```
/// use mixtlb_os::VmaSet;
/// use mixtlb_types::{Permissions, Vpn};
///
/// let mut vmas = VmaSet::new();
/// vmas.insert(Vpn::new(0x1000), 512, Permissions::rw_user())?;
/// assert!(vmas.find(Vpn::new(0x1100)).is_some());
/// assert!(vmas.find(Vpn::new(0x2000)).is_none());
/// # Ok::<(), mixtlb_os::VmaError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct VmaSet {
    /// Sorted by start page.
    areas: Vec<Vma>,
}

impl VmaSet {
    /// Creates an empty set.
    pub fn new() -> VmaSet {
        VmaSet::default()
    }

    /// Inserts a new area.
    ///
    /// # Errors
    ///
    /// [`VmaError::Empty`] for zero-length areas, [`VmaError::Overlap`] if
    /// the area intersects an existing one.
    pub fn insert(&mut self, start: Vpn, pages: u64, perms: Permissions) -> Result<(), VmaError> {
        if pages == 0 {
            return Err(VmaError::Empty);
        }
        let vma = Vma { start, pages, perms };
        let pos = self.areas.partition_point(|a| a.start < vma.start);
        let prev_overlaps = pos > 0 && self.areas[pos - 1].overlaps(&vma);
        let next_overlaps = pos < self.areas.len() && self.areas[pos].overlaps(&vma);
        if prev_overlaps || next_overlaps {
            return Err(VmaError::Overlap);
        }
        self.areas.insert(pos, vma);
        Ok(())
    }

    /// Finds the area containing a page.
    pub fn find(&self, vpn: Vpn) -> Option<&Vma> {
        let pos = self.areas.partition_point(|a| a.start <= vpn);
        if pos == 0 {
            return None;
        }
        let candidate = &self.areas[pos - 1];
        candidate.contains(vpn).then_some(candidate)
    }

    /// Iterates areas in ascending virtual-address order.
    pub fn iter(&self) -> std::slice::Iter<'_, Vma> {
        self.areas.iter()
    }

    /// Total pages across all areas.
    pub fn total_pages(&self) -> u64 {
        self.areas.iter().map(|a| a.pages).sum()
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Returns `true` if there are no areas.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }
}

impl<'a> IntoIterator for &'a VmaSet {
    type Item = &'a Vma;
    type IntoIter = std::slice::Iter<'a, Vma>;

    fn into_iter(self) -> Self::IntoIter {
        self.areas.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_types::PageSize;

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    #[test]
    fn insert_and_find() {
        let mut set = VmaSet::new();
        set.insert(Vpn::new(100), 50, rw()).unwrap();
        set.insert(Vpn::new(10), 20, rw()).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.find(Vpn::new(10)).unwrap().start, Vpn::new(10));
        assert_eq!(set.find(Vpn::new(149)).unwrap().start, Vpn::new(100));
        assert!(set.find(Vpn::new(150)).is_none());
        assert!(set.find(Vpn::new(99)).is_none());
        // Iteration is VA-ordered regardless of insertion order.
        let starts: Vec<_> = set.iter().map(|a| a.start.raw()).collect();
        assert_eq!(starts, vec![10, 100]);
    }

    #[test]
    fn overlap_rejected() {
        let mut set = VmaSet::new();
        set.insert(Vpn::new(100), 50, rw()).unwrap();
        assert_eq!(set.insert(Vpn::new(149), 1, rw()), Err(VmaError::Overlap));
        assert_eq!(set.insert(Vpn::new(60), 41, rw()), Err(VmaError::Overlap));
        assert_eq!(set.insert(Vpn::new(0), 500, rw()), Err(VmaError::Overlap));
        set.insert(Vpn::new(150), 1, rw()).unwrap();
        set.insert(Vpn::new(99), 1, rw()).unwrap();
    }

    #[test]
    fn empty_area_rejected() {
        let mut set = VmaSet::new();
        assert_eq!(set.insert(Vpn::new(0), 0, rw()), Err(VmaError::Empty));
    }

    #[test]
    fn covers_aligned_region() {
        let vma = Vma {
            start: Vpn::new(512),
            pages: 1024,
            perms: rw(),
        };
        // [512, 1536): the 2 MB regions [512,1024) and [1024,1536) fit.
        assert!(vma.covers_aligned_region(Vpn::new(600), PageSize::Size2M));
        assert!(vma.covers_aligned_region(Vpn::new(1024), PageSize::Size2M));
        // A region straddling the end does not.
        let vma2 = Vma {
            start: Vpn::new(512),
            pages: 700,
            perms: rw(),
        };
        assert!(!vma2.covers_aligned_region(Vpn::new(1100), PageSize::Size2M));
        // Unaligned start: the first region is not fully covered.
        let vma3 = Vma {
            start: Vpn::new(513),
            pages: 1024,
            perms: rw(),
        };
        assert!(!vma3.covers_aligned_region(Vpn::new(600), PageSize::Size2M));
        assert!(vma3.covers_aligned_region(Vpn::new(1025), PageSize::Size2M));
    }

    #[test]
    fn total_pages() {
        let mut set = VmaSet::new();
        set.insert(Vpn::new(0), 10, rw()).unwrap();
        set.insert(Vpn::new(100), 20, rw()).unwrap();
        assert_eq!(set.total_pages(), 30);
    }
}
