//! The kernel: address spaces, demand paging, THS, and compaction routing.

use std::collections::{HashSet, VecDeque};
use std::fmt;

use mixtlb_mem::{CompactionOutcome, FrameKind, PhysicalMemory};
use mixtlb_pagetable::{FrameSource, PageTable};
use mixtlb_types::{PageSize, Permissions, Pfn, Translation, Vpn};

use crate::policy::{PagingPolicy, ThsConfig};
use crate::vma::{VmaError, VmaSet};

/// Identifier of an [`AddressSpace`] within a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpaceId(pub(crate) usize);

/// Errors from fault handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// The page is not inside any VMA (a segfault).
    NoVma,
    /// Physical memory is exhausted.
    OutOfMemory,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NoVma => write!(f, "page is outside every virtual memory area"),
            FaultError::OutOfMemory => write!(f, "physical memory exhausted"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Counters describing how an address space's faults were served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Demand faults handled (excluding already-mapped hits).
    pub faults: u64,
    /// 4 KB mappings created.
    pub mapped_4k: u64,
    /// 2 MB mappings created.
    pub mapped_2m: u64,
    /// 1 GB mappings created.
    pub mapped_1g: u64,
    /// 2 MB mappings that required compaction.
    pub compactions: u64,
    /// THS attempts that fell back to 4 KB pages.
    pub ths_fallbacks: u64,
    /// Superpages served from a hugetlbfs pool.
    pub pool_hits: u64,
}

/// One process (or guest OS image) with its page table, VMAs, and policy.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_table: PageTable,
    vmas: VmaSet,
    policy: PagingPolicy,
    pool: VecDeque<Pfn>,
    pool_size: Option<PageSize>,
    /// 2 MB-aligned region bases where THS has already been attempted.
    ths_attempted: HashSet<u64>,
    /// Compaction scanner position (2 MB window index), Linux-style.
    scan_cursor: u64,
    /// Frame just past the last 2 MB allocation: sequential faults try to
    /// continue here, producing the contiguous superpage runs the paper
    /// measures (Sec. 7.1 — ascending faults get contiguous frames).
    hint_2m: Option<u64>,
    /// Frame just past the last 4 KB allocation (small-page contiguity,
    /// which COLT exploits).
    hint_4k: Option<u64>,
    stats: FaultStats,
}

impl AddressSpace {
    /// The space's page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The space's VMAs.
    pub fn vmas(&self) -> &VmaSet {
        &self.vmas
    }

    /// The paging policy.
    pub fn policy(&self) -> PagingPolicy {
        self.policy
    }

    /// Fault-handling statistics.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Superpages remaining in the hugetlbfs pool.
    pub fn pool_remaining(&self) -> usize {
        self.pool.len()
    }

    /// Mutable page-table access — the hardware walker needs it to
    /// maintain accessed/dirty bits during simulation.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }
}

/// Adapter giving page tables frames from [`PhysicalMemory`].
struct PtFrames<'a>(&'a mut PhysicalMemory);

impl FrameSource for PtFrames<'_> {
    fn alloc_page_table_frame(&mut self) -> Pfn {
        // Top-of-memory allocation keeps page-table frames from splitting
        // the ascending low-address blocks that back data pages — real
        // kernels segregate these by migratetype for the same reason
        // (puncturing a 2 MB run with one PTE page destroys a superpage
        // candidate and breaks physical contiguity).
        self.0
            .alloc_block_top(0, FrameKind::PageTable)
            // lint: allow(panic) — page-table frames come from a reserved top-of-memory region sized at construction; exhaustion is a configuration bug
            .expect("out of memory for page-table frames")
    }
}

/// Packed reverse-map entry: `valid(1) | space(8) | size(2) | vpn(36)`.
fn pack_owner(space: usize, size: PageSize, vpn: Vpn) -> u64 {
    1 | ((space as u64 & 0xFF) << 1) | (u64::from(size.encode()) << 9) | (vpn.raw() << 11)
}

fn unpack_owner(packed: u64) -> Option<(usize, PageSize, Vpn)> {
    if packed & 1 == 0 {
        return None;
    }
    let space = ((packed >> 1) & 0xFF) as usize;
    let size = PageSize::decode(((packed >> 9) & 0b11) as u8)?;
    let vpn = Vpn::new(packed >> 11);
    Some((space, size, vpn))
}

/// The kernel: owns physical memory and all address spaces, handles demand
/// faults, and routes compaction relocations to the right page tables.
pub struct Kernel {
    mem: PhysicalMemory,
    spaces: Vec<AddressSpace>,
    /// `rmap[pfn]` holds the packed owner of the *block base* frame of each
    /// mapped page, 0 when unowned (free, memhog, page tables).
    rmap: Vec<u64>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("spaces", &self.spaces.len())
            .field("free_frames", &self.mem.free_frames())
            .finish()
    }
}

impl Kernel {
    /// Boots a kernel over the given physical memory.
    pub fn new(mem: PhysicalMemory) -> Kernel {
        let frames = mem.total_frames() as usize;
        Kernel {
            mem,
            spaces: Vec::new(),
            rmap: vec![0; frames],
        }
    }

    /// The physical memory (e.g. to inspect fragmentation).
    pub fn mem(&self) -> &PhysicalMemory {
        &self.mem
    }

    /// Mutable access to physical memory (e.g. to run `memhog`).
    pub fn mem_mut(&mut self) -> &mut PhysicalMemory {
        &mut self.mem
    }

    /// A created address space.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this kernel.
    pub fn space(&self, id: SpaceId) -> &AddressSpace {
        &self.spaces[id.0]
    }

    /// Mutable access to an address space (e.g. its page table, for the
    /// hardware walker's accessed/dirty updates).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this kernel.
    pub fn space_mut(&mut self, id: SpaceId) -> &mut AddressSpace {
        &mut self.spaces[id.0]
    }

    /// Number of address spaces.
    pub fn space_count(&self) -> usize {
        self.spaces.len()
    }

    /// Reserves a boot-time hugepage pool (the `hugepagesz=1G
    /// hugepages=N` kernel parameter): pages are carved out while memory
    /// is pristine, before any fragmentation, and handed to the next
    /// space created with a matching hugetlbfs policy via
    /// [`Kernel::create_space_with_pool`]. Returns the reserved pages
    /// (possibly fewer than requested).
    pub fn reserve_boot_pool(&mut self, size: PageSize, bytes: u64) -> Vec<Pfn> {
        let mut pool = Vec::new();
        let want = bytes / size.bytes();
        let mut hint: Option<u64> = None;
        let order = size.buddy_order();
        for _ in 0..want {
            let next = hint.and_then(|h| {
                self.mem
                    .alloc_block_at(Pfn::new(h), order, FrameKind::Movable)
                    .ok()
                    .map(|()| Pfn::new(h))
            });
            let pfn = match next {
                Some(pfn) => pfn,
                None => match self.mem.alloc_page(size, FrameKind::Movable) {
                    Ok(pfn) => pfn,
                    Err(_) => break,
                },
            };
            hint = Some(pfn.raw() + size.pages_4k());
            pool.push(pfn);
        }
        pool
    }

    /// Like [`Kernel::create_space`], with an explicit pre-reserved
    /// hugepage pool (see [`Kernel::reserve_boot_pool`]) that replaces the
    /// policy's own reservation.
    pub fn create_space_with_pool(
        &mut self,
        policy: PagingPolicy,
        pool_size: PageSize,
        pool: Vec<Pfn>,
    ) -> SpaceId {
        let id = self.create_space(PagingPolicy::SmallOnly);
        // Rebuild the space with the right policy but the injected pool.
        let space = &mut self.spaces[id.0];
        space.policy = policy;
        space.pool_size = Some(pool_size);
        space.pool = pool.into_iter().collect();
        // Run the background-compaction daemon the normal path would run.
        self.run_daemon(policy);
        id
    }

    /// khugepaged-style background compaction for THS policies.
    fn run_daemon(&mut self, policy: PagingPolicy) {
        if let Some(ths) = policy.ths() {
            if ths.daemon_budget_share > 0.0 {
                let mut budget =
                    (self.mem.free_frames() as f64 * ths.daemon_budget_share) as u64;
                let windows = self.mem.total_frames() / 512;
                for w in 0..windows {
                    if budget == 0 {
                        break;
                    }
                    let base = Pfn::new(w * 512);
                    let (movable, pinned) = self.mem.window_occupancy(base, 9);
                    if pinned > 0 || movable == 0 || movable > budget {
                        continue;
                    }
                    if let CompactionOutcome::Freed { relocations } =
                        self.mem.compact_window(base, 9, FrameKind::Movable, movable)
                    {
                        self.apply_relocations(&relocations);
                        self.mem.free_block(base, 9);
                        budget = budget.saturating_sub(movable);
                    }
                }
            }
        }
    }

    /// Creates an address space with the given policy, reserving its
    /// hugetlbfs pool (if any) immediately — like `libhugetlbfs` reserving
    /// at program link/start time.
    pub fn create_space(&mut self, policy: PagingPolicy) -> SpaceId {
        let page_table = PageTable::new(&mut PtFrames(&mut self.mem));
        let mut pool = VecDeque::new();
        let mut pool_size = None;
        if let Some((size, bytes)) = policy.pool_request() {
            pool_size = Some(size);
            let want = bytes / size.bytes();
            let order = size.buddy_order();
            let mut hint: Option<u64> = None;
            for _ in 0..want {
                // Continue right after the previous page when possible, so
                // the pool comes out physically contiguous.
                let next = hint.and_then(|h| {
                    self.mem
                        .alloc_block_at(Pfn::new(h), order, FrameKind::Movable)
                        .ok()
                        .map(|()| Pfn::new(h))
                });
                let pfn = match next {
                    Some(pfn) => pfn,
                    None => match self.mem.alloc_page(size, FrameKind::Movable) {
                        Ok(pfn) => pfn,
                        Err(_) => break, // fragmentation limited the pool
                    },
                };
                hint = Some(pfn.raw() + size.pages_4k());
                pool.push_back(pfn);
            }
        }
        // Background (khugepaged-style) compaction: consolidate ascending
        // windows within a bounded migration budget before the space
        // starts faulting, so whatever superpages can form will form in
        // long runs.
        self.run_daemon(policy);
        self.spaces.push(AddressSpace {
            page_table,
            vmas: VmaSet::new(),
            policy,
            pool,
            pool_size,
            ths_attempted: HashSet::new(),
            scan_cursor: 0,
            hint_2m: None,
            hint_4k: None,
            stats: FaultStats::default(),
        });
        SpaceId(self.spaces.len() - 1)
    }

    /// Adds a VMA to a space (the model's `mmap`).
    ///
    /// # Errors
    ///
    /// See [`VmaSet::insert`].
    pub fn mmap(
        &mut self,
        id: SpaceId,
        start: Vpn,
        pages: u64,
        perms: Permissions,
    ) -> Result<(), VmaError> {
        self.spaces[id.0].vmas.insert(start, pages, perms)
    }

    /// Handles a demand fault at `vpn`, returning the mapping that now
    /// covers the page (possibly pre-existing).
    ///
    /// # Errors
    ///
    /// [`FaultError::NoVma`] outside every VMA; [`FaultError::OutOfMemory`]
    /// when no frame can be allocated.
    pub fn fault(&mut self, id: SpaceId, vpn: Vpn) -> Result<Translation, FaultError> {
        let sid = id.0;
        let vma = *self.spaces[sid].vmas.find(vpn).ok_or(FaultError::NoVma)?;
        if let Some(existing) = self.spaces[sid].page_table.lookup(vpn) {
            return Ok(existing);
        }
        self.spaces[sid].stats.faults += 1;
        // 1. hugetlbfs pool.
        if let Some(pool_size) = self.spaces[sid].pool_size {
            if vma.covers_aligned_region(vpn, pool_size)
                && vpn
                    .align_down(pool_size)
                    .is_aligned(pool_size)
                && !self.spaces[sid].pool.is_empty()
            {
                // lint: allow(panic) — pool non-emptiness is checked in the surrounding condition
                let pfn = self.spaces[sid].pool.pop_front().expect("non-empty pool");
                let t = Translation::new(vpn.align_down(pool_size), pfn, pool_size, vma.perms);
                self.install(sid, t)?;
                let space = &mut self.spaces[sid];
                space.stats.pool_hits += 1;
                match pool_size {
                    PageSize::Size2M => space.stats.mapped_2m += 1,
                    PageSize::Size1G => space.stats.mapped_1g += 1,
                    PageSize::Size4K => space.stats.mapped_4k += 1,
                }
                return Ok(t);
            }
        }
        // 2. transparent hugepages (2 MB).
        if let Some(ths) = self.spaces[sid].policy.ths() {
            let region = vpn.align_down(PageSize::Size2M);
            if vma.covers_aligned_region(vpn, PageSize::Size2M)
                && !self.spaces[sid].ths_attempted.contains(&region.raw())
            {
                self.spaces[sid].ths_attempted.insert(region.raw());
                if let Some((pfn, compacted)) = self.alloc_2m_with_compaction(sid, ths) {
                    let t = Translation::new(region, pfn, PageSize::Size2M, vma.perms);
                    self.install(sid, t)?;
                    let space = &mut self.spaces[sid];
                    space.stats.mapped_2m += 1;
                    if compacted {
                        space.stats.compactions += 1;
                    }
                    return Ok(t);
                }
                self.spaces[sid].stats.ths_fallbacks += 1;
            }
        }
        // 3. 4 KB fallback (hinted: sequential small-page faults get
        // contiguous frames — the behaviour COLT exploits).
        let hinted = self.spaces[sid].hint_4k.and_then(|h| {
            if h < self.mem.total_frames()
                && self
                    .mem
                    .alloc_block_at(Pfn::new(h), 0, FrameKind::Movable)
                    .is_ok()
            {
                Some(Pfn::new(h))
            } else {
                None
            }
        });
        let pfn = match hinted {
            Some(pfn) => pfn,
            None => self
                .mem
                .alloc_page(PageSize::Size4K, FrameKind::Movable)
                .map_err(|_| FaultError::OutOfMemory)?,
        };
        self.spaces[sid].hint_4k = Some(pfn.raw() + 1);
        let t = Translation::new(vpn, pfn, PageSize::Size4K, vma.perms);
        self.install(sid, t)?;
        self.spaces[sid].stats.mapped_4k += 1;
        Ok(t)
    }

    /// Faults in every page of every VMA of a space, in ascending virtual
    /// address order (the common access pattern the paper notes leads to
    /// contiguous physical allocation). Returns the number of 4 KB pages
    /// mapped; stops early if memory runs out.
    pub fn fault_all(&mut self, id: SpaceId) -> u64 {
        let vmas: Vec<_> = self.spaces[id.0].vmas.iter().copied().collect();
        let mut mapped = 0;
        for vma in vmas {
            let mut vpn = vma.start;
            while vpn < vma.end() {
                match self.fault(id, vpn) {
                    Ok(t) => {
                        let next = t.vpn.add_4k(t.size.pages_4k());
                        mapped += next.raw().saturating_sub(vpn.raw());
                        vpn = next.max(vpn.add_4k(1));
                    }
                    Err(FaultError::OutOfMemory) => return mapped,
                    Err(FaultError::NoVma) => unreachable!("faulting inside a VMA"),
                }
            }
        }
        mapped
    }

    /// Unmaps the page covering `vpn`, freeing its frames. Returns the
    /// removed mapping (for TLB invalidation).
    ///
    /// # Errors
    ///
    /// [`FaultError::NoVma`] if nothing is mapped at `vpn`.
    pub fn unmap_page(&mut self, id: SpaceId, vpn: Vpn) -> Result<Translation, FaultError> {
        let sid = id.0;
        let existing = self.spaces[sid]
            .page_table
            .lookup(vpn)
            .ok_or(FaultError::NoVma)?;
        let removed = self.spaces[sid]
            .page_table
            .unmap(existing.vpn, existing.size)
            // lint: allow(panic) — the lookup just above found this exact mapping
            .expect("lookup just found the mapping");
        self.mem.free_page(removed.pfn, removed.size);
        self.rmap[removed.pfn.raw() as usize] = 0;
        if removed.size == PageSize::Size2M {
            // Allow THS to try this region again if it is re-faulted.
            self.spaces[sid].ths_attempted.remove(&removed.vpn.raw());
        }
        Ok(removed)
    }

    /// Splinters the superpage mapping covering `vpn` into its constituent
    /// 4 KB mappings, in place (same frames). This is what hypervisor page
    /// sharing does to host large pages under consolidation pressure
    /// (Guo et al., VEE 2015 — the paper's reference 48).
    ///
    /// # Errors
    ///
    /// [`FaultError::NoVma`] if no superpage mapping covers `vpn`.
    pub fn splinter(&mut self, id: SpaceId, vpn: Vpn) -> Result<(), FaultError> {
        let sid = id.0;
        let existing = self.spaces[sid]
            .page_table
            .lookup(vpn)
            .filter(|t| t.size.is_superpage())
            .ok_or(FaultError::NoVma)?;
        let removed = self.spaces[sid]
            .page_table
            .unmap(existing.vpn, existing.size)
            // lint: allow(panic) — the lookup just above found this exact mapping
            .expect("lookup just found the mapping");
        self.rmap[removed.pfn.raw() as usize] = 0;
        let Kernel { mem, spaces, rmap } = self;
        for i in 0..removed.size.pages_4k() {
            let small = Translation {
                vpn: removed.vpn.add_4k(i),
                pfn: removed.pfn.add_4k(i),
                size: PageSize::Size4K,
                perms: removed.perms,
                accessed: removed.accessed,
                dirty: removed.dirty,
            };
            spaces[sid]
                .page_table
                .map(small, &mut PtFrames(mem))
                // lint: allow(panic) — the covering superpage was unmapped above, so the 4 KB remaps cannot collide
                .expect("region was just unmapped");
            rmap[small.pfn.raw() as usize] = pack_owner(sid, PageSize::Size4K, small.vpn);
        }
        Ok(())
    }

    /// Installs a translation in a space's page table and registers the
    /// reverse mapping.
    fn install(&mut self, sid: usize, t: Translation) -> Result<(), FaultError> {
        // Split borrows: page table in `spaces`, frames from `mem`.
        let Kernel { mem, spaces, rmap } = self;
        spaces[sid]
            .page_table
            .map(t, &mut PtFrames(mem))
            // lint: allow(panic) — the fault path runs only for VPNs the walk just reported unmapped
            .expect("fault path never double-maps");
        rmap[t.pfn.raw() as usize] = pack_owner(sid, t.size, t.vpn);
        Ok(())
    }

    /// Allocates a 2 MB block, trying the buddy allocator first and then a
    /// bounded compaction scan. Returns `(pfn, used_compaction)`.
    fn alloc_2m_with_compaction(&mut self, sid: usize, ths: ThsConfig) -> Option<(Pfn, bool)> {
        // Sequential-fault fast path: continue right after the previous
        // 2 MB allocation, skipping over scattered small fragment blocks
        // the buddy allocator would otherwise hand out first.
        if let Some(hint) = self.spaces[sid].hint_2m {
            if hint + 512 <= self.mem.total_frames() {
                if self
                    .mem
                    .alloc_block_at(Pfn::new(hint), 9, FrameKind::Movable)
                    .is_ok()
                {
                    self.spaces[sid].hint_2m = Some(hint + 512);
                    return Some((Pfn::new(hint), false));
                }
                // The hint window is occupied: try compacting *it* before
                // jumping elsewhere (Linux compaction works near the
                // allocation scanner, which is what keeps sequential
                // faults physically sequential through mixed terrain).
                let (movable, pinned) = self.mem.window_occupancy(Pfn::new(hint), 9);
                if hint % 512 == 0 && pinned == 0 && movable > 0 && movable <= ths.compaction_budget
                {
                    if let CompactionOutcome::Freed { relocations } = self.mem.compact_window(
                        Pfn::new(hint),
                        9,
                        FrameKind::Movable,
                        ths.compaction_budget,
                    ) {
                        self.apply_relocations(&relocations);
                        self.spaces[sid].hint_2m = Some(hint + 512);
                        self.spaces[sid].stats.compactions += 1;
                        return Some((Pfn::new(hint), true));
                    }
                }
            }
        }
        if let Ok(pfn) = self.mem.alloc_page(PageSize::Size2M, FrameKind::Movable) {
            self.spaces[sid].hint_2m = Some(pfn.raw() + 512);
            return Some((pfn, false));
        }
        let windows = self.mem.total_frames() / 512;
        if windows == 0 {
            return None;
        }
        let mut cursor = self.spaces[sid].scan_cursor % windows;
        let mut examined = 0u32;
        let mut scanned = 0u64;
        while examined < ths.scan_limit && scanned < windows {
            let base = Pfn::new(cursor * 512);
            cursor = (cursor + 1) % windows;
            scanned += 1;
            let (movable, pinned) = self.mem.window_occupancy(base, 9);
            if pinned > 0 || movable == 0 || movable > ths.compaction_budget {
                continue;
            }
            examined += 1;
            match self
                .mem
                .compact_window(base, 9, FrameKind::Movable, ths.compaction_budget)
            {
                CompactionOutcome::Freed { relocations } => {
                    self.apply_relocations(&relocations);
                    self.spaces[sid].scan_cursor = cursor;
                    self.spaces[sid].hint_2m = Some(base.raw() + 512);
                    return Some((base, true));
                }
                CompactionOutcome::NoSpace => break,
                _ => continue,
            }
        }
        self.spaces[sid].scan_cursor = cursor;
        None
    }

    /// Updates page tables and the reverse map after compaction moved
    /// movable blocks. Blocks without an owner (e.g. `memhog` data) need no
    /// page-table update.
    fn apply_relocations(&mut self, relocations: &[(Pfn, Pfn, u8)]) {
        for &(old, new, _order) in relocations {
            let packed = self.rmap[old.raw() as usize];
            if let Some((owner, size, vpn)) = unpack_owner(packed) {
                self.spaces[owner]
                    .page_table
                    .remap(vpn, size, new)
                    // lint: allow(panic) — reverse-map entries are maintained to point at live mappings
                    .expect("reverse map points at a live mapping");
                self.rmap[old.raw() as usize] = 0;
                self.rmap[new.raw() as usize] = packed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_mem::{Memhog, MemhogConfig, MemoryConfig};

    fn kernel_mb(mb: u64) -> Kernel {
        Kernel::new(PhysicalMemory::new(MemoryConfig::with_bytes(mb << 20)))
    }

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    #[test]
    fn small_only_maps_4k() {
        let mut k = kernel_mb(64);
        let s = k.create_space(PagingPolicy::SmallOnly);
        k.mmap(s, Vpn::new(0x400), 1024, rw()).unwrap();
        assert_eq!(k.fault_all(s), 1024);
        assert_eq!(k.space(s).page_table().mapped_counts(), (1024, 0, 0));
        assert_eq!(k.space(s).stats().mapped_4k, 1024);
    }

    #[test]
    fn mutable_space_access_reaches_page_table() {
        let mut k = kernel_mb(64);
        let s = k.create_space(PagingPolicy::SmallOnly);
        assert_eq!(k.space_count(), 1);
        k.mmap(s, Vpn::new(0x400), 16, rw()).unwrap();
        assert_eq!(k.fault_all(s), 16);
        // The mutable accessors expose the live table: dirtying a mapped
        // page through them must report the backing PTE address.
        let pa = k.space_mut(s).page_table_mut().set_dirty(Vpn::new(0x400));
        assert!(pa.is_some(), "mapped vpn must have a PTE to dirty");
    }

    #[test]
    fn ths_maps_2m_on_clean_memory() {
        let mut k = kernel_mb(64);
        let s = k.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
        k.mmap(s, Vpn::new(0x400), 2048, rw()).unwrap();
        k.fault_all(s);
        assert_eq!(k.space(s).page_table().mapped_counts(), (0, 4, 0));
        // Contiguity: 4 adjacent virtual superpages got adjacent frames.
        let pt = k.space(s).page_table();
        let mut leaves = Vec::new();
        pt.for_each_leaf(|t| leaves.push(*t));
        for pair in leaves.windows(2) {
            assert!(pair[0].is_coalescible_successor(&pair[1]));
        }
    }

    #[test]
    fn ths_unaligned_edges_fall_back_to_4k() {
        let mut k = kernel_mb(64);
        let s = k.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
        // VMA [100, 1224): covers 2 MB region [512, 1024) fully; edges are 4 KB.
        k.mmap(s, Vpn::new(100), 1124, rw()).unwrap();
        k.fault_all(s);
        let (p4k, p2m, _) = k.space(s).page_table().mapped_counts();
        assert_eq!(p2m, 1);
        assert_eq!(p4k, 1124 - 512);
    }

    #[test]
    fn hugetlbfs_pool_serves_then_falls_back() {
        let mut k = kernel_mb(64);
        // Pool of exactly two 2 MB pages.
        let s = k.create_space(PagingPolicy::Hugetlbfs {
            size: PageSize::Size2M,
            pool_bytes: 4 << 20,
        });
        assert_eq!(k.space(s).pool_remaining(), 2);
        k.mmap(s, Vpn::new(0x400), 512 * 3, rw()).unwrap();
        k.fault_all(s);
        let (p4k, p2m, _) = k.space(s).page_table().mapped_counts();
        assert_eq!(p2m, 2);
        assert_eq!(p4k, 512);
        assert_eq!(k.space(s).stats().pool_hits, 2);
        assert_eq!(k.space(s).pool_remaining(), 0);
    }

    #[test]
    fn fragmentation_forces_small_pages_and_compaction_recovers_some() {
        let mut k = kernel_mb(128);
        // The hog is never released: compaction will migrate its chunks.
        let _hog = Memhog::fragment(
            k.mem_mut(),
            MemhogConfig {
                chunk_order: 4,
                unmovable_share: 0.08,
                seed: 7,
                ..MemhogConfig::with_fraction(0.5)
            },
        );
        // Footprint nearly fills the remaining memory, so the clean windows
        // run out and some regions must fall back to 4 KB pages.
        let s = k.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
        k.mmap(s, Vpn::new(0), 15_000, rw()).unwrap();
        k.fault_all(s);
        let stats = k.space(s).stats();
        let (p4k, p2m, _) = k.space(s).page_table().mapped_counts();
        assert!(p2m > 0, "some 2 MB pages expected, got {stats:?}");
        assert!(p4k > 0, "heavy fragmentation must force some 4 KB pages");
        assert!(stats.compactions > 0, "compaction should have fired: {stats:?}");
    }

    #[test]
    fn compaction_updates_page_tables_of_relocated_pages() {
        let mut k = kernel_mb(64); // 32 windows of 2 MB
        // Space A maps 512 pages; its page-table frames plus most data land
        // in window 0, and a handful of movable data pages spill into
        // window 1 — the compactable window.
        let a = k.create_space(PagingPolicy::SmallOnly);
        k.mmap(a, Vpn::new(0), 512, rw()).unwrap();
        k.fault_all(a);
        let spill: Vec<u64> = {
            let mut v = Vec::new();
            k.space(a).page_table().for_each_leaf(|t| {
                if t.pfn.raw() >= 512 && t.pfn.raw() < 1024 {
                    v.push(t.vpn.raw());
                }
            });
            v
        };
        assert!(!spill.is_empty(), "expected A pages spilling into window 1");
        // Pin windows 2..=30 entirely, and poke one unmovable frame into
        // window 31 so no aligned free 2 MB block remains anywhere, while
        // plenty of scattered free frames exist.
        for w in 2..=30u64 {
            k.mem_mut()
                .alloc_block_at(Pfn::new(w * 512), 9, FrameKind::Unmovable)
                .unwrap();
        }
        k.mem_mut()
            .alloc_block_at(Pfn::new(31 * 512), 0, FrameKind::Unmovable)
            .unwrap();
        assert_eq!(k.mem().stats().free_2m_blocks, 0);
        // B's 2 MB fault must go through *direct* compaction of window 1
        // (background/khugepaged compaction disabled so the fault path is
        // the one exercised).
        let b = k.create_space(PagingPolicy::TransparentHuge(ThsConfig {
            daemon_budget_share: 0.0,
            ..ThsConfig::default()
        }));
        k.mmap(b, Vpn::new(0x8000), 512, rw()).unwrap();
        k.fault_all(b);
        let (_, p2m, _) = k.space(b).page_table().mapped_counts();
        assert_eq!(p2m, 1, "compaction should have freed a window");
        assert_eq!(k.space(b).stats().compactions, 1);
        // A's spilled pages were relocated out of window 1 and A's page
        // table was updated to their new frames.
        let mut count = 0;
        k.space(a).page_table().for_each_leaf(|t| {
            count += 1;
            if spill.contains(&t.vpn.raw()) {
                assert!(
                    t.pfn.raw() < 512 || t.pfn.raw() >= 1024,
                    "page {} still maps into the compacted window",
                    t.vpn
                );
            }
        });
        assert_eq!(count, 512);
    }

    #[test]
    fn unmap_frees_and_allows_refault() {
        let mut k = kernel_mb(64);
        let s = k.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
        k.mmap(s, Vpn::new(0x400), 512, rw()).unwrap();
        k.fault_all(s);
        let free_before = k.mem().free_frames();
        let removed = k.unmap_page(s, Vpn::new(0x450)).unwrap();
        assert_eq!(removed.size, PageSize::Size2M);
        assert_eq!(k.mem().free_frames(), free_before + 512);
        // Re-fault maps it again.
        let t = k.fault(s, Vpn::new(0x450)).unwrap();
        assert_eq!(t.size, PageSize::Size2M);
    }

    #[test]
    fn fault_outside_vma_errors() {
        let mut k = kernel_mb(64);
        let s = k.create_space(PagingPolicy::SmallOnly);
        assert_eq!(k.fault(s, Vpn::new(0x123)), Err(FaultError::NoVma));
    }

    #[test]
    fn owner_packing_roundtrip() {
        let cases = [
            (0usize, PageSize::Size4K, Vpn::new(0)),
            (255, PageSize::Size1G, Vpn::new((1 << 36) - 1)),
            (7, PageSize::Size2M, Vpn::new(0x400)),
        ];
        for (space, size, vpn) in cases {
            assert_eq!(
                unpack_owner(pack_owner(space, size, vpn)),
                Some((space, size, vpn))
            );
        }
        assert_eq!(unpack_owner(0), None);
    }

    #[test]
    fn boot_pools_survive_fragmentation() {
        let mut k = kernel_mb(64);
        // Reserve 8 MB of 2 MB pages at "boot", then fragment heavily.
        let pool = k.reserve_boot_pool(PageSize::Size2M, 8 << 20);
        assert_eq!(pool.len(), 4);
        // Pool pages are physically contiguous (reserved on pristine memory).
        for pair in pool.windows(2) {
            assert_eq!(pair[1].raw(), pair[0].raw() + 512);
        }
        let _hog = Memhog::fragment(k.mem_mut(), MemhogConfig::with_fraction(0.6).seed(3));
        let s = k.create_space_with_pool(
            PagingPolicy::Hugetlbfs {
                size: PageSize::Size2M,
                pool_bytes: 8 << 20,
            },
            PageSize::Size2M,
            pool,
        );
        k.mmap(s, Vpn::new(0x400), 4 * 512, rw()).unwrap();
        k.fault_all(s);
        let (_, p2m, _) = k.space(s).page_table().mapped_counts();
        assert_eq!(p2m, 4, "all faults served from the boot pool");
        assert_eq!(k.space(s).stats().pool_hits, 4);
    }

    #[test]
    fn splinter_preserves_translation_and_frames() {
        let mut k = kernel_mb(64);
        let s = k.create_space(PagingPolicy::TransparentHuge(ThsConfig::default()));
        k.mmap(s, Vpn::new(0x400), 512, rw()).unwrap();
        k.fault_all(s);
        let before = k.space(s).page_table().lookup(Vpn::new(0x450)).unwrap();
        assert_eq!(before.size, PageSize::Size2M);
        k.splinter(s, Vpn::new(0x400)).unwrap();
        let (p4k, p2m, _) = k.space(s).page_table().mapped_counts();
        assert_eq!((p4k, p2m), (512, 0));
        // Every 4 KB page maps to the same frame it had inside the
        // superpage.
        for off in [0u64, 1, 80, 511] {
            let t = k.space(s).page_table().lookup(Vpn::new(0x400 + off)).unwrap();
            assert_eq!(t.size, PageSize::Size4K);
            assert_eq!(Some(t.pfn), before.frame_for(Vpn::new(0x400 + off)));
        }
        // Splintering a non-superpage errors.
        assert!(k.splinter(s, Vpn::new(0x400)).is_err());
    }

    #[test]
    fn oom_is_reported() {
        let mut k = kernel_mb(1);
        let s = k.create_space(PagingPolicy::SmallOnly);
        k.mmap(s, Vpn::new(0), 1024, rw()).unwrap();
        let mapped = k.fault_all(s);
        assert!(mapped < 1024);
        assert_eq!(k.fault(s, Vpn::new(1023)), Err(FaultError::OutOfMemory));
    }
}
