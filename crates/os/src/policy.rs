//! Page-size selection policies.

use mixtlb_types::PageSize;

/// Transparent-hugepage tuning knobs.
///
/// These (together with `memhog`'s chunk geometry in `mixtlb-mem`) are the
/// calibration constants that reproduce the paper's Figure 9 regimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThsConfig {
    /// Maximum movable frames direct compaction may migrate to free one
    /// 2 MB window during a fault (Linux's bounded direct-compaction
    /// effort).
    pub compaction_budget: u64,
    /// Candidate windows the compaction scanner examines per fault before
    /// giving up.
    pub scan_limit: u32,
    /// Background-compaction (khugepaged-style) migration budget, as a
    /// share of the free frames at address-space creation. The daemon
    /// consolidates ascending windows until the budget runs out, which is
    /// why the superpages that *do* form under fragmentation form in long
    /// contiguous runs (the paper's Fig. 11 observation that any system
    /// able to produce superpages at all produces them adjacently).
    pub daemon_budget_share: f64,
}

impl Default for ThsConfig {
    fn default() -> ThsConfig {
        ThsConfig {
            compaction_budget: 160,
            scan_limit: 64,
            daemon_budget_share: 0.15,
        }
    }
}

/// How an address space's demand faults choose page sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PagingPolicy {
    /// 4 KB pages only.
    SmallOnly,
    /// `libhugetlbfs`: reserve a pool of superpages of one size up front;
    /// allocate from the pool, falling back to 4 KB when it is exhausted.
    Hugetlbfs {
        /// Pool page size (2 MB or 1 GB).
        size: PageSize,
        /// Pool capacity in bytes to attempt to reserve.
        pool_bytes: u64,
    },
    /// Linux transparent hugepage support: opportunistic 2 MB pages with
    /// compaction, 4 KB fallback.
    TransparentHuge(ThsConfig),
    /// A 1 GB `hugetlbfs` pool for part of the footprint plus THS for the
    /// rest: all three page sizes concurrently (the paper's "mixed" setup).
    Mixed {
        /// Bytes of 1 GB pool to attempt to reserve.
        gb_pool_bytes: u64,
        /// THS knobs for the rest of memory.
        ths: ThsConfig,
    },
}

impl PagingPolicy {
    /// Returns the hugetlbfs pool request `(size, bytes)`, if any.
    pub fn pool_request(&self) -> Option<(PageSize, u64)> {
        match *self {
            PagingPolicy::Hugetlbfs { size, pool_bytes } => Some((size, pool_bytes)),
            PagingPolicy::Mixed { gb_pool_bytes, .. } => Some((PageSize::Size1G, gb_pool_bytes)),
            _ => None,
        }
    }

    /// Returns the THS configuration, if transparent hugepages are active.
    pub fn ths(&self) -> Option<ThsConfig> {
        match *self {
            PagingPolicy::TransparentHuge(cfg) => Some(cfg),
            PagingPolicy::Mixed { ths, .. } => Some(ths),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_requests() {
        assert_eq!(PagingPolicy::SmallOnly.pool_request(), None);
        assert_eq!(
            PagingPolicy::Hugetlbfs {
                size: PageSize::Size1G,
                pool_bytes: 8 << 30
            }
            .pool_request(),
            Some((PageSize::Size1G, 8 << 30))
        );
        let mixed = PagingPolicy::Mixed {
            gb_pool_bytes: 4 << 30,
            ths: ThsConfig::default(),
        };
        assert_eq!(mixed.pool_request(), Some((PageSize::Size1G, 4 << 30)));
    }

    #[test]
    fn ths_configs() {
        assert!(PagingPolicy::SmallOnly.ths().is_none());
        assert!(PagingPolicy::TransparentHuge(ThsConfig::default()).ths().is_some());
        assert!(
            PagingPolicy::Mixed {
                gb_pool_bytes: 0,
                ths: ThsConfig::default()
            }
            .ths()
            .is_some()
        );
        assert!(
            PagingPolicy::Hugetlbfs {
                size: PageSize::Size2M,
                pool_bytes: 1 << 30
            }
            .ths()
            .is_none()
        );
    }
}
