//! Property tests for the page-table scanners: run detection agrees with
//! a naive recomputation, and the CDF is a valid distribution.

use mixtlb_os::scan::{ContiguityStats, PageSizeDistribution, RunFinder};
use mixtlb_pagetable::{BumpFrameSource, PageTable};
use mixtlb_types::{PageSize, Permissions, Pfn, Translation, Vpn};
use proptest::prelude::*;

/// Builds a 2 MB mapping stream from run-length encoded input: each entry
/// is `(run_length, gap_pages, phys_jump)`.
fn mappings_from_rle(rle: &[(u8, u8, bool)]) -> Vec<Translation> {
    let mut out = Vec::new();
    let mut vpn = 0u64;
    let mut pfn = 1u64 << 20;
    for &(len, gap, jump) in rle {
        let len = u64::from(len % 6) + 1;
        for _ in 0..len {
            out.push(Translation::new(
                Vpn::new(vpn),
                Pfn::new(pfn),
                PageSize::Size2M,
                Permissions::rw_user(),
            ));
            vpn += 512;
            pfn += 512;
        }
        // Break the run: a virtual gap and/or a physical jump.
        vpn += 512 * (1 + u64::from(gap % 4));
        if jump {
            pfn += 512 * 7;
        } else {
            pfn += 512 * (1 + u64::from(gap % 4)); // keep phys in lockstep
        }
    }
    out
}

/// Naive O(n²)-ish reference: recompute runs directly from the list.
fn naive_runs(mappings: &[Translation]) -> Vec<u64> {
    let mut runs = Vec::new();
    let mut current = 0u64;
    for (i, t) in mappings.iter().enumerate() {
        if i > 0 && mappings[i - 1].is_coalescible_successor(t) {
            current += 1;
        } else {
            if current > 0 {
                runs.push(current);
            }
            current = 1;
        }
    }
    if current > 0 {
        runs.push(current);
    }
    runs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn run_finder_matches_naive_recomputation(
        rle in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..24),
    ) {
        let mappings = mappings_from_rle(&rle);
        // Through the page table scanner...
        let mut frames = BumpFrameSource::new(0x40_0000);
        let mut pt = PageTable::new(&mut frames);
        for t in &mappings {
            pt.map(*t, &mut frames).expect("RLE mappings never overlap");
        }
        let via_table = ContiguityStats::of(&pt, PageSize::Size2M);
        // ...and directly through the RunFinder.
        let mut finder = RunFinder::new(PageSize::Size2M);
        for t in &mappings {
            finder.feed(t);
        }
        let direct = finder.finish();
        let naive = naive_runs(&mappings);
        prop_assert_eq!(&via_table.runs, &naive);
        prop_assert_eq!(&direct.runs, &naive);
        // Invariants of the statistics.
        prop_assert_eq!(via_table.translations(), mappings.len() as u64);
        let avg = via_table.average_contiguity();
        let max = via_table.max_run() as f64;
        prop_assert!(avg >= 1.0 - 1e-12 && avg <= max + 1e-12);
    }

    #[test]
    fn cdf_is_a_valid_distribution(
        rle in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..24),
    ) {
        let mappings = mappings_from_rle(&rle);
        let mut finder = RunFinder::new(PageSize::Size2M);
        for t in &mappings {
            finder.feed(t);
        }
        let stats = finder.finish();
        let cdf = stats.cdf();
        prop_assert!(!cdf.is_empty());
        // Monotone in both coordinates, ending at exactly 1.
        for pair in cdf.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0);
            prop_assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
        let last = cdf.last().expect("non-empty");
        prop_assert!((last.1 - 1.0).abs() < 1e-9);
        prop_assert_eq!(last.0, stats.max_run());
    }

    #[test]
    fn distribution_bytes_are_consistent(
        n4k in 0u64..64,
        n2m in 0u64..16,
        n1g in 0u64..3,
    ) {
        prop_assume!(n4k + n2m + n1g > 0);
        let mut frames = BumpFrameSource::new(0x40_0000);
        let mut pt = PageTable::new(&mut frames);
        // Disjoint regions per size class.
        for i in 0..n4k {
            pt.map(
                Translation::new(Vpn::new(i), Pfn::new(0x10_0000 + i), PageSize::Size4K,
                                 Permissions::rw_user()),
                &mut frames,
            ).expect("disjoint");
        }
        for i in 0..n2m {
            pt.map(
                Translation::new(Vpn::new((1 << 18) + i * 512), Pfn::new(0x20_0000 + i * 512),
                                 PageSize::Size2M, Permissions::rw_user()),
                &mut frames,
            ).expect("disjoint");
        }
        for i in 0..n1g {
            pt.map(
                Translation::new(Vpn::new((8 + i) << 18), Pfn::new((16 + i) << 18),
                                 PageSize::Size1G, Permissions::rw_user()),
                &mut frames,
            ).expect("disjoint");
        }
        let d = PageSizeDistribution::of(&pt);
        prop_assert_eq!((d.pages_4k, d.pages_2m, d.pages_1g), (n4k, n2m, n1g));
        let expected_bytes = n4k * 4096 + n2m * (2 << 20) + n1g * (1 << 30);
        prop_assert_eq!(d.total_bytes(), expected_bytes);
        let sp = d.superpage_fraction();
        prop_assert!((0.0..=1.0).contains(&sp));
        if n2m + n1g == 0 {
            prop_assert_eq!(sp, 0.0);
        }
        if n4k == 0 {
            prop_assert!((sp - 1.0).abs() < 1e-12);
        }
    }
}
