//! GPU address-translation scenarios: multi-SM machines with per-shader-
//! core L1 TLBs, a shared L2 TLB, and a shared page-table walker.
//!
//! The paper's Sec. 6.3 models CPU-GPU systems with shared virtual memory:
//! each shader core (SM) has its own L1 TLBs (128-entry 4-way for 4 KB
//! pages plus split superpage TLBs — or an area-equivalent MIX TLB), all
//! SMs share an L2 TLB and the walker, and hundreds of concurrent threads
//! make TLB misses both frequent and expensive. This crate reproduces
//! that functionally: per-SM Rodinia-like access streams are interleaved
//! round-robin, misses contend for the shared L2/walker, and walker
//! serialization is charged as a queueing penalty proportional to miss
//! concurrency (a functional stand-in for gem5-gpu's cycle-level port
//! model; see DESIGN.md substitution 5).
//!
//! # Examples
//!
//! ```
//! use mixtlb_gpu::{GpuConfig, GpuScenario};
//! use mixtlb_sim::designs;
//! use mixtlb_trace::WorkloadSpec;
//!
//! let spec = WorkloadSpec::by_name("bfs").unwrap();
//! let mut scenario = GpuScenario::prepare(&spec, &GpuConfig::quick());
//! let split = scenario.run(designs::gpu_split_l1, 20_000);
//! let mix = scenario.run(designs::gpu_mix_l1, 20_000);
//! assert!(mix.total_cycles <= split.total_cycles * 1.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mixtlb_cache::{CacheHierarchy, HierarchyConfig, PageWalkCache};
use mixtlb_core::{Lookup, MixTlb, MixTlbConfig, TlbDevice, TlbStats};

use mixtlb_mem::{Memhog, MemhogConfig, MemoryConfig, PhysicalMemory};
use mixtlb_os::scan::{ContiguityStats, PageSizeDistribution};
use mixtlb_os::{Kernel, SpaceId};
use mixtlb_pagetable::{PageTable, Walker};
use mixtlb_sim::{EngineStats, PerfReport, PolicyChoice};
use mixtlb_trace::{TraceGenerator, WorkloadSpec};
use mixtlb_types::{PageSize, Permissions, Vpn, PAGE_SIZE_4K};

/// GPU scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Shader cores (SMs). The evaluation uses 16.
    pub sms: u32,
    /// Device-visible memory in bytes (the paper's GPU studies use 24 GB).
    pub mem_bytes: u64,
    /// memhog fragmentation fraction.
    pub memhog_fraction: f64,
    /// OS paging policy backing the shared virtual address space.
    pub policy: PolicyChoice,
    /// Cap on the workload footprint.
    pub footprint_cap: Option<u64>,
    /// RNG seed.
    pub seed: u64,
    /// Extra walker-queueing cycles charged per walk per concurrent SM
    /// (the shared-walker serialization penalty).
    pub walk_queue_cycles: u64,
}

impl GpuConfig {
    /// A tiny configuration for tests (256 MB, 4 SMs).
    pub fn quick() -> GpuConfig {
        GpuConfig {
            sms: 4,
            mem_bytes: 256 << 20,
            memhog_fraction: 0.0,
            policy: PolicyChoice::Ths,
            footprint_cap: Some(128 << 20),
            seed: 42,
            walk_queue_cycles: 4,
        }
    }

    /// The benchmark default: 16 SMs over 4 GB (scaled from 24 GB).
    pub fn standard() -> GpuConfig {
        GpuConfig {
            sms: 16,
            mem_bytes: 4 << 30,
            memhog_fraction: 0.0,
            policy: PolicyChoice::Ths,
            footprint_cap: None,
            seed: 42,
            walk_queue_cycles: 4,
        }
    }

    /// Sets the memhog fraction.
    pub fn with_memhog(mut self, fraction: f64) -> GpuConfig {
        self.memhog_fraction = fraction;
        self
    }

    /// Sets the policy.
    pub fn with_policy(mut self, policy: PolicyChoice) -> GpuConfig {
        self.policy = policy;
        self
    }
}

/// A prepared GPU scenario: OS state and a faulted footprint shared by all
/// SMs.
pub struct GpuScenario {
    kernel: Kernel,
    space: SpaceId,
    spec: WorkloadSpec,
    region: Vpn,
    config: GpuConfig,
}

impl std::fmt::Debug for GpuScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuScenario")
            .field("workload", &self.spec.name)
            .field("sms", &self.config.sms)
            .finish()
    }
}

impl GpuScenario {
    /// Builds the scenario (same OS pipeline as a native CPU scenario: the
    /// GPU shares the process' virtual address space).
    pub fn prepare(spec: &WorkloadSpec, cfg: &GpuConfig) -> GpuScenario {
        let mem = PhysicalMemory::new(MemoryConfig::with_bytes(cfg.mem_bytes));
        let mut kernel = Kernel::new(mem);
        if cfg.memhog_fraction > 0.0 {
            let _hog = Memhog::fragment(
                kernel.mem_mut(),
                MemhogConfig::with_fraction(cfg.memhog_fraction).seed(cfg.seed),
            );
        }
        let free_bytes = kernel.mem().free_frames() * PAGE_SIZE_4K;
        let mut footprint = spec.footprint_bytes.min(free_bytes * 85 / 100);
        if let Some(cap) = cfg.footprint_cap {
            footprint = footprint.min(cap);
        }
        footprint = footprint.max(PAGE_SIZE_4K);
        let spec = spec.clone().with_footprint(footprint);
        let policy = match cfg.policy {
            PolicyChoice::SmallOnly => mixtlb_os::PagingPolicy::SmallOnly,
            PolicyChoice::Huge2M => mixtlb_os::PagingPolicy::Hugetlbfs {
                size: PageSize::Size2M,
                pool_bytes: footprint,
            },
            PolicyChoice::Huge1G => mixtlb_os::PagingPolicy::Hugetlbfs {
                size: PageSize::Size1G,
                pool_bytes: footprint,
            },
            PolicyChoice::Ths => {
                mixtlb_os::PagingPolicy::TransparentHuge(mixtlb_os::ThsConfig::default())
            }
            PolicyChoice::Mixed => mixtlb_os::PagingPolicy::Mixed {
                gb_pool_bytes: footprint / 2,
                ths: mixtlb_os::ThsConfig::default(),
            },
        };
        let space = kernel.create_space(policy);
        let region = Vpn::new(1 << 18);
        kernel
            .mmap(space, region, spec.footprint_pages(), Permissions::rw_user())
            // lint: allow(panic) — a freshly created address space has no VMAs to overlap
            .expect("fresh address space");
        kernel.fault_all(space);
        GpuScenario {
            kernel,
            space,
            spec,
            region,
            config: *cfg,
        }
    }

    /// The workload (with its final footprint).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Page-size distribution (the GPU series of Figure 9).
    pub fn distribution(&self) -> PageSizeDistribution {
        PageSizeDistribution::of(self.kernel.space(self.space).page_table())
    }

    /// Superpage contiguity (GPU series of Figures 11, 13).
    pub fn contiguity(&self, size: PageSize) -> ContiguityStats {
        ContiguityStats::of(self.kernel.space(self.space).page_table(), size)
    }

    /// Replays `refs` references (interleaved round-robin over the SMs)
    /// against per-SM L1 TLBs from `l1_factory` and a shared MIX-geometry
    /// L2 (512 entries, matching the paper's shared L2 assumption).
    pub fn run(&mut self, l1_factory: fn() -> Box<dyn TlbDevice>, refs: u64) -> PerfReport {
        let shared_l2: Box<dyn TlbDevice> = Box::new(MixTlb::new(MixTlbConfig {
            kind: mixtlb_core::CoalesceKind::Bitmap,
            ..MixTlbConfig::l2(64, 8)
        }));
        self.run_with_l2(l1_factory, shared_l2, refs)
    }

    /// Like [`GpuScenario::run`] with an explicit shared L2 TLB.
    pub fn run_with_l2(
        &mut self,
        l1_factory: fn() -> Box<dyn TlbDevice>,
        mut shared_l2: Box<dyn TlbDevice>,
        refs: u64,
    ) -> PerfReport {
        let mut pt: PageTable = self.kernel.space(self.space).page_table().clone();
        let mut caches = CacheHierarchy::new(HierarchyConfig::haswell());
        let mut pwc = PageWalkCache::new(32); // shared walker's MMU cache
        let sms = self.config.sms as usize;
        let mut l1s: Vec<Box<dyn TlbDevice>> = (0..sms).map(|_| l1_factory()).collect();
        let design = format!("{}x{}", l1s[0].name(), sms);
        let mut generators: Vec<TraceGenerator> = (0..sms)
            .map(|sm| {
                TraceGenerator::new(
                    &self.spec,
                    self.config.seed.wrapping_add(sm as u64 * 0x9E37),
                    self.region,
                )
            })
            .collect();
        let mut stats = EngineStats::default();
        // Misses outstanding in the current round-robin sweep approximate
        // walker queue depth.
        let mut sweep_walks = 0u64;
        for i in 0..refs {
            let sm = (i % sms as u64) as usize;
            if sm == 0 {
                sweep_walks = 0;
            }
            // lint: allow(panic) — access generators are infinite iterators
            let ev = generators[sm].next().expect("generators are infinite");
            stats.accesses += 1;
            let vpn = ev.va.vpn();
            match l1s[sm].lookup_pc(vpn, ev.kind, ev.pc) {
                Lookup::Hit { translation, dirty_microop, .. } => {
                    if dirty_microop {
                        stats.dirty_microops += 1;
                        if let Some(pa) = pt.set_dirty(vpn) {
                            caches.access(pa);
                            stats.walk_traffic.pte_writes += 1;
                        }
                    }
                    stats.l1_hits += 1;
                    let _ = translation;
                    continue;
                }
                Lookup::Miss => {}
            }
            stats.stall_cycles += 7; // shared L2 probe
            match shared_l2.lookup_pc(vpn, ev.kind, ev.pc) {
                Lookup::Hit { translation, run, .. } => {
                    stats.l2_hits += 1;
                    match run {
                        Some(run) if run.len > 1 => {
                            let line = run.translations();
                            l1s[sm].fill(vpn, &translation, &line);
                        }
                        _ => l1s[sm].fill(vpn, &translation, &[translation]),
                    }
                    continue;
                }
                Lookup::Miss => {}
            }
            // Shared walker: base memory latency plus queueing that grows
            // with the number of walks already issued this sweep.
            stats.walks += 1;
            stats.stall_cycles += sweep_walks * self.config.walk_queue_cycles;
            sweep_walks += 1;
            let walk = Walker::walk(&mut pt, ev.va, ev.kind);
            let last = walk.pte_reads.len().saturating_sub(1);
            for (i, pa) in walk.pte_reads.iter().enumerate() {
                if i != last && pwc.access(*pa) {
                    stats.stall_cycles += 1;
                    continue;
                }
                let r = caches.access(*pa);
                stats.stall_cycles += r.cycles;
                match r.level_hit {
                    Some(level) => stats.walk_traffic.cache_hits[level.min(2)] += 1,
                    None => stats.walk_traffic.dram_accesses += 1,
                }
            }
            for pa in &walk.pte_writes {
                let r = caches.access(*pa);
                stats.stall_cycles += r.cycles;
                stats.walk_traffic.pte_writes += 1;
            }
            let Some(translation) = walk.translation else {
                stats.faults += 1;
                continue;
            };
            shared_l2.fill(vpn, &translation, &walk.line_translations);
            l1s[sm].fill(vpn, &translation, &walk.line_translations);
        }
        // Aggregate per-SM L1 stats.
        let mut l1_total = TlbStats::default();
        for l1 in &l1s {
            let s = l1.stats();
            l1_total.lookups += s.lookups;
            l1_total.hits += s.hits;
            l1_total.misses += s.misses;
            l1_total.sets_probed += s.sets_probed;
            l1_total.entries_read += s.entries_read;
            l1_total.fills += s.fills;
            l1_total.entries_written += s.entries_written;
            l1_total.evictions += s.evictions;
            l1_total.dup_merges += s.dup_merges;
            l1_total.coalesce_merges += s.coalesce_merges;
            l1_total.dirty_microops += s.dirty_microops;
            l1_total.predictor_reads += s.predictor_reads;
            l1_total.predictor_misses += s.predictor_misses;
            for (t, h) in l1_total.hits_by_size.iter_mut().zip(s.hits_by_size.iter()) {
                *t += h;
            }
        }
        let l2_stats = shared_l2.stats();
        // Entry budget: per-SM L1s (164 split-equivalent each) + shared L2.
        let entries = sms * 164 + 512;
        PerfReport::build(&design, &self.spec, &stats, &l1_total, Some(&l2_stats), entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixtlb_sim::designs;

    fn spec(name: &str) -> WorkloadSpec {
        WorkloadSpec::by_name(name).unwrap()
    }

    #[test]
    fn gpu_scenario_prepares_and_runs() {
        let mut s = GpuScenario::prepare(&spec("bfs"), &GpuConfig::quick());
        assert!(s.distribution().superpage_fraction() > 0.9);
        let r = s.run(designs::gpu_split_l1, 10_000);
        assert_eq!(r.accesses, 10_000);
        assert_eq!(r.design, "split-gpu-l1x4");
    }

    #[test]
    fn mix_l1s_do_not_lose_to_split_l1s() {
        let mut s = GpuScenario::prepare(&spec("backprop"), &GpuConfig::quick());
        let split = s.run(designs::gpu_split_l1, 20_000);
        let mix = s.run(designs::gpu_mix_l1, 20_000);
        assert!(
            mix.total_cycles <= split.total_cycles * 1.05,
            "mix {} vs split {}",
            mix.total_cycles,
            split.total_cycles
        );
    }

    #[test]
    fn fragmentation_reduces_gpu_superpages() {
        let clean = GpuScenario::prepare(&spec("bfs"), &GpuConfig::quick());
        let fragged =
            GpuScenario::prepare(&spec("bfs"), &GpuConfig::quick().with_memhog(0.7));
        assert!(
            fragged.distribution().superpage_fraction()
                < clean.distribution().superpage_fraction()
        );
    }

    #[test]
    fn small_only_policy_applies() {
        let s = GpuScenario::prepare(
            &spec("kmeans"),
            &GpuConfig::quick().with_policy(PolicyChoice::SmallOnly),
        );
        assert_eq!(s.distribution().superpage_fraction(), 0.0);
    }

    #[test]
    fn per_sm_l1s_are_independent_but_share_the_l2() {
        let mut s = GpuScenario::prepare(&spec("kmeans"), &GpuConfig::quick());
        let r = s.run(designs::gpu_mix_l1, 20_000);
        // All SMs looked up: aggregated L1 lookups equal total accesses.
        assert_eq!(r.accesses, 20_000);
        // The shared L2 absorbed some of the L1 misses.
        assert!(r.l2_hit_rate > 0.0 || r.l1_hit_rate > 0.99);
    }

    #[test]
    fn hugetlbfs_pools_apply_to_gpu_scenarios() {
        let s = GpuScenario::prepare(
            &spec("backprop"),
            &GpuConfig::quick().with_policy(PolicyChoice::Huge2M),
        );
        let d = s.distribution();
        assert!(d.superpage_fraction() > 0.9, "{d:?}");
        assert_eq!(d.pages_1g, 0);
    }

    #[test]
    fn reports_are_consistent() {
        let mut s = GpuScenario::prepare(&spec("bfs"), &GpuConfig::quick());
        let r = s.run(designs::gpu_split_l1, 10_000);
        assert!((r.total_cycles - (r.base_cycles + r.stall_cycles)).abs() < 1e-6);
        assert!(r.l1_hit_rate >= 0.0 && r.l1_hit_rate <= 1.0);
        assert!(r.total_energy_pj > 0.0);
        assert!(r.design.starts_with("split-gpu-l1x"));
    }

    #[test]
    fn more_sms_spread_the_same_reference_budget() {
        let mut cfg = GpuConfig::quick();
        cfg.sms = 2;
        let mut two = GpuScenario::prepare(&spec("pathfinder"), &cfg);
        cfg.sms = 8;
        let mut eight = GpuScenario::prepare(&spec("pathfinder"), &cfg);
        let r2 = two.run(designs::gpu_split_l1, 8_000);
        let r8 = eight.run(designs::gpu_split_l1, 8_000);
        assert_eq!(r2.accesses, r8.accesses);
    }

    #[test]
    fn walker_queueing_charges_concurrent_misses() {
        // With queue cycles zero vs high, cold-start stall cycles differ.
        let mut cfg = GpuConfig::quick();
        cfg.walk_queue_cycles = 0;
        let mut a = GpuScenario::prepare(&spec("bfs"), &cfg);
        let ra = a.run(designs::gpu_split_l1, 5_000);
        cfg.walk_queue_cycles = 50;
        let mut b = GpuScenario::prepare(&spec("bfs"), &cfg);
        let rb = b.run(designs::gpu_split_l1, 5_000);
        assert!(rb.stall_cycles > ra.stall_cycles);
    }
}
