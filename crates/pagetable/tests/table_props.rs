//! Property tests for the page table: map/lookup/unmap agree with a naive
//! model, and walks agree with lookups while maintaining A/D bits.

use std::collections::HashMap;

use mixtlb_pagetable::{BumpFrameSource, MapError, PageTable, Walker};
use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, VirtAddr, Vpn};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Map { slot: u64, size: PageSize, pfn: u64 },
    Unmap { slot: u64, size: PageSize },
    Lookup { slot: u64, offset: u64 },
    Walk { slot: u64, offset: u64, store: bool },
}

fn size_strategy() -> impl Strategy<Value = PageSize> {
    prop_oneof![
        4 => Just(PageSize::Size4K),
        3 => Just(PageSize::Size2M),
        1 => Just(PageSize::Size1G),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32, size_strategy(), 1u64..1 << 20)
            .prop_map(|(slot, size, pfn)| Op::Map { slot, size, pfn }),
        (0u64..32, size_strategy()).prop_map(|(slot, size)| Op::Unmap { slot, size }),
        (0u64..32, 0u64..262_144).prop_map(|(slot, offset)| Op::Lookup { slot, offset }),
        (0u64..32, 0u64..262_144, any::<bool>())
            .prop_map(|(slot, offset, store)| Op::Walk { slot, offset, store }),
    ]
}

/// Slots are 1 GB-aligned regions, so same-slot mappings of different
/// sizes conflict exactly when the model says they overlap.
fn slot_base(slot: u64) -> Vpn {
    Vpn::new(slot << 18)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_table_agrees_with_a_naive_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let mut frames = BumpFrameSource::new(0x1000_0000);
        let mut pt = PageTable::new(&mut frames);
        // Model: per (slot) an optional (size, translation).
        let mut model: HashMap<u64, Translation> = HashMap::new();
        for op in ops {
            match op {
                Op::Map { slot, size, pfn } => {
                    let base = slot_base(slot);
                    let pfn = Pfn::new((pfn << (size.shift() - 12)) & ((1 << 36) - 1));
                    let t = Translation::new(base, pfn, size, Permissions::rw_user());
                    let result = pt.map(t, &mut frames);
                    match model.get(&slot) {
                        None => {
                            prop_assert!(result.is_ok(), "map into empty slot failed: {result:?}");
                            model.insert(slot, t);
                        }
                        Some(existing) => {
                            // Any same-slot mapping overlaps (all mappings
                            // share the slot's base page).
                            let expected = if existing.size == size {
                                MapError::AlreadyMapped
                            } else if existing.size > size {
                                MapError::Shadowed
                            } else {
                                MapError::Obstructed
                            };
                            prop_assert_eq!(result, Err(expected));
                        }
                    }
                }
                Op::Unmap { slot, size } => {
                    let result = pt.unmap(slot_base(slot), size);
                    match model.get(&slot) {
                        Some(existing) if existing.size == size => {
                            let removed = result.expect("model says mapped");
                            prop_assert_eq!(removed.pfn, existing.pfn);
                            model.remove(&slot);
                        }
                        _ => prop_assert_eq!(result, Err(MapError::NotMapped)),
                    }
                }
                Op::Lookup { slot, offset } => {
                    let vpn = slot_base(slot).add_4k(offset);
                    let got = pt.lookup(vpn);
                    let expected = model
                        .get(&slot)
                        .filter(|t| t.covers(vpn))
                        .map(|t| (t.pfn, t.size));
                    prop_assert_eq!(got.map(|t| (t.pfn, t.size)), expected);
                }
                Op::Walk { slot, offset, store } => {
                    let vpn = slot_base(slot).add_4k(offset);
                    let va = VirtAddr::from_page(vpn, 0x80);
                    let kind = if store { AccessKind::Store } else { AccessKind::Load };
                    let walk = Walker::walk(&mut pt, va, kind);
                    match model.get(&slot).filter(|t| t.covers(vpn)) {
                        Some(t) => {
                            let found = walk.translation.expect("model says mapped");
                            prop_assert_eq!(found.pfn, t.pfn);
                            prop_assert!(found.accessed, "walks set the accessed bit");
                            if store {
                                prop_assert!(found.dirty, "store walks set the dirty bit");
                            }
                            // Walk depth matches the leaf level.
                            let expected_reads = match t.size {
                                PageSize::Size4K => 4,
                                PageSize::Size2M => 3,
                                PageSize::Size1G => 2,
                            };
                            prop_assert_eq!(walk.pte_reads.len(), expected_reads);
                        }
                        None => prop_assert!(walk.is_fault()),
                    }
                }
            }
            // Mapped counts always equal the model's.
            let (c4, c2, c1) = pt.mapped_counts();
            let m4 = model.values().filter(|t| t.size == PageSize::Size4K).count() as u64;
            let m2 = model.values().filter(|t| t.size == PageSize::Size2M).count() as u64;
            let m1 = model.values().filter(|t| t.size == PageSize::Size1G).count() as u64;
            prop_assert_eq!((c4, c2, c1), (m4, m2, m1));
        }
    }

    /// The walker's line translations are always true leaves of the table and
    /// include the requested translation.
    #[test]
    fn line_translations_are_true_leaves(
        count in 1u64..16,
        stride in 1u64..3,
        probe in 0u64..16,
    ) {
        let mut frames = BumpFrameSource::new(0x1000_0000);
        let mut pt = PageTable::new(&mut frames);
        for i in 0..count {
            let t = Translation::new(
                Vpn::new(i * stride * 512),
                Pfn::new(0x80_0000 + i * 512),
                PageSize::Size2M,
                Permissions::rw_user(),
            );
            pt.map(t, &mut frames).expect("strided mappings never overlap");
        }
        let target = (probe % count) * stride * 512;
        let walk = Walker::walk(&mut pt, VirtAddr::new(target * 4096), AccessKind::Load);
        let requested = walk.translation.expect("mapped");
        prop_assert!(walk.line_translations.contains(&requested));
        for t in &walk.line_translations {
            prop_assert_eq!(pt.lookup(t.vpn).map(|x| x.pfn), Some(t.pfn));
        }
        // Ascending VA order.
        for pair in walk.line_translations.windows(2) {
            prop_assert!(pair[0].vpn < pair[1].vpn);
        }
    }
}
