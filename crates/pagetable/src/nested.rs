//! Two-dimensional (nested) page-table walks for virtualized systems.
//!
//! Under virtualization a guest virtual address is translated twice: guest
//! virtual → guest physical through the guest page table, and every guest
//! physical address (including the guest's own PTE locations) → system
//! physical through the host (EPT/NPT) table. An x86 nested walk of two
//! 4-level tables therefore reads up to 24 PTEs — 4 guest levels × (4 host
//! PTE reads + 1 guest PTE read) + 4 host reads for the final data address
//! (paper Sec. 2).

use mixtlb_types::{AccessKind, PageSize, PhysAddr, Translation, VirtAddr, Vpn};

use crate::table::{Entry, PageTable};
use crate::walker::Walker;

/// Result of one nested walk.
#[derive(Debug, Clone)]
pub struct NestedWalkResult {
    /// The combined guest-virtual → system-physical translation, valid over
    /// the *smaller* of the guest and host page sizes (page-size
    /// splintering), or `None` on a fault in either dimension.
    pub translation: Option<Translation>,
    /// The guest page size, when the guest walk completed.
    pub guest_size: Option<PageSize>,
    /// The host page size backing the data page, when the walk completed.
    pub host_size: Option<PageSize>,
    /// System-physical addresses of every PTE read (guest PTE reads appear
    /// at their host-translated addresses).
    pub pte_reads: Vec<PhysAddr>,
    /// System-physical addresses of PTE writes (A/D updates in both
    /// dimensions).
    pub pte_writes: Vec<PhysAddr>,
    /// Leaf translations (guest-virtual → system-physical, splintered size)
    /// co-resident in the guest leaf's PTE cache line and contiguous in
    /// *both* dimensions — what nested MIX TLB coalescing can use.
    pub line_translations: Vec<Translation>,
}

impl NestedWalkResult {
    /// Returns `true` if the walk ended in a fault in either dimension.
    pub fn is_fault(&self) -> bool {
        self.translation.is_none()
    }
}

/// A cache of guest-physical → system-physical translations consulted
/// before each host walk of a nested traversal — the *nested TLB* real
/// MMUs (e.g. AMD NPT hardware) maintain, which is what keeps 2-D walks
/// from paying the full 24 references every time.
pub trait NestedTranslationCache {
    /// Returns a cached host mapping covering the guest-physical page, if
    /// any. Must return exactly what a host walk would.
    fn lookup_gpa(&mut self, gpn: mixtlb_types::Vpn) -> Option<Translation>;

    /// Caches a host mapping discovered by a walk (with the PTE line its
    /// walk fetched, for coalescing nested TLBs).
    fn fill_gpa(&mut self, gpn: mixtlb_types::Vpn, t: &Translation, line: &[Translation]);
}

/// A no-op cache: every guest-physical access pays a full host walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNestedCache;

impl NestedTranslationCache for NoNestedCache {
    fn lookup_gpa(&mut self, _gpn: mixtlb_types::Vpn) -> Option<Translation> {
        None
    }

    fn fill_gpa(&mut self, _gpn: mixtlb_types::Vpn, _t: &Translation, _line: &[Translation]) {}
}

/// Walks a guest page table through a host (nested) page table.
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedWalker;

impl NestedWalker {
    /// Performs the 2-D walk of `gva` with no nested TLB (the canonical
    /// worst-case reference counts: up to 24 PTE reads).
    ///
    /// A/D bits are maintained in both tables: the guest leaf like a native
    /// walk, and the host leaves for each translated guest-physical access.
    pub fn walk(
        guest: &mut PageTable,
        host: &mut PageTable,
        gva: VirtAddr,
        access: AccessKind,
    ) -> NestedWalkResult {
        Self::walk_cached(guest, host, gva, access, &mut NoNestedCache)
    }

    /// Performs the 2-D walk of `gva`, consulting `ncache` before each
    /// host traversal (guest PTE reads and the final data read).
    pub fn walk_cached(
        guest: &mut PageTable,
        host: &mut PageTable,
        gva: VirtAddr,
        access: AccessKind,
        ncache: &mut dyn NestedTranslationCache,
    ) -> NestedWalkResult {
        let vpn = gva.vpn();
        let mut pte_reads = Vec::with_capacity(24);
        let mut pte_writes = Vec::with_capacity(4);
        let mut node = 0usize;
        for level in (0..=3u8).rev() {
            let idx = PageTable::index_at(vpn, level);
            let node_pfn = guest.nodes()[node].pfn;
            let gpa_pte = PhysAddr::pte_address(node_pfn, idx);
            // The guest PTE lives at a guest-physical address: translate it
            // through the host table (a full host walk).
            let gpn = mixtlb_types::Vpn::new(gpa_pte.pfn().raw());
            let host_mapping = match ncache.lookup_gpa(gpn) {
                Some(t) => Some(t),
                None => {
                    let host_walk =
                        Walker::walk(host, VirtAddr::new(gpa_pte.raw()), AccessKind::Load);
                    pte_reads.extend(host_walk.pte_reads.iter().copied());
                    pte_writes.extend(host_walk.pte_writes.iter().copied());
                    if let Some(t) = &host_walk.translation {
                        ncache.fill_gpa(gpn, t, &host_walk.line_translations);
                    }
                    host_walk.translation
                }
            };
            let spa_pte = match &host_mapping {
                Some(t) => t
                    .translate(VirtAddr::new(gpa_pte.raw()))
                    // lint: allow(panic) — the host table is pre-faulted to cover every guest page-table frame
                    .expect("host leaf covers the guest PTE address"),
                None => {
                    return Self::fault(pte_reads, pte_writes);
                }
            };
            // The guest PTE read itself, at its system-physical address.
            pte_reads.push(PhysAddr::new(spa_pte.raw()));
            let entry = guest.nodes()[node].entries[idx];
            match entry {
                Entry::Empty => return Self::fault(pte_reads, pte_writes),
                Entry::Table(child) => node = child,
                Entry::Leaf(_) => {
                    let gsize = PageSize::from_level(level)
                        // lint: allow(panic) — the walker only yields leaf entries at levels 0-2
                        .expect("leaf entries exist only at levels 0-2");
                    // Guest A/D update.
                    let mut wrote = false;
                    if let Entry::Leaf(leaf) = guest.node_entry_mut(node, idx) {
                        if !leaf.accessed {
                            leaf.accessed = true;
                            wrote = true;
                        }
                        if access.is_store() && !leaf.dirty {
                            leaf.dirty = true;
                            wrote = true;
                        }
                    }
                    if wrote {
                        pte_writes.push(PhysAddr::new(spa_pte.raw()));
                    }
                    let gleaf = match &guest.nodes()[node].entries[idx] {
                        Entry::Leaf(leaf) => *leaf,
                        _ => unreachable!("guest leaf vanished mid-walk"),
                    };
                    let gtrans = Translation {
                        vpn: vpn.align_down(gsize),
                        pfn: gleaf.pfn,
                        size: gsize,
                        perms: gleaf.perms,
                        accessed: gleaf.accessed,
                        dirty: gleaf.dirty,
                    };
                    // Final host walk for the data's guest-physical address
                    // (through the nested TLB too). Stores must still reach
                    // the host PTE's dirty bit, so they bypass the cache.
                    let data_gpa = gtrans
                        .translate(gva)
                        // lint: allow(panic) — the guest walk just produced this covering leaf
                        .expect("guest leaf covers the request");
                    let data_gpn = mixtlb_types::Vpn::new(data_gpa.pfn().raw());
                    let cached = if access.is_store() {
                        None
                    } else {
                        ncache.lookup_gpa(data_gpn)
                    };
                    let htrans = match cached {
                        Some(t) => t,
                        None => {
                            let final_walk =
                                Walker::walk(host, VirtAddr::new(data_gpa.raw()), access);
                            pte_reads.extend(final_walk.pte_reads.iter().copied());
                            pte_writes.extend(final_walk.pte_writes.iter().copied());
                            match final_walk.translation {
                                Some(t) => {
                                    ncache.fill_gpa(data_gpn, &t, &final_walk.line_translations);
                                    t
                                }
                                None => return Self::fault(pte_reads, pte_writes),
                            }
                        }
                    };
                    let combined = Self::combine(vpn, &gtrans, host);
                    let line_translations =
                        Self::combine_line(guest, host, node, idx, level, vpn);
                    return NestedWalkResult {
                        translation: combined,
                        guest_size: Some(gsize),
                        host_size: Some(htrans.size),
                        pte_reads,
                        pte_writes,
                        line_translations,
                    };
                }
            }
        }
        unreachable!("nested walk descended past level 0");
    }

    /// Builds the combined (splintered) translation for the guest page
    /// containing `vpn`, or `None` if the host does not map the data page.
    fn combine(vpn: Vpn, gtrans: &Translation, host: &PageTable) -> Option<Translation> {
        let data_gpn = gtrans.frame_for(vpn)?;
        let htrans = host.lookup(Vpn::new(data_gpn.raw()))?;
        let combined_size = gtrans.size.min(htrans.size);
        let base_vpn = vpn.align_down(combined_size);
        let base_gpn = gtrans.frame_for(base_vpn)?;
        let base_spn = htrans.frame_for(Vpn::new(base_gpn.raw()))?;
        Some(Translation {
            vpn: base_vpn,
            pfn: base_spn,
            size: combined_size,
            perms: gtrans.perms & htrans.perms,
            accessed: true,
            dirty: gtrans.dirty && htrans.dirty,
        })
    }

    /// Combined translations for the guest leaf's cache line, for nested
    /// coalescing. Only entries whose host backing exists are included.
    fn combine_line(
        guest: &PageTable,
        host: &PageTable,
        node: usize,
        idx: usize,
        level: u8,
        vpn: Vpn,
    ) -> Vec<Translation> {
        let line_start = idx & !7;
        let pages_per_entry = 1u64 << (9 * u64::from(level));
        let node_base = vpn.align_down_pages(pages_per_entry << 9);
        let mut out = Vec::with_capacity(8);
        for i in line_start..line_start + 8 {
            if let Entry::Leaf(leaf) = &guest.nodes()[node].entries[i] {
                if let Some(gsize) = PageSize::from_level(level) {
                    let entry_vpn = node_base.add_4k((i as u64) * pages_per_entry);
                    let gtrans = Translation {
                        vpn: entry_vpn,
                        pfn: leaf.pfn,
                        size: gsize,
                        perms: leaf.perms,
                        accessed: leaf.accessed,
                        dirty: leaf.dirty,
                    };
                    if let Some(combined) = Self::combine(entry_vpn, &gtrans, host) {
                        out.push(combined);
                    }
                }
            }
        }
        out
    }

    /// Builds the nested-fault result. Faults leave the replay loop for
    /// the OS fault handler, so this constructor is off the hot path.
    #[cold]
    fn fault(pte_reads: Vec<PhysAddr>, pte_writes: Vec<PhysAddr>) -> NestedWalkResult {
        NestedWalkResult {
            translation: None,
            guest_size: None,
            host_size: None,
            pte_reads,
            pte_writes,
            line_translations: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::BumpFrameSource;
    use mixtlb_types::{Permissions, Pfn};

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    /// Builds a guest table (nodes in guest-physical frames from 0x1000)
    /// and a host table (nodes in system-physical frames from 0x8000)
    /// where the host identity-maps guest-physical memory with `hsize`
    /// pages at a fixed offset.
    fn setup(hsize: PageSize, hoffset: u64) -> (PageTable, PageTable) {
        let mut gframes = BumpFrameSource::new(0x1000);
        let guest = PageTable::new(&mut gframes);
        let mut hframes = BumpFrameSource::new(0x80_0000);
        let mut host = PageTable::new(&mut hframes);
        // Map guest-physical [0, 64 MB) through the host at `hoffset`.
        let span = 16_384u64; // 64 MB in 4 KB frames
        let step = hsize.pages_4k();
        let mut gpn = 0;
        while gpn < span {
            host.map(
                Translation::new(Vpn::new(gpn), Pfn::new(hoffset + gpn), hsize, rw()),
                &mut hframes,
            )
            .unwrap();
            gpn += step;
        }
        (guest, host)
    }

    #[test]
    fn canonical_24_reference_walk() {
        let (mut guest, mut host) = setup(PageSize::Size4K, 0x10_0000);
        let mut gframes = BumpFrameSource::new(0x2000);
        guest
            .map(
                Translation::new(Vpn::new(5), Pfn::new(0x50), PageSize::Size4K, rw()),
                &mut gframes,
            )
            .unwrap();
        let w = NestedWalker::walk(&mut guest, &mut host, VirtAddr::new(5 * 4096), AccessKind::Load);
        assert!(!w.is_fault());
        // 4 guest levels x (4 host + 1 guest) + 4 final host = 24.
        assert_eq!(w.pte_reads.len(), 24);
        assert_eq!(w.guest_size, Some(PageSize::Size4K));
        assert_eq!(w.host_size, Some(PageSize::Size4K));
    }

    #[test]
    fn combined_translation_is_correct() {
        let (mut guest, mut host) = setup(PageSize::Size4K, 0x10_0000);
        let mut gframes = BumpFrameSource::new(0x2000);
        guest
            .map(
                Translation::new(Vpn::new(5), Pfn::new(0x50), PageSize::Size4K, rw()),
                &mut gframes,
            )
            .unwrap();
        let gva = VirtAddr::new(5 * 4096 + 0x123);
        let w = NestedWalker::walk(&mut guest, &mut host, gva, AccessKind::Load);
        let t = w.translation.unwrap();
        // gva → gpa frame 0x50 → spa frame 0x10_0000 + 0x50.
        assert_eq!(t.translate(gva).unwrap().raw(), (0x10_0000 + 0x50) * 4096 + 0x123);
    }

    #[test]
    fn splintering_takes_the_smaller_size() {
        // Guest maps a 2 MB page; host backs memory with 4 KB pages.
        let (mut guest, mut host) = setup(PageSize::Size4K, 0x10_0000);
        let mut gframes = BumpFrameSource::new(0x2000);
        guest
            .map(
                Translation::new(Vpn::new(0x400), Pfn::new(0x800), PageSize::Size2M, rw()),
                &mut gframes,
            )
            .unwrap();
        let w = NestedWalker::walk(
            &mut guest,
            &mut host,
            VirtAddr::new(0x400 * 4096),
            AccessKind::Load,
        );
        assert_eq!(w.guest_size, Some(PageSize::Size2M));
        assert_eq!(w.host_size, Some(PageSize::Size4K));
        assert_eq!(w.translation.unwrap().size, PageSize::Size4K);
    }

    #[test]
    fn matched_superpages_stay_super() {
        let (mut guest, mut host) = setup(PageSize::Size2M, 0x10_0000);
        let mut gframes = BumpFrameSource::new(0x2000);
        guest
            .map(
                Translation::new(Vpn::new(0x400), Pfn::new(0x800), PageSize::Size2M, rw()),
                &mut gframes,
            )
            .unwrap();
        let gva = VirtAddr::new(0x400 * 4096 + 0x777);
        let w = NestedWalker::walk(&mut guest, &mut host, gva, AccessKind::Load);
        let t = w.translation.unwrap();
        assert_eq!(t.size, PageSize::Size2M);
        assert_eq!(t.translate(gva).unwrap().raw(), (0x10_0000 + 0x800) * 4096 + 0x777);
        // Fewer reads: the guest's 2 MB leaf cuts one guest level, and the
        // host's 2 MB leaves cut one read per host walk:
        // 3 guest levels x (3 host + 1 guest) + 3 final host = 15.
        assert_eq!(w.pte_reads.len(), 15);
    }

    #[test]
    fn host_fault_propagates() {
        let (mut guest, mut host) = setup(PageSize::Size4K, 0x10_0000);
        let mut gframes = BumpFrameSource::new(0x2000);
        // Guest maps data at a guest-physical frame the host does not back.
        guest
            .map(
                Translation::new(Vpn::new(7), Pfn::new(1 << 24), PageSize::Size4K, rw()),
                &mut gframes,
            )
            .unwrap();
        let w = NestedWalker::walk(&mut guest, &mut host, VirtAddr::new(7 * 4096), AccessKind::Load);
        assert!(w.is_fault());
    }

    #[test]
    fn guest_fault_propagates() {
        let (mut guest, mut host) = setup(PageSize::Size4K, 0x10_0000);
        let w = NestedWalker::walk(&mut guest, &mut host, VirtAddr::new(0x9000), AccessKind::Load);
        assert!(w.is_fault());
        // Only the first guest PTE was attempted: 4 host reads + 1 guest read.
        assert_eq!(w.pte_reads.len(), 5);
    }

    #[test]
    fn nested_line_translations_require_both_dimensions_contiguous() {
        let (mut guest, mut host) = setup(PageSize::Size2M, 0x10_0000);
        let mut gframes = BumpFrameSource::new(0x2000);
        // Two adjacent guest 2 MB pages, contiguous in guest-physical too.
        for i in 0..2u64 {
            guest
                .map(
                    Translation::new(
                        Vpn::new(0x400 + i * 512),
                        Pfn::new(0x800 + i * 512),
                        PageSize::Size2M,
                        rw(),
                    ),
                    &mut gframes,
                )
                .unwrap();
        }
        let w = NestedWalker::walk(
            &mut guest,
            &mut host,
            VirtAddr::new(0x400 * 4096),
            AccessKind::Load,
        );
        let line = w.line_translations;
        assert_eq!(line.len(), 2);
        assert!(line[0].is_coalescible_successor(&line[1]));
    }

    #[test]
    fn store_dirties_both_dimensions() {
        let (mut guest, mut host) = setup(PageSize::Size4K, 0x10_0000);
        let mut gframes = BumpFrameSource::new(0x2000);
        guest
            .map(
                Translation::new(Vpn::new(5), Pfn::new(0x50), PageSize::Size4K, rw()),
                &mut gframes,
            )
            .unwrap();
        let w = NestedWalker::walk(&mut guest, &mut host, VirtAddr::new(5 * 4096), AccessKind::Store);
        assert!(!w.is_fault());
        assert!(guest.lookup(Vpn::new(5)).unwrap().dirty);
        assert!(host.lookup(Vpn::new(0x50)).unwrap().dirty);
        assert!(!w.pte_writes.is_empty());
    }
}
