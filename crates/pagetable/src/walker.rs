//! The hardware page-table walker.

use mixtlb_types::{AccessKind, PageSize, PhysAddr, Translation, VirtAddr, Vpn};

use crate::table::{Entry, PageTable};

/// The outcome of one hardware page-table walk.
#[derive(Debug, Clone)]
pub struct WalkResult {
    /// The translation found, or `None` on a page fault.
    pub translation: Option<Translation>,
    /// Physical addresses of the PTEs read, in order (root first). These are
    /// the memory references that hit or miss in the cache hierarchy.
    pub pte_reads: Vec<PhysAddr>,
    /// Physical addresses of PTE *writes* performed by the walker: accessed
    /// and dirty bit updates (the paper's dirty-bit micro-ops, Sec. 4.4).
    pub pte_writes: Vec<PhysAddr>,
    /// All leaf translations residing in the same 64-byte PTE cache line as
    /// the requested leaf, in ascending virtual-address order (the requested
    /// translation included). This is the 8-PTE window the MIX TLB
    /// coalescing logic scans on a fill (paper Fig. 3).
    pub line_translations: Vec<Translation>,
}

impl WalkResult {
    /// Returns `true` if the walk ended in a page fault.
    pub fn is_fault(&self) -> bool {
        self.translation.is_none()
    }
}

/// The hardware walker. Stateless; all state lives in the [`PageTable`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Walker;

impl Walker {
    /// Walks `pt` for `va`, applying x86 accessed/dirty semantics: the
    /// accessed bit of the leaf is set (a PTE write if it was clear), and a
    /// store sets the dirty bit (another PTE write if it was clear).
    pub fn walk(pt: &mut PageTable, va: VirtAddr, access: AccessKind) -> WalkResult {
        let vpn = va.vpn();
        let mut pte_reads = Vec::with_capacity(4);
        let mut pte_writes = Vec::with_capacity(2);
        let mut node = 0usize;
        for level in (0..=3u8).rev() {
            let idx = PageTable::index_at(vpn, level);
            let node_pfn = pt.nodes()[node].pfn;
            let pte_addr = PhysAddr::pte_address(node_pfn, idx);
            pte_reads.push(pte_addr);
            let entry = pt.nodes()[node].entries[idx];
            match entry {
                Entry::Empty => {
                    return Self::fault(pte_reads, pte_writes);
                }
                Entry::Table(child) => {
                    node = child;
                }
                Entry::Leaf(_) => {
                    let size = match PageSize::from_level(level) {
                        Some(size) => size,
                        // A leaf at PML4 level is architecturally impossible.
                        None => unreachable!("leaf entry at level {level}"),
                    };
                    // Update A/D bits in place.
                    let mut wrote = false;
                    if let Entry::Leaf(leaf) = pt.node_entry_mut(node, idx) {
                        if !leaf.accessed {
                            leaf.accessed = true;
                            wrote = true;
                        }
                        if access.is_store() && !leaf.dirty {
                            leaf.dirty = true;
                            wrote = true;
                        }
                    }
                    if wrote {
                        pte_writes.push(pte_addr);
                    }
                    let line_translations = Self::line_leaves(pt, node, idx, level, vpn);
                    let leaf = match &pt.nodes()[node].entries[idx] {
                        Entry::Leaf(leaf) => *leaf,
                        _ => unreachable!("leaf vanished mid-walk"),
                    };
                    return WalkResult {
                        translation: Some(Translation {
                            vpn: vpn.align_down(size),
                            pfn: leaf.pfn,
                            size,
                            perms: leaf.perms,
                            accessed: leaf.accessed,
                            dirty: leaf.dirty,
                        }),
                        pte_reads,
                        pte_writes,
                        line_translations,
                    };
                }
            }
        }
        unreachable!("walk descended past level 0");
    }

    /// Builds the page-fault result. Faults leave the replay loop for the
    /// OS fault handler, so this constructor is off the hot path.
    #[cold]
    fn fault(pte_reads: Vec<PhysAddr>, pte_writes: Vec<PhysAddr>) -> WalkResult {
        WalkResult {
            translation: None,
            pte_reads,
            pte_writes,
            line_translations: Vec::new(),
        }
    }

    /// Collects the leaf translations in the 8-PTE cache line around the
    /// leaf at `(node, idx)`.
    fn line_leaves(
        pt: &PageTable,
        node: usize,
        idx: usize,
        level: u8,
        vpn: Vpn,
    ) -> Vec<Translation> {
        let line_start = idx & !7;
        let pages_per_entry = 1u64 << (9 * u64::from(level));
        // VPN of entry 0 of this node at this level's granularity.
        let node_base = vpn.align_down_pages(pages_per_entry << 9);
        let mut out = Vec::with_capacity(8);
        for i in line_start..line_start + 8 {
            if let Entry::Leaf(leaf) = &pt.nodes()[node].entries[i] {
                if let Some(size) = PageSize::from_level(level) {
                    out.push(Translation {
                        vpn: node_base.add_4k((i as u64) * pages_per_entry),
                        pfn: leaf.pfn,
                        size,
                        perms: leaf.perms,
                        accessed: leaf.accessed,
                        dirty: leaf.dirty,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::BumpFrameSource;
    use mixtlb_types::{Permissions, Pfn};

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    fn setup() -> (PageTable, BumpFrameSource) {
        let mut frames = BumpFrameSource::new(0x10_0000);
        let pt = PageTable::new(&mut frames);
        (pt, frames)
    }

    #[test]
    fn walk_depth_matches_page_size() {
        let (mut pt, mut frames) = setup();
        pt.map(
            Translation::new(Vpn::new(1), Pfn::new(10), PageSize::Size4K, rw()),
            &mut frames,
        )
        .unwrap();
        pt.map(
            Translation::new(Vpn::new(0x400), Pfn::new(0x400), PageSize::Size2M, rw()),
            &mut frames,
        )
        .unwrap();
        pt.map(
            Translation::new(
                Vpn::new(1 << 18),
                Pfn::new(1 << 18),
                PageSize::Size1G,
                rw(),
            ),
            &mut frames,
        )
        .unwrap();
        let w4k = Walker::walk(&mut pt, VirtAddr::new(0x1000), AccessKind::Load);
        assert_eq!(w4k.pte_reads.len(), 4);
        let w2m = Walker::walk(&mut pt, VirtAddr::new(0x0040_0000), AccessKind::Load);
        assert_eq!(w2m.pte_reads.len(), 3); // PML4 + PDPT + PD leaf
        let w1g = Walker::walk(&mut pt, VirtAddr::new(1 << 30), AccessKind::Load);
        assert_eq!(w1g.pte_reads.len(), 2); // PML4 + PDPT leaf
        assert_eq!(w1g.translation.unwrap().size, PageSize::Size1G);
    }

    #[test]
    fn fault_reports_partial_reads() {
        let (mut pt, _frames) = setup();
        let w = Walker::walk(&mut pt, VirtAddr::new(0x1234_5000), AccessKind::Load);
        assert!(w.is_fault());
        assert_eq!(w.pte_reads.len(), 1); // stopped at the empty PML4 slot
    }

    #[test]
    fn accessed_and_dirty_bits_follow_x86() {
        let (mut pt, mut frames) = setup();
        let mut t = Translation::new(Vpn::new(1), Pfn::new(10), PageSize::Size4K, rw());
        t.accessed = false;
        pt.map(t, &mut frames).unwrap();

        // First load sets A (one PTE write).
        let w = Walker::walk(&mut pt, VirtAddr::new(0x1000), AccessKind::Load);
        assert_eq!(w.pte_writes.len(), 1);
        assert!(w.translation.unwrap().accessed);
        // Second load writes nothing.
        let w = Walker::walk(&mut pt, VirtAddr::new(0x1000), AccessKind::Load);
        assert!(w.pte_writes.is_empty());
        assert!(!w.translation.unwrap().dirty);
        // First store sets D.
        let w = Walker::walk(&mut pt, VirtAddr::new(0x1000), AccessKind::Store);
        assert_eq!(w.pte_writes.len(), 1);
        assert!(w.translation.unwrap().dirty);
        // Second store writes nothing.
        let w = Walker::walk(&mut pt, VirtAddr::new(0x1000), AccessKind::Store);
        assert!(w.pte_writes.is_empty());
    }

    #[test]
    fn pte_addresses_lie_in_node_frames() {
        let (mut pt, mut frames) = setup();
        pt.map(
            Translation::new(Vpn::new(0), Pfn::new(10), PageSize::Size4K, rw()),
            &mut frames,
        )
        .unwrap();
        let w = Walker::walk(&mut pt, VirtAddr::new(0), AccessKind::Load);
        let node_pfns: Vec<u64> = pt.nodes().iter().map(|n| n.pfn.raw()).collect();
        for pa in &w.pte_reads {
            assert!(node_pfns.contains(&pa.pfn().raw()));
        }
        // VPN 0 uses index 0 at every level: each PTE is at frame offset 0.
        assert!(w.pte_reads.iter().all(|pa| pa.raw() % 4096 == 0));
    }

    #[test]
    fn line_translations_expose_contiguous_superpage_neighbours() {
        let (mut pt, mut frames) = setup();
        // Map 4 contiguous 2 MB pages: PD indices 2-5 share a cache line
        // (indices 0-7).
        for i in 2..6u64 {
            pt.map(
                Translation::new(
                    Vpn::new(i * 512),
                    Pfn::new(0x1000 + i * 512),
                    PageSize::Size2M,
                    rw(),
                ),
                &mut frames,
            )
            .unwrap();
        }
        let w = Walker::walk(&mut pt, VirtAddr::new(3 * 512 * 4096), AccessKind::Load);
        let line = w.line_translations;
        assert_eq!(line.len(), 4);
        assert_eq!(line[0].vpn, Vpn::new(2 * 512));
        assert_eq!(line[3].vpn, Vpn::new(5 * 512));
        // Ascending and mutually contiguous.
        for pair in line.windows(2) {
            assert!(pair[0].is_coalescible_successor(&pair[1]));
        }
    }

    #[test]
    fn line_translations_split_at_cache_line_boundaries() {
        let (mut pt, mut frames) = setup();
        // PD indices 7 and 8 are adjacent but in different cache lines.
        for i in [7u64, 8] {
            pt.map(
                Translation::new(Vpn::new(i * 512), Pfn::new(i * 512), PageSize::Size2M, rw()),
                &mut frames,
            )
            .unwrap();
        }
        let w = Walker::walk(&mut pt, VirtAddr::new(7 * 512 * 4096), AccessKind::Load);
        assert_eq!(w.line_translations.len(), 1);
        let w = Walker::walk(&mut pt, VirtAddr::new(8 * 512 * 4096), AccessKind::Load);
        assert_eq!(w.line_translations.len(), 1);
    }

    #[test]
    fn line_translations_for_4k_pages() {
        let (mut pt, mut frames) = setup();
        for i in 0..8u64 {
            pt.map(
                Translation::new(Vpn::new(i), Pfn::new(100 + i), PageSize::Size4K, rw()),
                &mut frames,
            )
            .unwrap();
        }
        let w = Walker::walk(&mut pt, VirtAddr::new(0), AccessKind::Load);
        assert_eq!(w.line_translations.len(), 8);
        assert_eq!(w.line_translations[7].vpn, Vpn::new(7));
    }
}
