//! The 4-level x86-64 radix page table.

use std::fmt;

use mixtlb_types::{PageSize, Permissions, Pfn, Translation, Vpn};

/// A source of physical frames for page-table pages.
///
/// Implemented by the OS memory manager; [`BumpFrameSource`] is a trivial
/// implementation for tests and examples.
pub trait FrameSource {
    /// Allocates one 4 KB frame to hold a page-table node.
    fn alloc_page_table_frame(&mut self) -> Pfn;
}

/// A [`FrameSource`] that hands out frames from a monotonically increasing
/// counter. Useful when no full physical-memory model is needed.
///
/// # Examples
///
/// ```
/// use mixtlb_pagetable::{BumpFrameSource, FrameSource};
///
/// let mut src = BumpFrameSource::new(100);
/// assert_eq!(src.alloc_page_table_frame().raw(), 100);
/// assert_eq!(src.alloc_page_table_frame().raw(), 101);
/// ```
#[derive(Debug, Clone)]
pub struct BumpFrameSource {
    next: u64,
}

impl BumpFrameSource {
    /// Creates a source whose first frame is `first`.
    pub fn new(first: u64) -> BumpFrameSource {
        BumpFrameSource { next: first }
    }
}

impl FrameSource for BumpFrameSource {
    fn alloc_page_table_frame(&mut self) -> Pfn {
        let pfn = Pfn::new(self.next);
        self.next += 1;
        pfn
    }
}

impl<T: FrameSource + ?Sized> FrameSource for &mut T {
    fn alloc_page_table_frame(&mut self) -> Pfn {
        (**self).alloc_page_table_frame()
    }
}

/// Errors from mapping and unmapping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The exact slot already holds a mapping.
    AlreadyMapped,
    /// An existing larger mapping covers the requested range.
    Shadowed,
    /// Smaller mappings (a child table) occupy the requested range.
    Obstructed,
    /// No mapping exists at the given page.
    NotMapped,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::AlreadyMapped => write!(f, "page is already mapped"),
            MapError::Shadowed => write!(f, "range is covered by an existing larger mapping"),
            MapError::Obstructed => write!(f, "range contains existing smaller mappings"),
            MapError::NotMapped => write!(f, "page is not mapped"),
        }
    }
}

impl std::error::Error for MapError {}

/// Leaf PTE payload.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LeafData {
    pub pfn: Pfn,
    pub perms: Permissions,
    pub accessed: bool,
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Entry {
    Empty,
    Table(usize),
    Leaf(LeafData),
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Physical frame holding this node's 512 8-byte PTEs.
    pub pfn: Pfn,
    pub entries: Vec<Entry>,
}

impl Node {
    fn new(pfn: Pfn) -> Node {
        Node {
            pfn,
            entries: vec![Entry::Empty; 512],
        }
    }
}

/// A 4-level x86-64 page table mapping 4 KB, 2 MB, and 1 GB pages.
///
/// Levels are numbered 3 (PML4, the root) down to 0 (PT). Leaves live at
/// level 0 (4 KB), level 1 (2 MB), or level 2 (1 GB).
///
/// # Examples
///
/// ```
/// use mixtlb_pagetable::{BumpFrameSource, PageTable};
/// use mixtlb_types::{PageSize, Permissions, Pfn, Translation, Vpn};
///
/// let mut frames = BumpFrameSource::new(0);
/// let mut pt = PageTable::new(&mut frames);
/// let t = Translation::new(Vpn::new(5), Pfn::new(9), PageSize::Size4K, Permissions::rw_user());
/// pt.map(t, &mut frames)?;
/// assert_eq!(pt.lookup(Vpn::new(5)), Some(t));
/// assert_eq!(pt.lookup(Vpn::new(6)), None);
/// # Ok::<(), mixtlb_pagetable::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    nodes: Vec<Node>,
    mapped_4k: u64,
    mapped_2m: u64,
    mapped_1g: u64,
}

impl PageTable {
    const ROOT: usize = 0;

    /// Creates an empty page table, allocating the root node's frame.
    pub fn new<F: FrameSource>(frames: &mut F) -> PageTable {
        let root_pfn = frames.alloc_page_table_frame();
        PageTable {
            nodes: vec![Node::new(root_pfn)],
            mapped_4k: 0,
            mapped_2m: 0,
            mapped_1g: 0,
        }
    }

    /// The leaf level (0-2) for a page size.
    #[inline]
    pub(crate) fn leaf_level(size: PageSize) -> u8 {
        match size {
            PageSize::Size4K => 0,
            PageSize::Size2M => 1,
            PageSize::Size1G => 2,
        }
    }

    /// Index of `vpn` within a node at `level`.
    #[inline]
    pub(crate) fn index_at(vpn: Vpn, level: u8) -> usize {
        vpn.table_index(level)
    }

    /// Installs a mapping.
    ///
    /// # Errors
    ///
    /// [`MapError::AlreadyMapped`] if the leaf slot is taken;
    /// [`MapError::Shadowed`] if a larger mapping covers the range;
    /// [`MapError::Obstructed`] if smaller mappings exist inside the range.
    pub fn map<F: FrameSource>(&mut self, t: Translation, frames: &mut F) -> Result<(), MapError> {
        let leaf_level = Self::leaf_level(t.size);
        let mut node = Self::ROOT;
        for level in (leaf_level + 1..=3).rev() {
            let idx = Self::index_at(t.vpn, level);
            match self.nodes[node].entries[idx] {
                Entry::Table(child) => node = child,
                Entry::Leaf(_) => return Err(MapError::Shadowed),
                Entry::Empty => {
                    let child = self.nodes.len();
                    let pfn = frames.alloc_page_table_frame();
                    self.nodes.push(Node::new(pfn));
                    self.nodes[node].entries[idx] = Entry::Table(child);
                    node = child;
                }
            }
        }
        let idx = Self::index_at(t.vpn, leaf_level);
        match self.nodes[node].entries[idx] {
            Entry::Empty => {
                self.nodes[node].entries[idx] = Entry::Leaf(LeafData {
                    pfn: t.pfn,
                    perms: t.perms,
                    accessed: t.accessed,
                    dirty: t.dirty,
                });
                match t.size {
                    PageSize::Size4K => self.mapped_4k += 1,
                    PageSize::Size2M => self.mapped_2m += 1,
                    PageSize::Size1G => self.mapped_1g += 1,
                }
                Ok(())
            }
            Entry::Leaf(_) => Err(MapError::AlreadyMapped),
            Entry::Table(_) => Err(MapError::Obstructed),
        }
    }

    /// Removes the mapping of the given size at `vpn` and returns it.
    ///
    /// Child tables left empty by the removal are pruned from their
    /// parents (so a later map of a larger page at the same address
    /// succeeds, as after a real `munmap`). The pruned nodes' arena slots
    /// and frames are not recycled — a simulator simplification; tables
    /// are rebuilt per experiment.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no mapping of that size exists at `vpn`.
    pub fn unmap(&mut self, vpn: Vpn, size: PageSize) -> Result<Translation, MapError> {
        let leaf_level = Self::leaf_level(size);
        let mut node = Self::ROOT;
        // (parent node, entry index within it) for each descent step.
        let mut path: Vec<(usize, usize)> = Vec::with_capacity(3);
        for level in (leaf_level + 1..=3).rev() {
            let idx = Self::index_at(vpn, level);
            match self.nodes[node].entries[idx] {
                Entry::Table(child) => {
                    path.push((node, idx));
                    node = child;
                }
                _ => return Err(MapError::NotMapped),
            }
        }
        let idx = Self::index_at(vpn, leaf_level);
        match self.nodes[node].entries[idx] {
            Entry::Leaf(leaf) => {
                self.nodes[node].entries[idx] = Entry::Empty;
                match size {
                    PageSize::Size4K => self.mapped_4k -= 1,
                    PageSize::Size2M => self.mapped_2m -= 1,
                    PageSize::Size1G => self.mapped_1g -= 1,
                }
                // Prune now-empty tables bottom-up.
                let mut child = node;
                for (parent, entry_idx) in path.into_iter().rev() {
                    let empty = self.nodes[child]
                        .entries
                        .iter()
                        .all(|e| matches!(e, Entry::Empty));
                    if !empty {
                        break;
                    }
                    self.nodes[parent].entries[entry_idx] = Entry::Empty;
                    child = parent;
                }
                Ok(Translation {
                    vpn: vpn.align_down(size),
                    pfn: leaf.pfn,
                    size,
                    perms: leaf.perms,
                    accessed: leaf.accessed,
                    dirty: leaf.dirty,
                })
            }
            _ => Err(MapError::NotMapped),
        }
    }

    /// Looks up the mapping covering a 4 KB virtual page, without touching
    /// accessed/dirty bits (a software walk).
    pub fn lookup(&self, vpn: Vpn) -> Option<Translation> {
        let mut node = Self::ROOT;
        for level in (0..=3u8).rev() {
            let idx = Self::index_at(vpn, level);
            match &self.nodes[node].entries[idx] {
                Entry::Table(child) => node = *child,
                Entry::Leaf(leaf) => {
                    let size = PageSize::from_level(level)?;
                    return Some(Translation {
                        vpn: vpn.align_down(size),
                        pfn: leaf.pfn,
                        size,
                        perms: leaf.perms,
                        accessed: leaf.accessed,
                        dirty: leaf.dirty,
                    });
                }
                Entry::Empty => return None,
            }
        }
        None
    }

    /// Number of mappings of each size: `(4 KB, 2 MB, 1 GB)`.
    pub fn mapped_counts(&self) -> (u64, u64, u64) {
        (self.mapped_4k, self.mapped_2m, self.mapped_1g)
    }

    /// Number of page-table nodes (frames) in use.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Visits every leaf mapping in ascending virtual-address order.
    ///
    /// Streaming, so it works for tables with tens of millions of leaves.
    pub fn for_each_leaf<F: FnMut(&Translation)>(&self, mut f: F) {
        self.visit(Self::ROOT, 3, 0, &mut f);
    }

    fn visit<F: FnMut(&Translation)>(&self, node: usize, level: u8, base_vpn: u64, f: &mut F) {
        for (idx, entry) in self.nodes[node].entries.iter().enumerate() {
            let vpn = base_vpn + ((idx as u64) << (9 * u64::from(level)));
            match entry {
                Entry::Empty => {}
                Entry::Table(child) => self.visit(*child, level - 1, vpn, f),
                Entry::Leaf(leaf) => {
                    if let Some(size) = PageSize::from_level(level) {
                        f(&Translation {
                            vpn: Vpn::new(vpn),
                            pfn: leaf.pfn,
                            size,
                            perms: leaf.perms,
                            accessed: leaf.accessed,
                            dirty: leaf.dirty,
                        });
                    }
                }
            }
        }
    }

    /// Rewrites the physical frame of an existing mapping (used when
    /// compaction migrates a page).
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if no mapping of that size exists at `vpn`.
    pub fn remap(&mut self, vpn: Vpn, size: PageSize, new_pfn: Pfn) -> Result<(), MapError> {
        let leaf_level = Self::leaf_level(size);
        let mut node = Self::ROOT;
        for level in (leaf_level + 1..=3).rev() {
            let idx = Self::index_at(vpn, level);
            match self.nodes[node].entries[idx] {
                Entry::Table(child) => node = child,
                _ => return Err(MapError::NotMapped),
            }
        }
        let idx = Self::index_at(vpn, leaf_level);
        match &mut self.nodes[node].entries[idx] {
            Entry::Leaf(leaf) => {
                leaf.pfn = new_pfn;
                Ok(())
            }
            _ => Err(MapError::NotMapped),
        }
    }

    /// Sets the dirty bit of the mapping covering `vpn` (the effect of the
    /// hardware dirty-bit update micro-op, paper Sec. 4.4). Returns the
    /// physical address of the PTE written, or `None` if the bit was
    /// already set or the page is unmapped.
    pub fn set_dirty(&mut self, vpn: Vpn) -> Option<mixtlb_types::PhysAddr> {
        let mut node = Self::ROOT;
        for level in (0..=3u8).rev() {
            let idx = Self::index_at(vpn, level);
            let pte_addr = mixtlb_types::PhysAddr::pte_address(self.nodes[node].pfn, idx);
            match &mut self.nodes[node].entries[idx] {
                Entry::Table(child) => node = *child,
                Entry::Leaf(leaf) => {
                    if leaf.dirty {
                        return None;
                    }
                    leaf.dirty = true;
                    return Some(pte_addr);
                }
                Entry::Empty => return None,
            }
        }
        None
    }

    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub(crate) fn node_entry_mut(&mut self, node: usize, idx: usize) -> &mut Entry {
        &mut self.nodes[node].entries[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw() -> Permissions {
        Permissions::rw_user()
    }

    fn table() -> (PageTable, BumpFrameSource) {
        let mut frames = BumpFrameSource::new(0x100000);
        let pt = PageTable::new(&mut frames);
        (pt, frames)
    }

    #[test]
    fn map_lookup_roundtrip_all_sizes() {
        let (mut pt, mut frames) = table();
        let cases = [
            Translation::new(Vpn::new(7), Pfn::new(1000), PageSize::Size4K, rw()),
            Translation::new(Vpn::new(0x400), Pfn::new(0x4000), PageSize::Size2M, rw()),
            Translation::new(
                Vpn::new(1 << 18),
                Pfn::new(2 << 18),
                PageSize::Size1G,
                rw(),
            ),
        ];
        for t in cases {
            pt.map(t, &mut frames).unwrap();
        }
        assert_eq!(pt.lookup(Vpn::new(7)).unwrap().size, PageSize::Size4K);
        // Interior page of a 2 MB mapping resolves to the superpage.
        let hit = pt.lookup(Vpn::new(0x400 + 13)).unwrap();
        assert_eq!(hit.size, PageSize::Size2M);
        assert_eq!(hit.vpn, Vpn::new(0x400));
        assert_eq!(hit.frame_for(Vpn::new(0x400 + 13)), Some(Pfn::new(0x4000 + 13)));
        let g = pt.lookup(Vpn::new((1 << 18) + 99_999)).unwrap();
        assert_eq!(g.size, PageSize::Size1G);
        assert_eq!(pt.mapped_counts(), (1, 1, 1));
    }

    #[test]
    fn conflicting_maps_are_rejected() {
        let (mut pt, mut frames) = table();
        let small = Translation::new(Vpn::new(0x400), Pfn::new(1), PageSize::Size4K, rw());
        let big = Translation::new(Vpn::new(0x400), Pfn::new(0x200), PageSize::Size2M, rw());
        pt.map(small, &mut frames).unwrap();
        // Superpage over existing small page: the PD slot holds a table.
        assert_eq!(pt.map(big, &mut frames), Err(MapError::Obstructed));
        // Small page under an existing superpage.
        let (mut pt2, mut frames2) = table();
        pt2.map(big, &mut frames2).unwrap();
        assert_eq!(pt2.map(small, &mut frames2), Err(MapError::Shadowed));
        // Exact duplicate.
        assert_eq!(pt2.map(big, &mut frames2), Err(MapError::AlreadyMapped));
    }

    #[test]
    fn unmap_removes_and_returns_mapping() {
        let (mut pt, mut frames) = table();
        let t = Translation::new(Vpn::new(0x400), Pfn::new(0x200), PageSize::Size2M, rw());
        pt.map(t, &mut frames).unwrap();
        let removed = pt.unmap(Vpn::new(0x400), PageSize::Size2M).unwrap();
        assert_eq!(removed.pfn, t.pfn);
        assert_eq!(pt.lookup(Vpn::new(0x400)), None);
        assert_eq!(
            pt.unmap(Vpn::new(0x400), PageSize::Size2M),
            Err(MapError::NotMapped)
        );
        assert_eq!(pt.mapped_counts(), (0, 0, 0));
    }

    #[test]
    fn remap_changes_frame_in_place() {
        let (mut pt, mut frames) = table();
        let t = Translation::new(Vpn::new(9), Pfn::new(1), PageSize::Size4K, rw());
        pt.map(t, &mut frames).unwrap();
        pt.remap(Vpn::new(9), PageSize::Size4K, Pfn::new(77)).unwrap();
        assert_eq!(pt.lookup(Vpn::new(9)).unwrap().pfn, Pfn::new(77));
        assert_eq!(
            pt.remap(Vpn::new(10), PageSize::Size4K, Pfn::new(1)),
            Err(MapError::NotMapped)
        );
    }

    #[test]
    fn for_each_leaf_visits_in_va_order() {
        let (mut pt, mut frames) = table();
        let ts = [
            Translation::new(Vpn::new(0x600), Pfn::new(0x200), PageSize::Size2M, rw()),
            Translation::new(Vpn::new(3), Pfn::new(30), PageSize::Size4K, rw()),
            Translation::new(Vpn::new(0x400), Pfn::new(0), PageSize::Size2M, rw()),
        ];
        for t in ts {
            pt.map(t, &mut frames).unwrap();
        }
        let mut seen = Vec::new();
        pt.for_each_leaf(|t| seen.push(t.vpn));
        assert_eq!(seen, vec![Vpn::new(3), Vpn::new(0x400), Vpn::new(0x600)]);
    }

    #[test]
    fn set_dirty_writes_once() {
        let (mut pt, mut frames) = table();
        pt.map(
            Translation::new(Vpn::new(0x400), Pfn::new(0x200), PageSize::Size2M, rw()),
            &mut frames,
        )
        .unwrap();
        let pa = pt.set_dirty(Vpn::new(0x450)).expect("first set_dirty writes");
        // The PTE lives inside one of the table's node frames.
        assert!(pt.nodes().iter().any(|n| n.pfn == pa.pfn()));
        assert!(pt.lookup(Vpn::new(0x400)).unwrap().dirty);
        assert_eq!(pt.set_dirty(Vpn::new(0x450)), None);
        assert_eq!(pt.set_dirty(Vpn::new(0x999_999)), None);
    }

    #[test]
    fn nodes_get_distinct_frames() {
        let (mut pt, mut frames) = table();
        pt.map(
            Translation::new(Vpn::new(0), Pfn::new(0), PageSize::Size4K, rw()),
            &mut frames,
        )
        .unwrap();
        // Root + PDPT + PD + PT = 4 nodes.
        assert_eq!(pt.node_count(), 4);
        let mut pfns: Vec<u64> = pt.nodes().iter().map(|n| n.pfn.raw()).collect();
        pfns.sort_unstable();
        pfns.dedup();
        assert_eq!(pfns.len(), 4);
    }
}
