//! x86-64 page tables, the hardware page-table walker, and nested (2-D)
//! walks for virtualized systems.
//!
//! Three design points matter for the MIX TLB paper:
//!
//! * **Page-table pages live at real physical addresses.** Every node is
//!   backed by a frame from a [`FrameSource`], so a walk produces the exact
//!   physical addresses of the PTEs it reads — the references the cache
//!   hierarchy (and the energy model) see.
//! * **Walks return the leaf PTE's cache line.** A 64-byte line holds 8
//!   PTEs; the walker reports all leaf translations co-resident with the
//!   requested one ([`WalkResult::line_translations`]). This is the window
//!   MIX TLB fill-time coalescing logic scans for contiguous superpages
//!   (paper Fig. 3, step 2).
//! * **Accessed/dirty semantics follow x86** (paper Sec. 4.4): the walker
//!   sets the accessed bit on every fill path, and a store through a clean
//!   translation triggers an extra PTE write (a dirty-bit update micro-op).
//!
//! # Examples
//!
//! ```
//! use mixtlb_pagetable::{BumpFrameSource, PageTable, Walker};
//! use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, VirtAddr, Vpn};
//!
//! let mut frames = BumpFrameSource::new(0x10_0000);
//! let mut pt = PageTable::new(&mut frames);
//! pt.map(
//!     Translation::new(Vpn::new(0x400), Pfn::new(0), PageSize::Size2M, Permissions::rw_user()),
//!     &mut frames,
//! )?;
//! let walk = Walker::walk(&mut pt, VirtAddr::new(0x0040_0123), AccessKind::Load);
//! assert_eq!(walk.translation.unwrap().size, PageSize::Size2M);
//! assert_eq!(walk.pte_reads.len(), 3); // PML4 + PDPT + PD (2 MB leaf)
//! # Ok::<(), mixtlb_pagetable::MapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nested;
mod table;
mod walker;

pub use nested::{NestedTranslationCache, NestedWalkResult, NestedWalker, NoNestedCache};
pub use table::{BumpFrameSource, FrameSource, MapError, PageTable};
pub use walker::{WalkResult, Walker};
