//! The multi-level cache hierarchy.

use mixtlb_types::PhysAddr;

use crate::level::{CacheConfig, CacheLevel};

/// Configuration of a whole hierarchy plus the DRAM latency behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Cache levels, innermost (L1D) first.
    pub levels: Vec<CacheConfig>,
    /// Latency of a DRAM access when every level misses.
    pub dram_cycles: u64,
}

impl HierarchyConfig {
    /// The paper's Haswell evaluation machine: 32 KB 8-way L1D (4 cycles),
    /// 256 KB 8-way L2 (12 cycles), 24 MB 16-way LLC (42 cycles), and
    /// ~200-cycle DRAM.
    pub fn haswell() -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![
                CacheConfig {
                    capacity_bytes: 32 << 10,
                    ways: 8,
                    line_bytes: 64,
                    hit_cycles: 4,
                },
                CacheConfig {
                    capacity_bytes: 256 << 10,
                    ways: 8,
                    line_bytes: 64,
                    hit_cycles: 12,
                },
                CacheConfig {
                    capacity_bytes: 24 << 20,
                    ways: 16,
                    line_bytes: 64,
                    hit_cycles: 42,
                },
            ],
            dram_cycles: 200,
        }
    }

    /// A small hierarchy for unit tests and quick examples.
    pub fn tiny() -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![
                CacheConfig {
                    capacity_bytes: 1 << 10,
                    ways: 2,
                    line_bytes: 64,
                    hit_cycles: 2,
                },
                CacheConfig {
                    capacity_bytes: 8 << 10,
                    ways: 4,
                    line_bytes: 64,
                    hit_cycles: 10,
                },
            ],
            dram_cycles: 100,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::haswell()
    }
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Index of the level that hit (0 = L1D), or `None` on a DRAM access.
    pub level_hit: Option<usize>,
    /// `true` when the access went all the way to DRAM.
    pub dram: bool,
    /// Total latency in cycles (sum of the miss path).
    pub cycles: u64,
}

/// Per-level and DRAM access statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// `(hits, misses)` per level, innermost first.
    pub levels: Vec<(u64, u64)>,
    /// Number of DRAM accesses.
    pub dram_accesses: u64,
    /// Total cycles spent across all accesses.
    pub total_cycles: u64,
}

/// A functional cache hierarchy: accesses walk outward level by level,
/// filling every missed level on the way back (inclusive behaviour).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    dram_cycles: u64,
    dram_accesses: u64,
    total_cycles: u64,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.levels` is empty.
    pub fn new(config: HierarchyConfig) -> CacheHierarchy {
        assert!(!config.levels.is_empty(), "hierarchy needs at least one level");
        CacheHierarchy {
            levels: config.levels.into_iter().map(CacheLevel::new).collect(),
            dram_cycles: config.dram_cycles,
            dram_accesses: 0,
            total_cycles: 0,
        }
    }

    /// Accesses a physical address, returning where it hit and the latency.
    pub fn access(&mut self, pa: PhysAddr) -> AccessResult {
        let mut cycles = 0;
        let mut level_hit = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            cycles += level.config().hit_cycles;
            if level.access(pa) {
                level_hit = Some(i);
                break;
            }
        }
        let dram = level_hit.is_none();
        if dram {
            cycles += self.dram_cycles;
            self.dram_accesses += 1;
        }
        self.total_cycles += cycles;
        AccessResult {
            level_hit,
            dram,
            cycles,
        }
    }

    /// Latency an access to this address *would* incur, without touching
    /// cache state. Useful for cost estimation.
    pub fn peek_latency(&self, pa: PhysAddr) -> u64 {
        let mut cycles = 0;
        for level in &self.levels {
            cycles += level.config().hit_cycles;
            if level.probe(pa) {
                return cycles;
            }
        }
        cycles + self.dram_cycles
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            levels: self.levels.iter().map(|l| l.stats()).collect(),
            dram_accesses: self.dram_accesses,
            total_cycles: self.total_cycles,
        }
    }

    /// Flushes every level (statistics are preserved).
    pub fn flush(&mut self) {
        for level in &mut self.levels {
            level.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_reaches_dram_and_fills_all_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        let r = h.access(PhysAddr::new(0x4000));
        assert!(r.dram);
        assert_eq!(r.cycles, 2 + 10 + 100);
        let r = h.access(PhysAddr::new(0x4000));
        assert_eq!(r.level_hit, Some(0));
        assert_eq!(r.cycles, 2);
    }

    #[test]
    fn l2_backs_up_l1_evictions() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        h.access(PhysAddr::new(0));
        // Evict line 0 from the tiny L1 (8 sets x 2 ways): lines 8 and 16
        // share set 0 with line 0.
        h.access(PhysAddr::new(8 * 64));
        h.access(PhysAddr::new(16 * 64));
        let r = h.access(PhysAddr::new(0));
        assert_eq!(r.level_hit, Some(1));
        assert_eq!(r.cycles, 2 + 10);
    }

    #[test]
    fn peek_latency_matches_access_without_mutation() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        assert_eq!(h.peek_latency(PhysAddr::new(0)), 112);
        h.access(PhysAddr::new(0));
        assert_eq!(h.peek_latency(PhysAddr::new(0)), 2);
        // peek must not have filled anything new.
        assert_eq!(h.peek_latency(PhysAddr::new(0x9000)), 112);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        h.access(PhysAddr::new(0));
        h.access(PhysAddr::new(0));
        let s = h.stats();
        assert_eq!(s.dram_accesses, 1);
        assert_eq!(s.levels[0], (1, 1));
        assert_eq!(s.total_cycles, 112 + 2);
    }

    #[test]
    fn haswell_config_is_sane() {
        let cfg = HierarchyConfig::haswell();
        assert_eq!(cfg.levels[0].sets(), 64);
        assert_eq!(cfg.levels[2].capacity_bytes, 24 << 20);
        let _ = CacheHierarchy::new(cfg);
    }
}
