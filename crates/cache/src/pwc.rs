//! A paging-structure cache (MMU cache / page-walk cache).
//!
//! Intel and AMD cores cache upper-level page-table entries in small
//! dedicated structures so that most walks only reference memory for the
//! *leaf* PTE. The paper's Haswell baseline has these, and its analytical
//! model inherits their effect through performance-counter weighting; we
//! model them explicitly as a small fully-associative LRU over upper-level
//! PTE addresses.

use mixtlb_types::PhysAddr;

/// A fully-associative LRU cache of upper-level PTE physical addresses.
///
/// # Examples
///
/// ```
/// use mixtlb_cache::PageWalkCache;
/// use mixtlb_types::PhysAddr;
///
/// let mut pwc = PageWalkCache::new(4);
/// assert!(!pwc.access(PhysAddr::new(0x1000)));
/// assert!(pwc.access(PhysAddr::new(0x1000)));
/// ```
#[derive(Debug, Clone)]
pub struct PageWalkCache {
    entries: Vec<(u64, u64)>, // (pte address, stamp)
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PageWalkCache {
    /// Creates an empty PWC with the given entry count (Haswell-class
    /// cores hold a few tens of paging-structure entries).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> PageWalkCache {
        assert!(capacity > 0, "PWC needs at least one entry");
        PageWalkCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up (and on miss, fills) an upper-level PTE address. Returns
    /// `true` on a hit.
    pub fn access(&mut self, pte: PhysAddr) -> bool {
        self.tick += 1;
        let key = pte.raw();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() < self.capacity {
            self.entries.push((key, self.tick));
        } else {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                // lint: allow(panic) — capacity is validated > 0 at construction
                .expect("capacity > 0");
            self.entries[victim] = (key, self.tick);
        }
        false
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Empties the cache (statistics preserved).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_replacement() {
        let mut pwc = PageWalkCache::new(2);
        pwc.access(PhysAddr::new(1));
        pwc.access(PhysAddr::new(2));
        pwc.access(PhysAddr::new(1)); // refresh 1
        pwc.access(PhysAddr::new(3)); // evicts 2 (LRU)
        assert!(pwc.access(PhysAddr::new(1)), "1 was refreshed, must stay");
        assert!(pwc.access(PhysAddr::new(3)), "3 was just filled, must stay");
        assert!(!pwc.access(PhysAddr::new(2)), "2 was the LRU victim");
    }

    #[test]
    fn stats_and_flush() {
        let mut pwc = PageWalkCache::new(2);
        pwc.access(PhysAddr::new(1));
        pwc.access(PhysAddr::new(1));
        assert_eq!(pwc.stats(), (1, 1));
        pwc.flush();
        assert!(!pwc.access(PhysAddr::new(1)));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = PageWalkCache::new(0);
    }
}
