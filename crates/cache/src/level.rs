//! A single set-associative cache level.

use mixtlb_types::PhysAddr;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (64 on every machine we model).
    pub line_bytes: u64,
    /// Access latency in cycles when this level hits.
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry. Indexing is modulo, so
    /// non-power-of-two set counts (e.g. a 24 MB sliced LLC) are fine.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn sets(&self) -> u64 {
        let sets = self.capacity_bytes / (u64::from(self.ways) * self.line_bytes);
        assert!(sets > 0, "cache geometry yields zero sets");
        sets
    }
}

/// One functional set-associative cache with true-LRU replacement.
///
/// Tracks presence only (no data, no dirty writeback modeling) — exactly
/// what is needed to decide where a PTE read hits.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    config: CacheConfig,
    sets: u64,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheLevel {
    /// Creates an empty cache of the given geometry.
    pub fn new(config: CacheConfig) -> CacheLevel {
        let sets = config.sets();
        let slots = (sets * u64::from(config.ways)) as usize;
        CacheLevel {
            config,
            sets,
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Looks up a physical address, filling the line on a miss.
    /// Returns `true` on a hit.
    pub fn access(&mut self, pa: PhysAddr) -> bool {
        self.tick += 1;
        let line = pa.line_index(self.config.line_bytes);
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let slots = &mut self.tags[base..base + ways];
        if let Some(way) = slots.iter().position(|&t| t == tag) {
            self.stamps[base + way] = self.tick;
            self.hits += 1;
            return true;
        }
        // Miss: fill the LRU way.
        let victim = (0..ways)
            .min_by_key(|&w| self.stamps[base + w])
            // lint: allow(panic) — ways >= 1 by construction, the min always exists
            .expect("cache has at least one way");
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        self.misses += 1;
        false
    }

    /// Probes without modifying state. Returns `true` if present.
    pub fn probe(&self, pa: PhysAddr) -> bool {
        let line = pa.line_index(self.config.line_bytes);
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let ways = self.config.ways as usize;
        let base = set * ways;
        self.tags[base..base + ways].contains(&tag)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Empties the cache, preserving statistics.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheLevel {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        CacheLevel::new(CacheConfig {
            capacity_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_cycles: 1,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny().config().sets(), 2);
    }

    #[test]
    #[should_panic(expected = "zero sets")]
    fn bad_geometry_panics() {
        let _ = CacheLevel::new(CacheConfig {
            capacity_bytes: 32,
            ways: 1,
            line_bytes: 64,
            hit_cycles: 1,
        });
    }

    #[test]
    fn non_power_of_two_set_counts_work() {
        // 3 sets x 1 way.
        let mut c = CacheLevel::new(CacheConfig {
            capacity_bytes: 192,
            ways: 1,
            line_bytes: 64,
            hit_cycles: 1,
        });
        assert_eq!(c.config().sets(), 3);
        assert!(!c.access(PhysAddr::new(0)));
        assert!(c.access(PhysAddr::new(0)));
        assert!(!c.access(PhysAddr::new(3 * 64))); // same set, evicts
        assert!(!c.probe(PhysAddr::new(0)));
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(PhysAddr::new(0)));
        assert!(c.access(PhysAddr::new(0)));
        assert!(c.access(PhysAddr::new(63))); // same line
        assert!(!c.access(PhysAddr::new(64))); // next line, different set
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line % 2 == 0): lines 0, 2, 4.
        c.access(PhysAddr::new(0));
        c.access(PhysAddr::new(2 * 64));
        c.access(PhysAddr::new(0)); // refresh line 0
        c.access(PhysAddr::new(4 * 64)); // evicts line 2
        assert!(c.probe(PhysAddr::new(0)));
        assert!(!c.probe(PhysAddr::new(2 * 64)));
        assert!(c.probe(PhysAddr::new(4 * 64)));
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = tiny();
        c.access(PhysAddr::new(0));
        c.flush();
        assert!(!c.probe(PhysAddr::new(0)));
    }
}
