//! A thread-safe shared last-level cache for multicore simulation.
//!
//! The SMP engine gives each core a *private* L1D/L2 [`CacheHierarchy`]
//! (see [`HierarchyConfig::haswell_private`]) and routes private-side
//! misses into one [`SharedCache`] — the LLC all cores contend on, with
//! DRAM behind it. The LLC is sharded by line address (like the sliced
//! ring/mesh LLCs of real parts): each shard is an independent
//! set-associative slice behind its own lock, so cores touching different
//! slices never serialize on each other.
//!
//! Contents are a function of *which* lines were accessed, not of the
//! interleaving order of cores — only LRU decisions inside one slice are
//! order-dependent. The SMP engine therefore treats LLC latency as a
//! stall-cycle estimate; architectural state (TLBs, page tables) never
//! depends on it, which is what keeps parallel replay deterministic.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use mixtlb_cache::{SharedCache, SharedCacheConfig};
//! use mixtlb_types::PhysAddr;
//!
//! let llc = Arc::new(SharedCache::new(SharedCacheConfig::haswell_llc()));
//! let cold = llc.access(PhysAddr::new(0x1000));
//! assert!(cold.dram);
//! let warm = llc.access(PhysAddr::new(0x1000));
//! assert!(!warm.dram);
//! assert!(warm.cycles < cold.cycles);
//! ```

// The sync primitives come from mixtlb-check's facade: plain `std::sync`
// re-exports in production, instrumented schedule-point wrappers under the
// `model` feature so the bounded interleaving explorer can drive this
// module through every schedule (see crates/check).
use mixtlb_check::sync::{AtomicU64, Mutex, Ordering};

use mixtlb_types::PhysAddr;

use crate::hierarchy::HierarchyConfig;
use crate::level::{CacheConfig, CacheLevel};

/// Geometry of a [`SharedCache`]: one LLC slice repeated per shard, plus
/// the DRAM latency paid behind a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedCacheConfig {
    /// Total LLC capacity in bytes, divided evenly across shards.
    pub capacity_bytes: u64,
    /// Associativity of every shard.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Latency of an LLC hit.
    pub hit_cycles: u64,
    /// Extra latency when the LLC misses and DRAM answers.
    pub dram_cycles: u64,
    /// Number of independent slices (a power of two).
    pub shards: usize,
}

impl SharedCacheConfig {
    /// The paper's Haswell 24 MB 16-way LLC (42-cycle hit, ~200-cycle
    /// DRAM), sliced 8 ways like the ring-stop LLC of the real part.
    pub fn haswell_llc() -> SharedCacheConfig {
        SharedCacheConfig {
            capacity_bytes: 24 << 20,
            ways: 16,
            line_bytes: 64,
            hit_cycles: 42,
            dram_cycles: 200,
            shards: 8,
        }
    }

    /// A small sliced LLC for unit tests.
    pub fn tiny() -> SharedCacheConfig {
        SharedCacheConfig {
            capacity_bytes: 8 << 10,
            ways: 4,
            line_bytes: 64,
            hit_cycles: 10,
            dram_cycles: 100,
            shards: 2,
        }
    }
}

impl HierarchyConfig {
    /// The *private* portion of the paper's Haswell hierarchy — L1D and L2
    /// only, with `dram_cycles` zeroed because misses fall through to a
    /// [`SharedCache`] LLC instead of DRAM. Every core of an SMP machine
    /// owns one of these.
    pub fn haswell_private() -> HierarchyConfig {
        let mut config = HierarchyConfig::haswell();
        config.levels.truncate(2);
        config.dram_cycles = 0;
        config
    }
}

/// Outcome of one shared-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedAccess {
    /// `true` when the LLC missed and DRAM answered.
    pub dram: bool,
    /// Latency in cycles (LLC hit latency, plus DRAM on a miss).
    pub cycles: u64,
}

/// Aggregate statistics of a [`SharedCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// LLC hits across all shards.
    pub hits: u64,
    /// LLC misses (= DRAM accesses).
    pub misses: u64,
    /// Total cycles charged across all accesses.
    pub total_cycles: u64,
}

/// A sharded, lock-per-slice shared LLC. `&self` methods are thread-safe;
/// wrap it in an [`std::sync::Arc`] and clone the handle into each core's
/// worker thread.
#[derive(Debug)]
pub struct SharedCache {
    shards: Vec<Mutex<CacheLevel>>,
    shard_mask: u64,
    hit_cycles: u64,
    dram_cycles: u64,
    dram_accesses: AtomicU64,
    total_cycles: AtomicU64,
}

impl SharedCache {
    /// Builds an empty sharded LLC.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a power of two or a shard's geometry
    /// yields zero sets.
    pub fn new(config: SharedCacheConfig) -> SharedCache {
        assert!(
            config.shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        let slice = CacheConfig {
            capacity_bytes: config.capacity_bytes / config.shards as u64,
            ways: config.ways,
            line_bytes: config.line_bytes,
            hit_cycles: config.hit_cycles,
        };
        SharedCache {
            shards: (0..config.shards)
                .map(|_| Mutex::new(CacheLevel::new(slice)))
                .collect(),
            shard_mask: config.shards as u64 - 1,
            hit_cycles: config.hit_cycles,
            dram_cycles: config.dram_cycles,
            dram_accesses: AtomicU64::new(0),
            total_cycles: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, pa: PhysAddr) -> usize {
        // Slice by line number, like address-hashed LLC slices.
        let line = pa.line_index(64);
        (line & self.shard_mask) as usize
    }

    /// Accesses a physical address, filling the owning slice on a miss.
    pub fn access(&self, pa: PhysAddr) -> SharedAccess {
        let shard = &self.shards[self.shard_of(pa)];
        // A poisoned shard means another worker panicked mid-access; its
        // slice contents stay consistent (CacheLevel::access completes or
        // not at all), so recover the guard rather than cascade the panic.
        let hit = shard.lock().unwrap_or_else(|e| e.into_inner()).access(pa);
        let mut cycles = self.hit_cycles;
        if !hit {
            cycles += self.dram_cycles;
            // lint: allow(relaxed-ordering) — pure statistics counter: each
            // increment is independent, nothing reads it to make a decision,
            // and the final total is observed only after thread join (which
            // synchronizes). Only atomicity is required.
            self.dram_accesses.fetch_add(1, Ordering::Relaxed);
        }
        // lint: allow(relaxed-ordering) — same statistics-counter argument
        // as dram_accesses above: monotonic tally, read only post-join.
        self.total_cycles.fetch_add(cycles, Ordering::Relaxed);
        SharedAccess { dram: !hit, cycles }
    }

    /// Accumulated statistics across every shard.
    pub fn stats(&self) -> SharedCacheStats {
        let (mut hits, mut misses) = (0, 0);
        for shard in &self.shards {
            // Recover poisoned guards: see `access` for why this is sound.
            let (h, m) = shard.lock().unwrap_or_else(|e| e.into_inner()).stats();
            hits += h;
            misses += m;
        }
        SharedCacheStats {
            hits,
            misses,
            // lint: allow(relaxed-ordering) — statistics read; callers that
            // need an exact total call this after joining the workers, and
            // the join edge already orders every increment before the load.
            total_cycles: self.total_cycles.load(Ordering::Relaxed),
        }
    }

    /// Empties every slice (statistics are preserved).
    pub fn flush(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_after_fill_skips_dram() {
        let llc = SharedCache::new(SharedCacheConfig::tiny());
        let cold = llc.access(PhysAddr::new(0x40));
        assert!(cold.dram);
        assert_eq!(cold.cycles, 110);
        let warm = llc.access(PhysAddr::new(0x40));
        assert!(!warm.dram);
        assert_eq!(warm.cycles, 10);
        let s = llc.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.total_cycles, 120);
    }

    #[test]
    fn lines_spread_across_shards() {
        let llc = SharedCache::new(SharedCacheConfig::tiny());
        // Consecutive lines alternate between the 2 shards.
        assert_ne!(llc.shard_of(PhysAddr::new(0)), llc.shard_of(PhysAddr::new(64)));
        assert_eq!(llc.shard_of(PhysAddr::new(0)), llc.shard_of(PhysAddr::new(128)));
    }

    #[test]
    fn concurrent_access_from_many_threads() {
        let llc = Arc::new(SharedCache::new(SharedCacheConfig::tiny()));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let llc = Arc::clone(&llc);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        llc.access(PhysAddr::new((t * 256 + i) * 64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let s = llc.stats();
        assert_eq!(s.hits + s.misses, 4 * 256);
        // 4 disjoint 256-line streams overflow the 128-line LLC: all miss.
        assert_eq!(s.misses, 4 * 256);
    }

    #[test]
    fn haswell_private_has_no_llc_or_dram() {
        let cfg = HierarchyConfig::haswell_private();
        assert_eq!(cfg.levels.len(), 2);
        assert_eq!(cfg.dram_cycles, 0);
        // L1 miss + L2 miss costs only the traversal latency; the SMP
        // engine adds the SharedCache access on top.
        let mut h = crate::CacheHierarchy::new(cfg);
        let r = h.access(PhysAddr::new(0x1000));
        assert!(r.dram);
        assert_eq!(r.cycles, 4 + 12);
    }

    #[test]
    fn flush_preserves_stats() {
        let llc = SharedCache::new(SharedCacheConfig::tiny());
        llc.access(PhysAddr::new(0));
        llc.flush();
        let cold = llc.access(PhysAddr::new(0));
        assert!(cold.dram);
        assert_eq!(llc.stats().misses, 2);
    }
}
