//! A functional set-associative cache hierarchy.
//!
//! The MIX TLB paper's analytical performance model weighs TLB misses by the
//! cost of their page-table walks, and each walk's cost depends on where the
//! PTE reads land in the data-cache hierarchy (paper Sec. 6.2). This crate
//! provides that substrate: a functional (hit/miss + latency, not
//! cycle-accurate) model of the L1D/L2/LLC hierarchy of the paper's Haswell
//! evaluation machine.
//!
//! # Examples
//!
//! ```
//! use mixtlb_cache::{CacheHierarchy, HierarchyConfig};
//! use mixtlb_types::PhysAddr;
//!
//! let mut caches = CacheHierarchy::new(HierarchyConfig::haswell());
//! let cold = caches.access(PhysAddr::new(0x1000));
//! assert!(cold.dram); // first touch misses everywhere
//! let warm = caches.access(PhysAddr::new(0x1000));
//! assert_eq!(warm.level_hit, Some(0)); // now in L1
//! assert!(warm.cycles < cold.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod level;
mod pwc;
mod shared;

pub use hierarchy::{AccessResult, CacheHierarchy, HierarchyConfig, HierarchyStats};
pub use level::{CacheConfig, CacheLevel};
pub use pwc::PageWalkCache;
pub use shared::{SharedAccess, SharedCache, SharedCacheConfig, SharedCacheStats};
