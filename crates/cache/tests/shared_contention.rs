//! Contention stress for the sharded shared LLC: many OS threads hammer
//! one [`SharedCache`] with overlapping deterministic streams, and the
//! aggregate statistics must match a serial replay of the same accesses
//! on a fresh instance — the order-independence the SMP engine's
//! parallel-replay determinism rests on (the bounded model checker
//! proves the same property exhaustively at small scale; this test
//! batters it at native-thread scale).

use std::sync::Arc;

use mixtlb_cache::{SharedCache, SharedCacheConfig, SharedCacheStats};
use mixtlb_types::PhysAddr;

/// The deterministic access stream of one worker: walks `lines` line
/// addresses starting at an offset, `rounds` times, so every line is
/// touched by every thread and threads collide on shards constantly.
fn stream(thread: u64, threads: u64, lines: u64, rounds: u64) -> Vec<PhysAddr> {
    let mut out = Vec::new();
    for r in 0..rounds {
        for i in 0..lines {
            // Each thread starts its sweep elsewhere, so shard locks are
            // contended from the first access on.
            let line = (i + thread * lines / threads + r) % lines;
            out.push(PhysAddr::new(line * 64));
        }
    }
    out
}

fn run_parallel(config: SharedCacheConfig, threads: u64, lines: u64, rounds: u64) -> SharedCacheStats {
    let llc = Arc::new(SharedCache::new(config));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let llc = Arc::clone(&llc);
            std::thread::spawn(move || {
                for pa in stream(t, threads, lines, rounds) {
                    llc.access(pa);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    llc.stats()
}

fn run_serial(config: SharedCacheConfig, threads: u64, lines: u64, rounds: u64) -> SharedCacheStats {
    let llc = SharedCache::new(config);
    for t in 0..threads {
        for pa in stream(t, threads, lines, rounds) {
            llc.access(pa);
        }
    }
    llc.stats()
}

#[test]
fn in_capacity_contention_matches_serial_replay_exactly() {
    // 64 distinct lines fit the tiny 128-line LLC: no evictions, so hit
    // and miss totals are a pure function of the line set — every
    // interleaving, including the serial one, must agree bit-for-bit.
    let (threads, lines, rounds) = (8, 64, 16);
    let par = run_parallel(SharedCacheConfig::tiny(), threads, lines, rounds);
    let ser = run_serial(SharedCacheConfig::tiny(), threads, lines, rounds);
    assert_eq!(par, ser, "parallel and serial statistics diverged");
    assert_eq!(par.misses, lines, "each distinct line misses exactly once");
    assert_eq!(par.hits + par.misses, threads * lines * rounds);
}

#[test]
fn over_capacity_contention_conserves_accesses_and_cycles() {
    // 4096 distinct lines thrash the 128-line LLC: LRU decisions inside a
    // slice are interleaving-dependent, so exact hit counts may differ —
    // but conservation laws may not. Every access is either a hit or a
    // miss, and the cycle tally must equal the closed-form function of
    // those counts under any interleaving.
    let config = SharedCacheConfig::tiny();
    let (hit_cycles, dram_cycles) = (config.hit_cycles, config.dram_cycles);
    let (threads, lines, rounds) = (8, 4096, 4);
    let par = run_parallel(config, threads, lines, rounds);
    let total = threads * lines * rounds;
    assert_eq!(par.hits + par.misses, total);
    assert_eq!(
        par.total_cycles,
        total * hit_cycles + par.misses * dram_cycles,
        "cycle accounting must balance against the hit/miss split"
    );
    // The working set is 32x capacity: the overwhelming majority misses.
    assert!(par.misses > total * 9 / 10, "expected thrash, got {par:?}");
}

#[test]
fn flush_under_load_is_safe_and_preserves_conservation() {
    // Concurrent flushes race the access streams: contents may be emptied
    // at any point, but conservation and poisoning-freedom must hold.
    let llc = Arc::new(SharedCache::new(SharedCacheConfig::tiny()));
    let accesses = 4 * 512;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let llc = Arc::clone(&llc);
            s.spawn(move || {
                for i in 0..512u64 {
                    llc.access(PhysAddr::new(((i + t * 17) % 96) * 64));
                }
            });
        }
        let llc = Arc::clone(&llc);
        s.spawn(move || {
            for _ in 0..32 {
                llc.flush();
                std::thread::yield_now();
            }
        });
    });
    let s = llc.stats();
    assert_eq!(s.hits + s.misses, accesses);
}
