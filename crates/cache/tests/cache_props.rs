//! Property tests for the cache hierarchy: LRU behaviour matches a model,
//! inclusion-by-fill holds, and latency accounting is consistent.

use mixtlb_cache::{CacheConfig, CacheHierarchy, CacheLevel, HierarchyConfig, PageWalkCache};
use mixtlb_types::PhysAddr;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A reference fully-associative LRU of `capacity` lines.
struct ModelLru {
    lines: VecDeque<u64>,
    capacity: usize,
}

impl ModelLru {
    fn access(&mut self, line: u64) -> bool {
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.push_back(line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.pop_front();
            }
            self.lines.push_back(line);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A single-set cache is exactly a fully-associative LRU.
    #[test]
    fn single_set_cache_is_lru(
        ways in 1u32..8,
        accesses in proptest::collection::vec(0u64..32, 1..200),
    ) {
        let mut cache = CacheLevel::new(CacheConfig {
            capacity_bytes: u64::from(ways) * 64,
            ways,
            line_bytes: 64,
            hit_cycles: 1,
        });
        let mut model = ModelLru { lines: VecDeque::new(), capacity: ways as usize };
        for &line in &accesses {
            let hit = cache.access(PhysAddr::new(line * 64));
            prop_assert_eq!(hit, model.access(line), "line {}", line);
        }
    }

    /// The PWC is exactly a fully-associative LRU too.
    #[test]
    fn pwc_is_lru(
        capacity in 1usize..8,
        accesses in proptest::collection::vec(0u64..24, 1..200),
    ) {
        let mut pwc = PageWalkCache::new(capacity);
        let mut model = ModelLru { lines: VecDeque::new(), capacity };
        for &key in &accesses {
            prop_assert_eq!(pwc.access(PhysAddr::new(key * 8)), model.access(key));
        }
        let (hits, misses) = pwc.stats();
        prop_assert_eq!(hits + misses, accesses.len() as u64);
    }

    /// Hierarchy latency equals the sum of traversed levels (+ DRAM), and
    /// an immediate re-access always hits L1.
    #[test]
    fn hierarchy_latency_accounting(
        accesses in proptest::collection::vec(0u64..4096, 1..100),
    ) {
        let cfg = HierarchyConfig::tiny();
        let l1 = cfg.levels[0].hit_cycles;
        let l2 = cfg.levels[1].hit_cycles;
        let dram = cfg.dram_cycles;
        let mut h = CacheHierarchy::new(cfg);
        let mut total = 0;
        for &line in &accesses {
            let pa = PhysAddr::new(line * 64);
            let r = h.access(pa);
            let expected = match (r.level_hit, r.dram) {
                (Some(0), false) => l1,
                (Some(1), false) => l1 + l2,
                (None, true) => l1 + l2 + dram,
                other => {
                    prop_assert!(false, "impossible outcome {other:?}");
                    unreachable!()
                }
            };
            prop_assert_eq!(r.cycles, expected);
            total += expected;
            // The line is now resident in L1.
            let again = h.access(pa);
            prop_assert_eq!(again.level_hit, Some(0));
            total += l1;
        }
        prop_assert_eq!(h.stats().total_cycles, total);
    }
}
