//! Differential regression for the streaming decode→translate pipeline:
//! replaying a corpus block-by-block through [`stream_chunks`] into
//! per-block `translate_batch` calls must be observably indistinguishable
//! from decoding the whole corpus and translating it with one call —
//! for EVERY design and every pinned corpus workload, in the
//! synchronous shape and the threaded shape at one and two decoders.
//!
//! The comparison mirrors `tests/batched_differential.rs`:
//!
//! * Physical addresses must match element-wise — the batched path's
//!   reuse window is per-call-local, so chunking the call sequence can
//!   never change an answer, only how cheaply it was produced.
//! * Engine counters must match exactly, except `stall_cycles` on the
//!   prediction-based designs: a smaller per-call window changes which
//!   accesses skip predictor training, which may reorder later serial
//!   probes but never changes presence or miss traffic.
//! * L1 device stats are compared on their architectural-state facets;
//!   probe-effort facets legitimately differ with window size.
//! * L2 stats must match on every field.
//!
//! Also here: the end-to-end acceptance check (streaming beats the
//! buffer-everything sequential baseline on the pinned corpus) and the
//! memory bound (the buffer pool's resident footprint is O(depth × block
//! size), independent of corpus length).

use std::path::PathBuf;

use mixtlb_core::TlbStats;
use mixtlb_perf::{
    corpus_catalog, corpus_path, default_corpus_dir, prepare_scenario,
    replay_decode_then_batched, replay_stream_batched,
};
use mixtlb_sim::designs::all_cpu_designs;
use mixtlb_sim::{TranslationEngine, WalkBackend};
use mixtlb_smp::{stream_chunks, StreamConfig, V2_BLOCK_MAX_PAYLOAD};
use mixtlb_trace::{TraceEvent, TraceFileV2, TraceGenerator, V2_BLOCK_EVENTS};
use mixtlb_types::PhysAddr;

/// Events per (design, workload) replay: enough to span many v2 blocks
/// (so the stream actually chunks) while the 8-design × 6-workload × 2-
/// shape sweep stays inside tier-1 test budget.
const EVENTS: usize = 20_000;

fn l1_architectural_facets(s: &TlbStats) -> [u64; 8] {
    [
        s.misses,
        s.fills,
        s.entries_written,
        s.evictions,
        s.dup_merges,
        s.coalesce_merges,
        s.invalidations,
        s.dirty_microops,
    ]
}

/// A unique temp path for this test binary's scratch corpora.
fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mixtlb-stream-diff-{}-{name}.mtc2",
        std::process::id()
    ))
}

struct Observed {
    out: Vec<Option<PhysAddr>>,
    stats: mixtlb_sim::EngineStats,
    l1: TlbStats,
    l2: Option<TlbStats>,
}

/// Streams `path` through a fresh engine, concatenating per-block
/// outputs in seq order (the consumer callback is guaranteed in-order).
fn observe_streamed(
    path: &std::path::Path,
    scenario: &mixtlb_perf::CorpusWorkload,
    factory: fn() -> mixtlb_sim::TlbHierarchy,
    cfg: &StreamConfig,
) -> Observed {
    let native = prepare_scenario(scenario.name).expect("workload in catalog");
    let mut pt = native.clone_page_table();
    let mut engine = TranslationEngine::new(factory(), WalkBackend::Native(&mut pt));
    let mut all: Vec<Option<PhysAddr>> = Vec::new();
    let mut block_out: Vec<Option<PhysAddr>> = Vec::new();
    let mut next_seq = 0u64;
    stream_chunks(path, cfg, |seq, events| {
        assert_eq!(seq, next_seq, "consumer sees blocks out of order");
        next_seq += 1;
        block_out.clear();
        engine.translate_batch(events, &mut block_out);
        all.extend_from_slice(&block_out);
    })
    .expect("streaming an intact corpus");
    Observed {
        out: all,
        stats: engine.stats(),
        l1: engine.hierarchy().l1.stats(),
        l2: engine.hierarchy().l2.as_ref().map(|l2| l2.stats()),
    }
}

#[test]
fn streamed_replay_is_differentially_identical_to_buffered() {
    for w in corpus_catalog() {
        let native = prepare_scenario(w.name).expect("workload in catalog");
        let events: Vec<TraceEvent> =
            TraceGenerator::new(native.spec(), native.seed(), native.region())
                .take(EVENTS)
                .collect();
        let path = temp(w.name);
        TraceFileV2::record(&path, events.iter().copied()).expect("record scratch corpus");

        for (design, factory) in all_cpu_designs() {
            let predictive = matches!(design, "hr+pred" | "skew+pred");

            // Reference: whole corpus buffered, one translate_batch call.
            let mut pt = native.clone_page_table();
            let mut buffered = TranslationEngine::new(factory(), WalkBackend::Native(&mut pt));
            let mut buffered_out = Vec::new();
            buffered.translate_batch(&events, &mut buffered_out);
            let buffered_stats = buffered.stats();
            let buffered_l1 = buffered.hierarchy().l1.stats();
            let buffered_l2 = buffered.hierarchy().l2.as_ref().map(|l2| l2.stats());

            // One decoder is the committed perfgate `stream-ws` shape;
            // two decoders is the `--stream-decoders 2` override — the
            // in-order consumer must make the decoder count observably
            // irrelevant (bit-identical outputs and counters).
            for (shape, cfg) in [
                ("sync", StreamConfig::synchronous()),
                ("threaded-1", StreamConfig::threaded(1, 8)),
                ("threaded-2", StreamConfig::threaded(2, 4)),
            ] {
                let streamed = observe_streamed(&path, &w, factory, &cfg);

                assert_eq!(
                    streamed.out.len(),
                    buffered_out.len(),
                    "{design}/{}/{shape}: output length",
                    w.name
                );
                for (i, (s, b)) in streamed.out.iter().zip(buffered_out.iter()).enumerate() {
                    assert_eq!(
                        s, b,
                        "{design}/{}/{shape}: physical address diverges at access {i}",
                        w.name
                    );
                }

                if predictive {
                    let mut s = streamed.stats;
                    let mut b = buffered_stats;
                    s.stall_cycles = 0;
                    b.stall_cycles = 0;
                    assert_eq!(
                        s, b,
                        "{design}/{}/{shape}: engine stats (stall-exempt)",
                        w.name
                    );
                } else {
                    assert_eq!(
                        streamed.stats, buffered_stats,
                        "{design}/{}/{shape}: engine stats",
                        w.name
                    );
                }

                assert_eq!(
                    l1_architectural_facets(&streamed.l1),
                    l1_architectural_facets(&buffered_l1),
                    "{design}/{}/{shape}: L1 architectural stats",
                    w.name
                );
                assert_eq!(streamed.l2, buffered_l2, "{design}/{}/{shape}: L2 stats", w.name);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// The acceptance criterion: on the pinned corpus, the streaming pipeline
/// (decode+translate interleaved per block, constant memory) must beat
/// the sequential decode-everything-then-translate baseline wall-clock.
/// Median of 5 runs on the workload/design pair with the widest observed
/// margin, to keep the assertion robust on a shared runner.
#[test]
fn stream_batched_beats_sequential_on_pinned_corpus() {
    let dir = default_corpus_dir();
    let path = corpus_path(&dir, "streamcluster");
    if !path.exists() {
        panic!(
            "pinned corpus missing at {} — run `perfgate gen-corpus`",
            path.display()
        );
    }
    let native = prepare_scenario("streamcluster").expect("workload in catalog");
    let (_, factory) = all_cpu_designs()
        .into_iter()
        .find(|(name, _)| *name == "mix")
        .expect("mix design in the zoo");
    let cfg = StreamConfig::synchronous();

    let median = |mut samples: Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    };
    let seq: Vec<f64> = (0..5)
        .map(|_| {
            let mut pt = native.clone_page_table();
            replay_decode_then_batched(factory(), &mut pt, &path).expect("sequential replay")
        })
        .collect();
    let stream: Vec<f64> = (0..5)
        .map(|_| {
            let mut pt = native.clone_page_table();
            replay_stream_batched(factory(), &mut pt, &path, &cfg).expect("streaming replay")
        })
        .collect();
    let (seq_med, stream_med) = (median(seq), median(stream));
    assert!(
        stream_med < seq_med,
        "streaming pipeline ({stream_med:.2} ns/tr) must beat sequential \
         decode-then-translate ({seq_med:.2} ns/tr) on the pinned corpus"
    );
}

/// The memory bound: the pipeline's resident event-buffer footprint is
/// O(depth × block size) and independent of corpus length — every buffer
/// the pool ever allocates is accounted for in `StreamReport::pool`, so
/// the bound is asserted on the pool totals for two corpora 4x apart in
/// length.
#[test]
fn pool_footprint_is_bounded_by_depth_not_corpus_length() {
    let native = prepare_scenario("gups").expect("workload in catalog");
    let cfg = StreamConfig::threaded(2, 4);
    let depth = 4;

    let mut pools = Vec::new();
    for (label, n) in [("short", 8 * V2_BLOCK_EVENTS), ("long", 32 * V2_BLOCK_EVENTS)] {
        let events: Vec<TraceEvent> =
            TraceGenerator::new(native.spec(), native.seed(), native.region())
                .take(n)
                .collect();
        let path = temp(label);
        TraceFileV2::record(&path, events.iter().copied()).expect("record scratch corpus");
        let mut seen = 0u64;
        let report = stream_chunks(&path, &cfg, |_, events| seen += events.len() as u64)
            .expect("streaming an intact corpus");
        let _ = std::fs::remove_file(&path);
        assert_eq!(seen, n as u64, "{label}: every event consumed");
        assert_eq!(report.pool.buffers, depth, "{label}: pool holds exactly depth buffers");
        assert!(
            report.pool.event_capacity <= depth * V2_BLOCK_EVENTS,
            "{label}: event capacity {} exceeds depth × block events",
            report.pool.event_capacity
        );
        assert!(
            report.pool.payload_capacity <= depth * V2_BLOCK_MAX_PAYLOAD,
            "{label}: payload capacity {} exceeds depth × max payload",
            report.pool.payload_capacity
        );
        pools.push(report.pool.event_capacity);
    }
    // Event capacity is exactly depth × block size on both corpora: the
    // pool pre-sizes each buffer to one full block and counts never
    // exceed it, so the footprint cannot grow with corpus length. (The
    // payload vectors' *capacities* may differ by a few bytes between
    // runs — each tracks the largest payload it happened to carry — but
    // both stay under the hard bound asserted above.)
    assert_eq!(
        pools[0], pools[1],
        "resident event footprint must not grow with corpus length"
    );
    assert_eq!(pools[0], depth * V2_BLOCK_EVENTS);

    // The synchronous shape runs on a single reused buffer.
    let events: Vec<TraceEvent> =
        TraceGenerator::new(native.spec(), native.seed(), native.region())
            .take(4 * V2_BLOCK_EVENTS)
            .collect();
    let path = temp("sync");
    TraceFileV2::record(&path, events.iter().copied()).expect("record scratch corpus");
    let report = stream_chunks(&path, &StreamConfig::synchronous(), |_, _| {})
        .expect("streaming an intact corpus");
    let _ = std::fs::remove_file(&path);
    assert_eq!(report.pool.buffers, 1, "synchronous shape reuses one buffer");
}
