//! Golden test: the committed corpus is bit-identical to what
//! `perfgate gen-corpus` would regenerate today.
//!
//! This is the property the whole perfgate trajectory rests on — every
//! committed `BENCH_*.json` was measured against these exact bytes, so a
//! drift in the generator, the v2 encoder, or the pinned corpus config
//! silently invalidates the historical numbers. The test regenerates one
//! workload (`gups`, the least compressible stream, so it exercises the
//! widest deltas) into a scratch directory and compares it byte for byte
//! against the file in `crates/perf/corpus/`.

use mixtlb_perf::{corpus_catalog, corpus_path, default_corpus_dir, file_fingerprint, write_corpus_file};

/// The workload regenerated for the byte-level comparison.
const GOLDEN_WORKLOAD: &str = "gups";

#[test]
fn committed_corpus_file_is_byte_for_byte_reproducible() {
    let workload = corpus_catalog()
        .into_iter()
        .find(|w| w.name == GOLDEN_WORKLOAD)
        .expect("golden workload in corpus catalog");

    let mut scratch = std::env::temp_dir();
    scratch.push(format!("mixtlb-golden-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap();

    let written = write_corpus_file(&scratch, &workload).expect("regenerate golden workload");
    assert_eq!(written, workload.events, "regenerated event count");

    let regenerated = corpus_path(&scratch, GOLDEN_WORKLOAD);
    let committed = corpus_path(&default_corpus_dir(), GOLDEN_WORKLOAD);

    let fresh = std::fs::read(&regenerated).unwrap();
    let pinned = std::fs::read(&committed).unwrap_or_else(|e| {
        panic!(
            "committed corpus file {} unreadable ({e}); run `perfgate gen-corpus`",
            committed.display()
        )
    });

    assert_eq!(
        file_fingerprint(&regenerated).unwrap(),
        file_fingerprint(&committed).unwrap(),
        "regenerated {GOLDEN_WORKLOAD} corpus fingerprint diverges from the committed file — \
         generator or v2 encoder output changed; historical BENCH_*.json numbers no longer \
         describe this corpus"
    );
    assert_eq!(
        fresh, pinned,
        "regenerated {GOLDEN_WORKLOAD} corpus bytes diverge from the committed file"
    );

    let _ = std::fs::remove_file(&regenerated);
    let _ = std::fs::remove_dir(&scratch);
}

/// Every committed corpus file decodes cleanly and carries exactly the
/// event count the catalog pins, so the harness never silently replays a
/// short or damaged trace.
#[test]
fn committed_corpus_decodes_to_catalog_event_counts() {
    let dir = default_corpus_dir();
    for w in corpus_catalog() {
        let path = corpus_path(&dir, w.name);
        let events = mixtlb_perf::load_events(&path)
            .unwrap_or_else(|e| panic!("corpus file {} unreadable: {e}", path.display()));
        assert_eq!(
            events.len() as u64,
            w.events,
            "{}: committed corpus event count diverges from catalog",
            w.name
        );
    }
}
