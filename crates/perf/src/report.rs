//! `BENCH_*.json` reports and the normalized regression gate.
//!
//! A report records, for every (design, workload, path) triple, the
//! median/min nanoseconds per translation and the derived throughput,
//! plus fingerprints of the corpus files and the pinned scenario
//! configuration. The JSON is written one record per line so the
//! dependency-free reader below can parse any committed `BENCH_*.json`
//! without a JSON library.
//!
//! # Gating
//!
//! Raw throughput is machine-dependent, so the gate never compares
//! absolute numbers across reports. Instead each record is normalized to
//! the same report's scalar `split` throughput on the same workload —
//! a dimensionless "how fast is this design/path relative to the
//! baseline design on this machine" — and the gate fails when a triple's
//! normalized throughput drops by more than the tolerance (default 10%)
//! against the previous report.

use std::fmt::Write as _;

use crate::harness::Timing;

/// Which replay path a record measured.
pub const PATH_SCALAR: &str = "scalar";
/// The batched counterpart of [`PATH_SCALAR`].
pub const PATH_BATCHED: &str = "batched";
/// The work-stealing multi-core replay: the trace chunked over worker
/// threads, each driving its own engine's batched path
/// ([`crate::replay_ws`]). Records aggregate wall-clock ns per
/// translation across the whole machine. The bare name is the legacy
/// 4-core point (comparable back to `BENCH_8.json`); the scaling curve
/// appends `@<cores>` (see [`path_at_cores`]).
pub const PATH_WS_BATCHED: &str = "ws-batched";
/// The streaming decode→translate path: blocks stream straight from the
/// on-disk corpus into per-block `translate_batch` calls
/// ([`crate::replay_stream_batched`]) — end-to-end decode+translate
/// wall-clock, comparable to [`PATH_SEQ_BATCHED`].
pub const PATH_STREAM_BATCHED: &str = "stream-batched";
/// The sequential decode-then-translate baseline the streaming path is
/// measured against: decode the whole corpus into one `Vec`, then one
/// `translate_batch` call ([`crate::replay_decode_then_batched`]).
pub const PATH_SEQ_BATCHED: &str = "seq-batched";
/// The streaming work-stealing path: decode overlaps translation across
/// work-stealing worker engines ([`crate::replay_stream_ws`]). Always
/// recorded with `@<cores>` appended (see [`path_at_cores`]).
pub const PATH_STREAM_WS: &str = "stream-ws";

/// The `<base>@<cores>` spelling of a core-count scaling point —
/// `ws-batched@8`, `stream-ws@2`, … Paths are opaque strings in the
/// report schema, so scaling rows need no schema change.
pub fn path_at_cores(base: &str, cores: usize) -> String {
    format!("{base}@{cores}")
}

/// Every path the aggregate gate covers, with a noise factor scaling the
/// caller's tolerance for that path. Paths absent from one of the two
/// reports contribute no comparable triples and are skipped, so adding a
/// new path here keeps the first report that carries it gating green
/// against older baselines.
///
/// The single-thread paths gate at the caller's tolerance unchanged
/// (stream-batched and seq-batched both run the synchronous shape — one
/// thread, no scheduler exposure — their extra decode phase is
/// deterministic work, not noise). The ws-batched points run several OS
/// threads that time-slice over however many CPUs the runner exposes (a
/// 1-CPU container oversubscribes 4:1), so their aggregate wall-clock
/// carries scheduler noise the single-thread loops don't — back-to-back
/// quick measures on a shared 1-CPU runner swing the path geomean by up
/// to ~1.7x with no code change (measured). The 1.5x factor absorbs that
/// while still tripping on a whole-path collapse (>2.5x at the wide
/// shared-runner default of 40%); the factor scales with the caller's
/// tolerance, so a quiet dedicated runner at 10% gates ws-batched at a
/// tight 15%. The stream-ws points add a reader, a decoder, and a
/// distributor thread on top of the workers (8 threads over 1 CPU at the
/// widest point), so they get a 2.0x factor.
const GATED_PATHS: [(&str, f64); 11] = [
    (PATH_SCALAR, 1.0),
    (PATH_BATCHED, 1.0),
    (PATH_WS_BATCHED, 1.5),
    ("ws-batched@2", 1.5),
    ("ws-batched@4", 1.5),
    ("ws-batched@8", 1.5),
    (PATH_STREAM_BATCHED, 1.0),
    (PATH_SEQ_BATCHED, 1.0),
    ("stream-ws@2", 2.0),
    ("stream-ws@4", 2.0),
    ("stream-ws@8", 2.0),
];

/// The design whose scalar path anchors normalization.
pub const BASELINE_DESIGN: &str = "split";

/// One measurement: a design × workload × path triple.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Design name (as in `mixtlb_sim::designs::all_cpu_designs`).
    pub design: String,
    /// Corpus workload name.
    pub workload: String,
    /// `"scalar"` or `"batched"`.
    pub path: String,
    /// Events replayed per run.
    pub accesses: u64,
    /// Median ns per translation across timed runs.
    pub median_ns: f64,
    /// Fastest run's ns per translation.
    pub min_ns: f64,
}

impl BenchRecord {
    /// Builds a record from a harness [`Timing`].
    pub fn new(design: &str, workload: &str, path: &str, accesses: u64, t: Timing) -> BenchRecord {
        BenchRecord {
            design: design.to_owned(),
            workload: workload.to_owned(),
            path: path.to_owned(),
            accesses,
            median_ns: t.median_ns,
            min_ns: t.min_ns,
        }
    }

    /// Million translations per second at the median.
    pub fn maccesses_per_sec(&self) -> f64 {
        if self.median_ns <= 0.0 {
            0.0
        } else {
            1e3 / self.median_ns
        }
    }
}

/// Fingerprint of one corpus file, embedded in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusFileInfo {
    /// Workload name.
    pub workload: String,
    /// FNV-1a fingerprint of the committed `.mtc2` bytes.
    pub fingerprint: String,
    /// Event count.
    pub events: u64,
}

/// A full perfgate report — the in-memory form of one `BENCH_<pr>.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// PR number the report belongs to (the `<pr>` of `BENCH_<pr>.json`).
    pub pr: u32,
    /// Fingerprint of the pinned scenario configuration.
    pub config: String,
    /// Per-file corpus fingerprints.
    pub corpus: Vec<CorpusFileInfo>,
    /// All measurements.
    pub records: Vec<BenchRecord>,
}

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Extracts the string value of `"key": "…"` from a JSON line
/// (whitespace after the colon is tolerated).
fn json_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

/// Extracts the numeric value of `"key":…` from a JSON line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}', ']'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

impl BenchReport {
    /// Serializes the report as pretty-enough JSON: stable field order,
    /// one corpus entry and one record per line (the contract the
    /// dependency-free parser relies on).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"mixtlb-perfgate-v1\",");
        let _ = writeln!(s, "  \"pr\": {},", self.pr);
        let _ = writeln!(s, "  \"config\": \"{}\",", esc(&self.config));
        s.push_str("  \"corpus\": [\n");
        for (i, c) in self.corpus.iter().enumerate() {
            let comma = if i + 1 == self.corpus.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"corpus_workload\":\"{}\",\"fingerprint\":\"{}\",\"events\":{}}}{comma}",
                esc(&c.workload),
                esc(&c.fingerprint),
                c.events
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"design\":\"{}\",\"workload\":\"{}\",\"path\":\"{}\",\
                 \"accesses\":{},\"median_ns_per_translation\":{:.3},\
                 \"min_ns_per_translation\":{:.3},\"maccesses_per_sec\":{:.3}}}{comma}",
                esc(&r.design),
                esc(&r.workload),
                esc(&r.path),
                r.accesses,
                r.median_ns,
                r.min_ns,
                r.maccesses_per_sec()
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    /// Returns `None` if no result records can be recovered.
    pub fn parse_json(text: &str) -> Option<BenchReport> {
        let mut report = BenchReport::default();
        for line in text.lines() {
            let line = line.trim();
            if let Some(pr) = json_num(line, "pr") {
                if line.starts_with("\"pr\"") {
                    report.pr = pr as u32;
                }
            }
            if line.starts_with("\"config\"") {
                if let Some(cfg) = json_str(line, "config") {
                    report.config = cfg;
                }
            }
            if let Some(workload) = json_str(line, "corpus_workload") {
                report.corpus.push(CorpusFileInfo {
                    workload,
                    fingerprint: json_str(line, "fingerprint").unwrap_or_default(),
                    events: json_num(line, "events").unwrap_or(0.0) as u64,
                });
            }
            if let (Some(design), Some(workload), Some(path)) = (
                json_str(line, "design"),
                json_str(line, "workload"),
                json_str(line, "path"),
            ) {
                report.records.push(BenchRecord {
                    design,
                    workload,
                    path,
                    accesses: json_num(line, "accesses").unwrap_or(0.0) as u64,
                    median_ns: json_num(line, "median_ns_per_translation").unwrap_or(0.0),
                    min_ns: json_num(line, "min_ns_per_translation").unwrap_or(0.0),
                });
            }
        }
        if report.records.is_empty() {
            None
        } else {
            Some(report)
        }
    }

    /// Throughput of a triple, or `None` when absent.
    pub fn throughput(&self, design: &str, workload: &str, path: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.design == design && r.workload == workload && r.path == path)
            .map(BenchRecord::maccesses_per_sec)
    }

    /// A record's throughput normalized to this report's scalar
    /// [`BASELINE_DESIGN`] on the same workload — the machine-independent
    /// quantity the gate compares.
    pub fn normalized(&self, r: &BenchRecord) -> Option<f64> {
        let base = self.throughput(BASELINE_DESIGN, &r.workload, PATH_SCALAR)?;
        if base <= 0.0 {
            return None;
        }
        Some(r.maccesses_per_sec() / base)
    }
}

/// The outcome of gating a current report against a previous one.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Triples compared (present and normalizable in both reports).
    pub compared: usize,
    /// Human-readable descriptions of every regression beyond tolerance.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// `true` when at least one triple was compared and none regressed.
    pub fn passed(&self) -> bool {
        self.compared > 0 && self.failures.is_empty()
    }
}

/// Compares `curr` against `prev`: for every triple present in both
/// reports, the *normalized* throughput (see [`BenchReport::normalized`])
/// may not drop by more than `tolerance` (e.g. `0.10` = 10%). Baseline
/// triples (scalar `split`) are skipped — they are identically 1.0.
pub fn gate(prev: &BenchReport, curr: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome {
        compared: 0,
        failures: Vec::new(),
    };
    for r in &curr.records {
        if r.design == BASELINE_DESIGN && r.path == PATH_SCALAR {
            continue;
        }
        let Some(now) = curr.normalized(r) else { continue };
        let Some(prev_rec) = prev
            .records
            .iter()
            .find(|p| p.design == r.design && p.workload == r.workload && p.path == r.path)
        else {
            continue;
        };
        let Some(before) = prev.normalized(prev_rec) else {
            continue;
        };
        if before <= 0.0 {
            continue;
        }
        out.compared += 1;
        let drop = 1.0 - now / before;
        if drop > tolerance {
            out.failures.push(format!(
                "{}/{}/{}: normalized throughput fell {:.1}% ({:.3} -> {:.3}, tolerance {:.0}%)",
                r.design,
                r.workload,
                r.path,
                drop * 100.0,
                before,
                now,
                tolerance * 100.0
            ));
        }
    }
    out
}

/// Compares `curr` against `prev` on the *geometric mean* of normalized
/// throughput per path (`scalar`, `batched`), over the triples present in
/// both reports. This is the CI-grade variant of [`gate`]: per-triple
/// normalized throughput on a shared runner swings with per-process
/// allocation layout (measured up to ~3.5x for nanosecond-scale batched
/// loops), but a real regression — a broken probe loop, a lost batching
/// optimization — moves a whole path's mean, while independent layout
/// luck averages out across designs and workloads. Per-path geomean
/// dropping more than `tolerance` fails.
pub fn gate_aggregate(prev: &BenchReport, curr: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome {
        compared: 0,
        failures: Vec::new(),
    };
    for (path, noise) in GATED_PATHS {
        let path_tolerance = (tolerance * noise).min(0.95);
        let mut log_sum = 0.0f64;
        let mut n = 0usize;
        for r in &curr.records {
            if r.path != path || (r.design == BASELINE_DESIGN && r.path == PATH_SCALAR) {
                continue;
            }
            let Some(now) = curr.normalized(r) else { continue };
            let Some(prev_rec) = prev
                .records
                .iter()
                .find(|p| p.design == r.design && p.workload == r.workload && p.path == r.path)
            else {
                continue;
            };
            let Some(before) = prev.normalized(prev_rec) else {
                continue;
            };
            if before <= 0.0 || now <= 0.0 {
                continue;
            }
            log_sum += (now / before).ln();
            n += 1;
        }
        if n == 0 {
            continue;
        }
        out.compared += n;
        let ratio = (log_sum / n as f64).exp();
        let drop = 1.0 - ratio;
        if drop > path_tolerance {
            out.failures.push(format!(
                "{path}: geomean normalized throughput over {n} triples fell {:.1}% \
                 (ratio {ratio:.3}, tolerance {:.0}%)",
                drop * 100.0,
                path_tolerance * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(design: &str, workload: &str, path: &str, median_ns: f64) -> BenchRecord {
        BenchRecord {
            design: design.to_owned(),
            workload: workload.to_owned(),
            path: path.to_owned(),
            accesses: 1000,
            median_ns,
            min_ns: median_ns * 0.9,
        }
    }

    fn sample_report() -> BenchReport {
        BenchReport {
            pr: 6,
            config: "seed=42".to_owned(),
            corpus: vec![CorpusFileInfo {
                workload: "gups".to_owned(),
                fingerprint: "abc123".to_owned(),
                events: 1000,
            }],
            records: vec![
                record("split", "gups", PATH_SCALAR, 100.0),
                record("mix", "gups", PATH_SCALAR, 120.0),
                record("mix", "gups", PATH_BATCHED, 10.0),
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let report = sample_report();
        let parsed = BenchReport::parse_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn normalization_is_relative_to_scalar_split() {
        let report = sample_report();
        let mix_batched = &report.records[2];
        // split scalar: 10 M/s; mix batched: 100 M/s => 10x normalized.
        let n = report.normalized(mix_batched).unwrap();
        assert!((n - 10.0).abs() < 1e-9, "{n}");
    }

    #[test]
    fn gate_passes_against_itself() {
        let report = sample_report();
        let outcome = gate(&report, &report, 0.10);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(outcome.compared, 2);
    }

    #[test]
    fn gate_trips_on_a_single_design_regression() {
        let prev = sample_report();
        let mut curr = prev.clone();
        // Degrade one design's batched path by 20%: 10 ns -> 12.5 ns.
        curr.records[2].median_ns = 12.5;
        let outcome = gate(&prev, &curr, 0.10);
        assert!(!outcome.passed());
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("mix/gups/batched"));
    }

    #[test]
    fn gate_tolerates_uniform_machine_speed_changes() {
        let prev = sample_report();
        let mut curr = prev.clone();
        // A machine twice as slow scales every latency uniformly.
        for r in &mut curr.records {
            r.median_ns *= 2.0;
            r.min_ns *= 2.0;
        }
        let outcome = gate(&prev, &curr, 0.10);
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    /// A wider report for aggregate-gate tests: two workloads, two
    /// non-baseline designs, both paths.
    fn wide_report() -> BenchReport {
        let mut report = sample_report();
        report.records = Vec::new();
        for wl in ["gups", "streamcluster"] {
            report.records.push(record("split", wl, PATH_SCALAR, 100.0));
            report.records.push(record("split", wl, PATH_BATCHED, 10.0));
            report.records.push(record("mix", wl, PATH_SCALAR, 120.0));
            report.records.push(record("mix", wl, PATH_BATCHED, 12.0));
        }
        report
    }

    #[test]
    fn aggregate_gate_averages_out_independent_layout_luck() {
        let prev = wide_report();
        let mut curr = prev.clone();
        // One triple 2x slower, another 2x faster — per-triple gating at
        // any tolerance under 50% would trip; the per-path geomean is
        // unchanged and must pass.
        curr.records[1].median_ns *= 2.0; // split/gups/batched
        curr.records[7].median_ns /= 2.0; // mix/streamcluster/batched
        assert!(!gate(&prev, &curr, 0.40).passed());
        let agg = gate_aggregate(&prev, &curr, 0.10);
        assert!(agg.passed(), "{:?}", agg.failures);
    }

    /// A report introducing a brand-new path (the multi-core ws-batched
    /// point) must gate green against a baseline that predates the path:
    /// no comparable triples exist, so neither gate may fail on them —
    /// but both must still compare the shared paths.
    #[test]
    fn new_path_gates_green_against_an_older_baseline() {
        let prev = wide_report();
        let mut curr = prev.clone();
        for wl in ["gups", "streamcluster"] {
            curr.records.push(record("mix", wl, PATH_WS_BATCHED, 4.0));
            curr.records.push(record("split", wl, PATH_WS_BATCHED, 5.0));
        }
        let per_triple = gate(&prev, &curr, 0.10);
        assert!(per_triple.passed(), "{:?}", per_triple.failures);
        let agg = gate_aggregate(&prev, &curr, 0.10);
        assert!(agg.passed(), "{:?}", agg.failures);
        // Once the path exists on both sides, it is gated like any other
        // — modulo the path's 1.5x scheduler-noise factor, so a 2x
        // whole-path regression (50% drop) trips at a base tolerance of
        // 25% (effective 37.5%) but is absorbed at the 40% shared-runner
        // default (effective 60%).
        let mut regressed = curr.clone();
        for r in &mut regressed.records {
            if r.path == PATH_WS_BATCHED {
                r.median_ns *= 2.0;
            }
        }
        assert!(gate_aggregate(&curr, &regressed, 0.40).passed());
        let tripped = gate_aggregate(&curr, &regressed, 0.25);
        assert!(!tripped.passed());
        assert!(
            tripped.failures[0].starts_with("ws-batched:"),
            "{:?}",
            tripped.failures
        );
    }

    #[test]
    fn aggregate_gate_trips_on_a_whole_path_regression() {
        let prev = wide_report();
        let mut curr = prev.clone();
        // Every batched triple 2x slower: the batching optimization broke.
        for r in &mut curr.records {
            if r.path == PATH_BATCHED {
                r.median_ns *= 2.0;
            }
        }
        let agg = gate_aggregate(&prev, &curr, 0.40);
        assert!(!agg.passed());
        assert_eq!(agg.failures.len(), 1);
        assert!(agg.failures[0].starts_with("batched:"), "{:?}", agg.failures);
    }
}
