//! The pinned benchmark corpus: which workloads, how many events, and
//! under exactly which scenario configuration — everything needed to
//! regenerate the committed `.mtc2` files bit-identically.
//!
//! The corpus covers the three fig. 9 workload classes the paper sweeps
//! (Spec/PARSEC, big-memory server, GPU kernels). Each trace is produced
//! by the deterministic synthetic generators of `mixtlb-trace` against a
//! scenario prepared with [`corpus_config`], so the same seed, footprint
//! cap, and paging policy always yield the same byte stream; the golden
//! test in `crates/perf/tests/golden.rs` pins one committed file
//! byte-for-byte.

use std::io;
use std::path::{Path, PathBuf};

use mixtlb_sim::{NativeScenario, PolicyChoice, ScenarioConfig};
use mixtlb_trace::{TraceEvent, TraceFileV2, TraceGenerator, WorkloadSpec};

/// One pinned corpus trace: a catalogued workload and how many events of
/// it the corpus freezes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusWorkload {
    /// Catalog name (must resolve via [`WorkloadSpec::by_name`]).
    pub name: &'static str,
    /// Number of trace events pinned in the corpus file.
    pub events: u64,
}

/// Events pinned per corpus trace. Small enough that six compressed
/// traces commit at a few MB; long enough to warm every design's L1+L2.
const CORPUS_EVENTS: u64 = 150_000;

/// The six pinned workloads: two Spec/PARSEC (`mcf`, `streamcluster`),
/// two big-memory server (`gups`, `memcached`), and two GPU kernels
/// (`backprop`, `bfs`) — one cache-hostile and one streaming
/// representative of each fig. 9 class.
pub fn corpus_catalog() -> Vec<CorpusWorkload> {
    ["mcf", "streamcluster", "gups", "memcached", "backprop", "bfs"]
        .into_iter()
        .map(|name| CorpusWorkload {
            name,
            events: CORPUS_EVENTS,
        })
        .collect()
}

/// The pinned scenario configuration the corpus (and every perfgate
/// measurement) uses. Spelled out literally — not delegated to
/// [`ScenarioConfig::quick`] — so unrelated tuning of the quick preset
/// can never silently re-generate a different corpus.
pub fn corpus_config() -> ScenarioConfig {
    ScenarioConfig {
        mem_bytes: 512 << 20,
        memhog_fraction: 0.0,
        policy: PolicyChoice::Ths,
        footprint_cap: Some(256 << 20),
        seed: 42,
    }
}

/// A human-auditable fingerprint of [`corpus_config`], embedded in every
/// `BENCH_*.json` so a report can never be compared against measurements
/// taken under a different scenario.
pub fn config_fingerprint() -> String {
    let cfg = corpus_config();
    format!(
        "mem={};memhog={};policy={:?};cap={:?};seed={}",
        cfg.mem_bytes, cfg.memhog_fraction, cfg.policy, cfg.footprint_cap, cfg.seed
    )
}

/// The committed corpus directory (`crates/perf/corpus`).
pub fn default_corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// Path of one corpus trace inside `dir`.
pub fn corpus_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.mtc2"))
}

/// Prepares the pinned scenario for a corpus workload: OS state built,
/// footprint pre-faulted, page table ready to walk. Returns `None` when
/// the name is not in the workload catalog.
pub fn prepare_scenario(name: &str) -> Option<NativeScenario> {
    let spec = WorkloadSpec::by_name(name)?;
    Some(NativeScenario::prepare(&spec, &corpus_config()))
}

/// Generates a corpus workload's event stream from its prepared scenario.
/// Deterministic: same catalog entry, same bytes, every time.
pub fn generate_events(w: &CorpusWorkload) -> Option<(NativeScenario, Vec<TraceEvent>)> {
    let scenario = prepare_scenario(w.name)?;
    let events: Vec<TraceEvent> =
        TraceGenerator::new(scenario.spec(), scenario.seed(), scenario.region())
            .take(w.events as usize)
            .collect();
    Some((scenario, events))
}

/// Regenerates one corpus file into `dir`, returning the event count
/// written. Errors on unknown workloads or I/O failure.
pub fn write_corpus_file(dir: &Path, w: &CorpusWorkload) -> io::Result<u64> {
    let Some((_, events)) = generate_events(w) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("workload {} is not in the catalog", w.name),
        ));
    };
    TraceFileV2::record(corpus_path(dir, w.name), events)
}

/// Loads a corpus trace fully into memory (checksums verified en route).
pub fn load_events(path: &Path) -> io::Result<Vec<TraceEvent>> {
    TraceFileV2::open(path)?.collect()
}

/// FNV-1a fingerprint of a file's bytes, as fixed-width hex — the corpus
/// identity stamped into `BENCH_*.json`.
pub fn file_fingerprint(path: &Path) -> io::Result<String> {
    let bytes = std::fs::read(path)?;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok(format!("{hash:016x}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_resolve_and_classes_are_covered() {
        use mixtlb_trace::WorkloadClass;
        let mut classes = Vec::new();
        for w in corpus_catalog() {
            let spec = WorkloadSpec::by_name(w.name)
                .unwrap_or_else(|| panic!("{} missing from WorkloadSpec::catalog()", w.name));
            classes.push(spec.class);
            assert!(w.events > 0);
        }
        assert!(classes.contains(&WorkloadClass::SpecParsec));
        assert!(classes.contains(&WorkloadClass::BigMemory));
        assert!(classes.contains(&WorkloadClass::Gpu));
    }

    #[test]
    fn generation_is_deterministic() {
        let w = CorpusWorkload {
            name: "gups",
            events: 2_000,
        };
        let (_, a) = generate_events(&w).unwrap();
        let (_, b) = generate_events(&w).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_fingerprint_pins_the_scenario() {
        let f = config_fingerprint();
        assert!(f.contains("seed=42") && f.contains("policy=Ths"), "{f}");
    }
}
