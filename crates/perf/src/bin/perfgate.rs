//! perfgate — replay the pinned corpus through every design and gate
//! throughput regressions against the previously committed report.
//!
//! Each design × workload cell records, beyond the original `scalar` /
//! `batched` / `ws-batched` triple: the work-stealing scaling curve
//! `ws-batched@{2,4,8}`, the end-to-end decode+translate pair
//! `seq-batched` (buffer the whole corpus, then one `translate_batch`)
//! vs `stream-batched` (block-streamed pipeline, constant memory), and
//! the streaming work-stealing curve `stream-ws@{2,4,8}`.
//!
//! ```text
//! perfgate gen-corpus [--dir DIR]
//! perfgate measure [--out FILE] [--corpus DIR] [--pr N]
//!                  [--reps N] [--warmup N] [--quick]
//! perfgate gate --prev FILE --curr FILE [--tolerance FRAC]
//! perfgate self-test
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mixtlb_perf::{
    config_fingerprint, corpus_catalog, corpus_path, default_corpus_dir, file_fingerprint, gate,
    gate_aggregate, load_events, path_at_cores, prepare_scenario, replay_batched,
    replay_decode_then_batched, replay_scalar, replay_stream_batched, replay_stream_ws, replay_ws,
    time_reps, write_corpus_file, BenchRecord, BenchReport, CorpusFileInfo, CorpusWorkload,
    PATH_BATCHED, PATH_SCALAR, PATH_SEQ_BATCHED, PATH_STREAM_BATCHED, PATH_STREAM_WS,
    PATH_WS_BATCHED,
};
use mixtlb_sim::designs::all_cpu_designs;
use mixtlb_smp::StreamConfig;

/// Worker threads of the legacy `ws-batched` point. Pinned (not
/// host-derived) so the recorded triple means the same thing on every
/// runner; chunk size matches the bench binary's corpus replay.
const WS_CORES: usize = 4;
/// Events per stealable chunk of the ws-batched measurement.
const WS_CHUNK_EVENTS: usize = 1024;
/// Core counts of the committed scaling curves (`ws-batched@N`,
/// `stream-ws@N`).
const SCALING_CORES: [usize; 3] = [2, 4, 8];
/// Streaming shape of the `stream-batched` point: the synchronous
/// single-thread pipeline. On the pinned 1-CPU runner decode threads
/// only add hand-off and scheduling cost; the streaming win there is the
/// cache-resident per-block working set, which the synchronous shape
/// keeps while staying as deterministic as the batched loop.
fn stream_cfg() -> StreamConfig {
    StreamConfig::synchronous()
}
/// Streaming shape of the `stream-ws@N` points: `decoders` decode
/// threads over an 8-buffer pool. The default (1) is the committed
/// baseline shape — the corpus decodes faster than it translates, so
/// one decoder saturates the workers — but `measure --stream-decoders N`
/// overrides it for decode-bound experiments. The `stream-batched`
/// point always keeps the synchronous shape for comparability.
fn stream_ws_cfg(decoders: usize) -> StreamConfig {
    StreamConfig::threaded(decoders.max(1), 8)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfgate <gen-corpus [--dir DIR]\n\
         \x20               | measure [--out FILE] [--corpus DIR] [--pr N] [--reps N] [--warmup N]\n\
         \x20                         [--stream-decoders N] [--quick]\n\
         \x20               | gate --prev FILE --curr FILE [--tolerance FRAC] [--aggregate]\n\
         \x20               | self-test>"
    );
    ExitCode::from(2)
}

/// Pulls the value following `flag` out of `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen-corpus") => gen_corpus(&args[1..]),
        Some("measure") => measure(&args[1..]),
        Some("gate") => gate_cmd(&args[1..]),
        Some("self-test") => self_test(),
        _ => usage(),
    }
}

fn gen_corpus(args: &[String]) -> ExitCode {
    let dir = flag_value(args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(default_corpus_dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("perfgate: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    println!("regenerating pinned corpus into {}", dir.display());
    println!("config: {}", config_fingerprint());
    for w in corpus_catalog() {
        match write_corpus_file(&dir, &w) {
            Ok(n) => {
                let path = corpus_path(&dir, w.name);
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                let fp = file_fingerprint(&path).unwrap_or_else(|_| "?".into());
                println!("  {:<14} {n:>7} events {bytes:>8} bytes fnv1a={fp}", w.name);
            }
            Err(e) => {
                eprintln!("perfgate: generating {}: {e}", w.name);
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The workload subset and rep counts a measurement sweep uses.
struct MeasurePlan {
    workloads: Vec<CorpusWorkload>,
    warmup: usize,
    reps: usize,
    /// Decode threads of the `stream-ws@N` points (see [`stream_ws_cfg`]).
    stream_decoders: usize,
}

fn measure_plan(args: &[String]) -> MeasurePlan {
    let quick = has_flag(args, "--quick");
    let workloads: Vec<CorpusWorkload> = corpus_catalog()
        .into_iter()
        .filter(|w| !quick || w.name == "streamcluster" || w.name == "gups")
        .collect();
    let parse = |flag: &str, default: usize| {
        flag_value(args, flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    MeasurePlan {
        workloads,
        warmup: parse("--warmup", if quick { 1 } else { 2 }),
        reps: parse("--reps", if quick { 3 } else { 5 }),
        stream_decoders: parse("--stream-decoders", 1).max(1),
    }
}

fn measure(args: &[String]) -> ExitCode {
    let dir = flag_value(args, "--corpus")
        .map(PathBuf::from)
        .unwrap_or_else(default_corpus_dir);
    let out = flag_value(args, "--out").unwrap_or_else(|| "BENCH_9.json".to_owned());
    let pr: u32 = flag_value(args, "--pr")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let plan = measure_plan(args);

    let mut report = BenchReport {
        pr,
        config: config_fingerprint(),
        corpus: Vec::new(),
        records: Vec::new(),
    };

    let mut best_speedup: Option<(f64, String, String)> = None;
    for w in &plan.workloads {
        let path = corpus_path(&dir, w.name);
        let events = match load_events(&path) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!(
                    "perfgate: cannot load {} (run `perfgate gen-corpus` first?): {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let fp = match file_fingerprint(&path) {
            Ok(fp) => fp,
            Err(e) => {
                eprintln!("perfgate: fingerprinting {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        report.corpus.push(CorpusFileInfo {
            workload: w.name.to_owned(),
            fingerprint: fp,
            events: events.len() as u64,
        });
        let Some(scenario) = prepare_scenario(w.name) else {
            eprintln!("perfgate: {} is not in the workload catalog", w.name);
            return ExitCode::FAILURE;
        };
        println!("{} ({} events):", w.name, events.len());
        for (design, factory) in all_cpu_designs() {
            let run_path = |path_name: &str| -> Option<BenchRecord> {
                let timing = time_reps(plan.warmup, plan.reps, || {
                    let mut pt = scenario.clone_page_table();
                    if path_name == PATH_SCALAR {
                        replay_scalar(factory(), &mut pt, &events)
                    } else {
                        replay_batched(factory(), &mut pt, &events)
                    }
                })?;
                Some(BenchRecord::new(
                    design,
                    w.name,
                    path_name,
                    events.len() as u64,
                    timing,
                ))
            };
            let Some(scalar) = run_path(PATH_SCALAR) else {
                eprintln!("perfgate: zero reps requested");
                return ExitCode::FAILURE;
            };
            let Some(batched) = run_path(PATH_BATCHED) else {
                eprintln!("perfgate: zero reps requested");
                return ExitCode::FAILURE;
            };
            // The multi-core scaling curve: the same trace chunked over
            // work-stealing workers at each pinned core count, each worker
            // on its own engine's batched path. The 4-core point is also
            // recorded under the legacy bare name so it stays comparable
            // to reports that predate the curve.
            let ws_pt = scenario.clone_page_table();
            let mut ws_medians = Vec::new();
            for cores in SCALING_CORES {
                let Some(t) = time_reps(plan.warmup, plan.reps, || {
                    replay_ws(factory, &ws_pt, &events, cores, WS_CHUNK_EVENTS)
                }) else {
                    eprintln!("perfgate: zero reps requested");
                    return ExitCode::FAILURE;
                };
                ws_medians.push(t.median_ns);
                let accesses = events.len() as u64;
                report.records.push(BenchRecord::new(
                    design,
                    w.name,
                    &path_at_cores(PATH_WS_BATCHED, cores),
                    accesses,
                    t,
                ));
                if cores == WS_CORES {
                    report.records.push(BenchRecord::new(
                        design,
                        w.name,
                        PATH_WS_BATCHED,
                        accesses,
                        t,
                    ));
                }
            }
            // End-to-end decode+translate: the sequential buffer-the-whole-
            // corpus baseline vs the streaming pipeline, then the streaming
            // work-stealing scaling curve.
            let bail = |e: &std::io::Error| -> ExitCode {
                eprintln!("perfgate: streaming replay of {}: {e}", path.display());
                ExitCode::FAILURE
            };
            let mut stream_err: Option<std::io::Error> = None;
            let seq_timing = time_reps(plan.warmup, plan.reps, || {
                let mut pt = scenario.clone_page_table();
                replay_decode_then_batched(factory(), &mut pt, &path).unwrap_or_else(|e| {
                    stream_err = Some(e);
                    f64::NAN
                })
            });
            if let Some(e) = &stream_err {
                return bail(e);
            }
            let stream_timing = time_reps(plan.warmup, plan.reps, || {
                let mut pt = scenario.clone_page_table();
                replay_stream_batched(factory(), &mut pt, &path, &stream_cfg()).unwrap_or_else(
                    |e| {
                        stream_err = Some(e);
                        f64::NAN
                    },
                )
            });
            if let Some(e) = &stream_err {
                return bail(e);
            }
            let (Some(seq_t), Some(stream_t)) = (seq_timing, stream_timing) else {
                eprintln!("perfgate: zero reps requested");
                return ExitCode::FAILURE;
            };
            let accesses = events.len() as u64;
            report.records.push(BenchRecord::new(
                design,
                w.name,
                PATH_SEQ_BATCHED,
                accesses,
                seq_t,
            ));
            report.records.push(BenchRecord::new(
                design,
                w.name,
                PATH_STREAM_BATCHED,
                accesses,
                stream_t,
            ));
            let mut sws_medians = Vec::new();
            for cores in SCALING_CORES {
                let t = time_reps(plan.warmup, plan.reps, || {
                    replay_stream_ws(factory, &ws_pt, &path, cores, &stream_ws_cfg(plan.stream_decoders))
                        .unwrap_or_else(|e| {
                            stream_err = Some(e);
                            f64::NAN
                        })
                });
                if let Some(e) = &stream_err {
                    return bail(e);
                }
                let Some(t) = t else {
                    eprintln!("perfgate: zero reps requested");
                    return ExitCode::FAILURE;
                };
                sws_medians.push(t.median_ns);
                report.records.push(BenchRecord::new(
                    design,
                    w.name,
                    &path_at_cores(PATH_STREAM_WS, cores),
                    accesses,
                    t,
                ));
            }
            let speedup = scalar.median_ns / batched.median_ns.max(1e-9);
            let overlap = seq_t.median_ns / stream_t.median_ns.max(1e-9);
            println!(
                "  {design:<12} scalar {:>8.2}  batched {:>8.2} ({speedup:.1}x)  \
                 ws@2/4/8 {:>6.2}/{:>6.2}/{:>6.2}",
                scalar.median_ns, batched.median_ns, ws_medians[0], ws_medians[1], ws_medians[2]
            );
            println!(
                "  {:<12} seq {:>8.2}  stream {:>8.2} ({overlap:.2}x)  \
                 stream-ws@2/4/8 {:>6.2}/{:>6.2}/{:>6.2}",
                "", seq_t.median_ns, stream_t.median_ns, sws_medians[0], sws_medians[1],
                sws_medians[2]
            );
            if best_speedup.as_ref().is_none_or(|(s, _, _)| speedup > *s) {
                best_speedup = Some((speedup, design.to_owned(), w.name.to_owned()));
            }
            report.records.push(scalar);
            report.records.push(batched);
        }
    }

    if let Some((s, design, wl)) = &best_speedup {
        println!("best batched/scalar speedup: {s:.1}x ({design} on {wl})");
    }
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("perfgate: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out} ({} records)", report.records.len());
    ExitCode::SUCCESS
}

fn load_report(path: &str) -> Option<BenchReport> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfgate: reading {path}: {e}");
            return None;
        }
    };
    let parsed = BenchReport::parse_json(&text);
    if parsed.is_none() {
        eprintln!("perfgate: {path} contains no benchmark records");
    }
    parsed
}

fn gate_cmd(args: &[String]) -> ExitCode {
    let (Some(prev_path), Some(curr_path)) =
        (flag_value(args, "--prev"), flag_value(args, "--curr"))
    else {
        return usage();
    };
    let tolerance: f64 = flag_value(args, "--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10);
    let (Some(prev), Some(curr)) = (load_report(&prev_path), load_report(&curr_path)) else {
        return ExitCode::FAILURE;
    };
    // --aggregate gates per-path geomeans instead of individual triples:
    // robust to the per-process layout noise of shared runners, still
    // trips when a whole path (a lost optimization, a broken probe loop)
    // regresses. CI uses this mode.
    let aggregate = has_flag(args, "--aggregate");
    let outcome = if aggregate {
        gate_aggregate(&prev, &curr, tolerance)
    } else {
        gate(&prev, &curr, tolerance)
    };
    println!(
        "gate: {} triples compared against {} (tolerance {:.0}%{})",
        outcome.compared,
        prev_path,
        tolerance * 100.0,
        if aggregate { ", per-path geomean" } else { "" }
    );
    if outcome.passed() {
        println!("gate: PASS");
        ExitCode::SUCCESS
    } else {
        if outcome.compared == 0 {
            eprintln!("gate: FAIL — no comparable triples between the two reports");
        }
        for f in &outcome.failures {
            eprintln!("gate: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}

/// Exercises the gate logic on synthetic reports — no measurement, so it
/// is deterministic and fast enough for every CI run: a report gated
/// against itself must pass, and a single design's 20% batched
/// degradation must trip the 10% gate.
fn self_test() -> ExitCode {
    let mk = |mix_batched_ns: f64| {
        let mut report = BenchReport {
            pr: 0,
            config: config_fingerprint(),
            corpus: Vec::new(),
            records: Vec::new(),
        };
        for wl in ["streamcluster", "gups"] {
            report
                .records
                .push(synthetic_record("split", wl, PATH_SCALAR, 100.0));
            report
                .records
                .push(synthetic_record("split", wl, PATH_BATCHED, 12.0));
            report
                .records
                .push(synthetic_record("mix", wl, PATH_SCALAR, 110.0));
            report
                .records
                .push(synthetic_record("mix", wl, PATH_BATCHED, mix_batched_ns));
        }
        report
    };

    let baseline = mk(10.0);

    let roundtrip = BenchReport::parse_json(&baseline.to_json());
    if roundtrip.as_ref() != Some(&baseline) {
        eprintln!("self-test: FAIL — JSON round-trip altered the report");
        return ExitCode::FAILURE;
    }

    let same = gate(&baseline, &baseline, 0.10);
    if !same.passed() {
        eprintln!(
            "self-test: FAIL — identical reports did not pass: {:?}",
            same.failures
        );
        return ExitCode::FAILURE;
    }

    // Degrade only mix/batched by 20% (10 ns -> 12.5 ns); must trip.
    let degraded = mk(12.5);
    let tripped = gate(&baseline, &degraded, 0.10);
    if tripped.passed() || tripped.failures.len() != 2 {
        eprintln!(
            "self-test: FAIL — 20% single-design regression not caught ({:?})",
            tripped.failures
        );
        return ExitCode::FAILURE;
    }

    // A uniformly 2x slower machine must NOT trip the normalized gate.
    let mut slower = baseline.clone();
    for r in &mut slower.records {
        r.median_ns *= 2.0;
        r.min_ns *= 2.0;
    }
    let scaled = gate(&baseline, &slower, 0.10);
    if !scaled.passed() {
        eprintln!(
            "self-test: FAIL — uniform machine slowdown tripped the gate: {:?}",
            scaled.failures
        );
        return ExitCode::FAILURE;
    }

    // The aggregate gate must absorb offsetting per-triple swings (layout
    // luck) yet trip when one whole path degrades across the board.
    let mut swung = baseline.clone();
    swung.records[1].median_ns *= 2.0; // split/streamcluster/batched slower
    swung.records[7].median_ns /= 2.0; // mix/gups/batched faster
    if !gate_aggregate(&baseline, &swung, 0.10).passed() {
        eprintln!("self-test: FAIL — offsetting swings tripped the aggregate gate");
        return ExitCode::FAILURE;
    }
    let mut path_broken = baseline.clone();
    for r in &mut path_broken.records {
        if r.path == PATH_BATCHED {
            r.median_ns *= 2.0;
        }
    }
    let agg = gate_aggregate(&baseline, &path_broken, 0.40);
    if agg.passed() || agg.failures.len() != 1 {
        eprintln!(
            "self-test: FAIL — whole-path regression not caught by the aggregate gate ({:?})",
            agg.failures
        );
        return ExitCode::FAILURE;
    }

    println!(
        "self-test: PASS (round-trip, self-gate, {}-triple regression catch, machine-speed \
         invariance, aggregate swing absorption + path-regression catch)",
        tripped.failures.len()
    );
    ExitCode::SUCCESS
}

fn synthetic_record(design: &str, workload: &str, path: &str, median_ns: f64) -> BenchRecord {
    BenchRecord {
        design: design.to_owned(),
        workload: workload.to_owned(),
        path: path.to_owned(),
        accesses: 150_000,
        median_ns,
        // A dyadic offset (exact in binary and at the 3 decimals the JSON
        // keeps), so the synthetic report survives a round-trip bit-exactly.
        min_ns: median_ns - 0.5,
    }
}
