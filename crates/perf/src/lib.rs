//! mixtlb-perf — the perfgate benchmarking subsystem.
//!
//! Three pieces, one contract:
//!
//! * [`corpus`](self) — the pinned benchmark corpus: six fig. 9
//!   workloads frozen as compressed v2 traces under `crates/perf/corpus`,
//!   regenerable bit-identically from [`corpus_config`].
//! * [`harness`](self) — warmup + repeated timed replays of a trace
//!   through a design's [`mixtlb_sim::TranslationEngine`], on both the
//!   scalar per-event path and the batched [`translate_batch`] path,
//!   reported as median/min ns per translation.
//! * [`report`](self) — `BENCH_<pr>.json` serialization plus the
//!   normalized regression [`gate`] CI runs against the previously
//!   committed report.
//!
//! The `perfgate` binary (`crates/perf/src/bin/perfgate.rs`) wires these
//! into `gen-corpus` / `measure` / `gate` / `self-test` subcommands; see
//! EXPERIMENTS.md for the runbook.
//!
//! [`translate_batch`]: mixtlb_sim::TranslationEngine::translate_batch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod harness;
mod report;

pub use corpus::{
    config_fingerprint, corpus_catalog, corpus_config, corpus_path, default_corpus_dir,
    file_fingerprint, generate_events, load_events, prepare_scenario, write_corpus_file,
    CorpusWorkload,
};
pub use harness::{
    replay_batched, replay_decode_then_batched, replay_scalar, replay_stream_batched,
    replay_stream_ws, replay_ws, time_reps, Timing,
};
pub use report::{
    gate, gate_aggregate, path_at_cores, BenchRecord, BenchReport, CorpusFileInfo, GateOutcome,
    BASELINE_DESIGN, PATH_BATCHED, PATH_SCALAR, PATH_SEQ_BATCHED, PATH_STREAM_BATCHED,
    PATH_STREAM_WS, PATH_WS_BATCHED,
};
