//! Replay timing: warmup + repeated timed runs with median/min reporting.
//!
//! Each timed run replays the full pinned trace through a *fresh* engine
//! over a fresh clone of the scenario's page table, so runs are
//! independent and identically distributed; the harness reports the
//! median (robust central tendency on a shared machine) and the min (the
//! least-perturbed run) of nanoseconds per translation.

use std::io;
use std::path::Path;
use std::time::Instant;

use mixtlb_pagetable::PageTable;
use mixtlb_sim::{TlbHierarchy, TranslationEngine, WalkBackend};
use mixtlb_smp::{stream_chunks, stream_replay_ws, StreamConfig};
use mixtlb_trace::{TraceEvent, TraceFileV2, V2_BLOCK_EVENTS};
use mixtlb_types::PhysAddr;

/// Aggregated timing of repeated runs, in nanoseconds per translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Median across the timed runs.
    pub median_ns: f64,
    /// Fastest run.
    pub min_ns: f64,
}

impl Timing {
    /// Aggregates per-run ns/translation samples. Returns `None` for an
    /// empty sample set.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Timing> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let min_ns = samples[0];
        let mid = samples.len() / 2;
        let median_ns = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2.0
        };
        Some(Timing { median_ns, min_ns })
    }

    /// Million translations per second at the median.
    pub fn median_maccesses_per_sec(&self) -> f64 {
        if self.median_ns <= 0.0 {
            0.0
        } else {
            1e3 / self.median_ns
        }
    }
}

/// One timed scalar replay: per-event [`TranslationEngine::access`] calls.
/// Returns ns per translation.
pub fn replay_scalar(hierarchy: TlbHierarchy, pt: &mut PageTable, events: &[TraceEvent]) -> f64 {
    let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(pt));
    let start = Instant::now();
    for ev in events {
        engine.access(ev);
    }
    per_access_ns(start.elapsed().as_nanos(), events.len())
}

/// One timed batched replay through
/// [`TranslationEngine::translate_batch`]. Returns ns per translation.
pub fn replay_batched(hierarchy: TlbHierarchy, pt: &mut PageTable, events: &[TraceEvent]) -> f64 {
    let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(pt));
    let mut out: Vec<Option<PhysAddr>> = Vec::with_capacity(events.len());
    let start = Instant::now();
    engine.translate_batch(events, &mut out);
    per_access_ns(start.elapsed().as_nanos(), out.len())
}

/// One timed work-stealing multi-core replay: the trace is chunked over
/// `cores` worker threads with Chase–Lev deques
/// ([`mixtlb_smp::replay_parallel`]), each worker driving its own
/// engine's batched path over the chunks it wins. Returns *aggregate* ns
/// per translation — wall-clock over all events — so the record is
/// directly comparable to the single-core paths: smaller means the
/// multi-core replay is faster end to end.
pub fn replay_ws(
    factory: fn() -> TlbHierarchy,
    pt: &PageTable,
    events: &[TraceEvent],
    cores: usize,
    chunk_events: usize,
) -> f64 {
    let cfg = mixtlb_smp::WsConfig::new(cores, chunk_events);
    let report = mixtlb_smp::replay_parallel(events, pt, factory, &cfg);
    per_access_ns(report.elapsed.as_nanos(), events.len())
}

/// One timed *sequential* decode-then-translate run: the whole corpus is
/// decoded from disk into one `Vec`, then translated with a single
/// [`TranslationEngine::translate_batch`] call. This is the end-to-end
/// baseline the streaming paths must beat — it pays an O(corpus)
/// resident buffer between the phases. Returns ns per translation
/// (decode + translate together).
pub fn replay_decode_then_batched(
    hierarchy: TlbHierarchy,
    pt: &mut PageTable,
    trace: &Path,
) -> io::Result<f64> {
    let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(pt));
    let start = Instant::now();
    let events: Vec<TraceEvent> = TraceFileV2::open(trace)?.collect::<io::Result<Vec<_>>>()?;
    let mut out: Vec<Option<PhysAddr>> = Vec::with_capacity(events.len());
    engine.translate_batch(&events, &mut out);
    Ok(per_access_ns(start.elapsed().as_nanos(), out.len()))
}

/// One timed streaming decode→translate run: blocks stream through
/// [`mixtlb_smp::stream_chunks`] straight into per-block
/// [`TranslationEngine::translate_batch`] calls, one cache-resident
/// chunk at a time — decode and translation overlap (or, in the
/// synchronous shape, interleave without any O(corpus) buffer). Returns
/// end-to-end ns per translation, comparable to
/// [`replay_decode_then_batched`].
pub fn replay_stream_batched(
    hierarchy: TlbHierarchy,
    pt: &mut PageTable,
    trace: &Path,
    cfg: &StreamConfig,
) -> io::Result<f64> {
    let mut engine = TranslationEngine::new(hierarchy, WalkBackend::Native(pt));
    let mut out: Vec<Option<PhysAddr>> = Vec::with_capacity(V2_BLOCK_EVENTS);
    let start = Instant::now();
    let report = stream_chunks(trace, cfg, |_, events| {
        out.clear();
        engine.translate_batch(events, &mut out);
    })?;
    Ok(per_access_ns(start.elapsed().as_nanos(), report.events as usize))
}

/// One timed streaming work-stealing run: decode overlaps translation
/// across `cores` worker engines fed through per-core deques
/// ([`mixtlb_smp::stream_replay_ws`]). Returns aggregate end-to-end ns
/// per translation.
pub fn replay_stream_ws(
    factory: fn() -> TlbHierarchy,
    pt: &PageTable,
    trace: &Path,
    cores: usize,
    cfg: &StreamConfig,
) -> io::Result<f64> {
    let report = stream_replay_ws(trace, pt, factory, cores, cfg)?;
    Ok(per_access_ns(
        report.elapsed.as_nanos(),
        report.events as usize,
    ))
}

fn per_access_ns(elapsed_ns: u128, accesses: usize) -> f64 {
    if accesses == 0 {
        0.0
    } else {
        elapsed_ns as f64 / accesses as f64
    }
}

/// Runs `warmup` untimed then `reps` timed invocations of `run` (each
/// returning ns per translation) and aggregates them. Returns `None`
/// when `reps` is zero.
pub fn time_reps(warmup: usize, reps: usize, mut run: impl FnMut() -> f64) -> Option<Timing> {
    for _ in 0..warmup {
        let _ = run();
    }
    Timing::from_samples((0..reps).map(|_| run()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_aggregates_median_and_min() {
        let t = Timing::from_samples(vec![30.0, 10.0, 20.0]).unwrap();
        assert_eq!(t.min_ns, 10.0);
        assert_eq!(t.median_ns, 20.0);
        let t = Timing::from_samples(vec![40.0, 10.0, 20.0, 30.0]).unwrap();
        assert_eq!(t.median_ns, 25.0);
        assert!(Timing::from_samples(vec![]).is_none());
    }

    #[test]
    fn throughput_inverts_latency() {
        let t = Timing {
            median_ns: 10.0,
            min_ns: 8.0,
        };
        assert!((t.median_maccesses_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_reps_warms_then_measures() {
        let mut calls = 0;
        let t = time_reps(2, 3, || {
            calls += 1;
            calls as f64
        })
        .unwrap();
        assert_eq!(calls, 5);
        // Timed samples are 3.0, 4.0, 5.0.
        assert_eq!(t.min_ns, 3.0);
        assert_eq!(t.median_ns, 4.0);
    }
}
