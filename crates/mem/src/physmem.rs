//! Physical memory: buddy allocation plus frame-ownership tracking and
//! compaction.

use std::collections::BTreeMap;

use mixtlb_types::{PageSize, Pfn};

use crate::buddy::{AllocError, BuddyAllocator, MAX_ORDER};
use crate::config::MemoryConfig;
use crate::frame::FrameKind;

/// Aggregate occupancy statistics for a [`PhysicalMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Total frames under management.
    pub total_frames: u64,
    /// Free frames.
    pub free_frames: u64,
    /// Frames holding movable (user) data.
    pub movable_frames: u64,
    /// Frames pinned as unmovable.
    pub unmovable_frames: u64,
    /// Frames holding page tables.
    pub page_table_frames: u64,
    /// Number of 2 MB-aligned, fully free 2 MB regions.
    pub free_2m_blocks: u64,
    /// Number of 1 GB-aligned, fully free 1 GB regions.
    pub free_1g_blocks: u64,
}

/// Result of a compaction attempt on one aligned window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionOutcome {
    /// The window was freed. Each `(old_base, new_base, order)` entry is a
    /// movable block whose frames migrated; the caller must remap them.
    Freed {
        /// Relocated blocks: `(old_base_pfn, new_base_pfn, order)`.
        relocations: Vec<(Pfn, Pfn, u8)>,
    },
    /// The window contains unmovable frames (or an in-use block larger than
    /// the window) and can never be compacted.
    Pinned,
    /// Migrating the window's movable data would exceed the given budget.
    OverBudget,
    /// There was nowhere to migrate the movable data to.
    NoSpace,
}

impl CompactionOutcome {
    /// Returns `true` if the window was successfully freed.
    pub fn is_freed(&self) -> bool {
        matches!(self, CompactionOutcome::Freed { .. })
    }
}

/// The machine's physical memory: a buddy allocator with per-frame ownership
/// states, fragmentation queries, and Linux-style compaction of aligned
/// superpage windows.
///
/// # Examples
///
/// ```
/// use mixtlb_mem::{FrameKind, MemoryConfig, PhysicalMemory};
/// use mixtlb_types::PageSize;
///
/// let mut mem = PhysicalMemory::new(MemoryConfig::with_bytes(16 << 20));
/// let pfn = mem.alloc_page(PageSize::Size4K, FrameKind::Movable)?;
/// assert_eq!(mem.kind_of(pfn), FrameKind::Movable);
/// mem.free_page(pfn, PageSize::Size4K);
/// assert_eq!(mem.kind_of(pfn), FrameKind::Free);
/// # Ok::<(), mixtlb_mem::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    config: MemoryConfig,
    buddy: BuddyAllocator,
    kinds: Vec<FrameKind>,
    /// Allocated blocks, base → (order, kind); supports the range scans
    /// compaction needs.
    allocated: BTreeMap<u64, (u8, FrameKind)>,
    /// Cached per-2MB-window occupancy, indexed by `pfn / 512`: movable
    /// frame count and pinned (unmovable + page-table) frame count. These
    /// make the THS compaction scanner O(1) per candidate window.
    window_movable: Vec<u32>,
    window_pinned: Vec<u32>,
    movable_frames: u64,
    unmovable_frames: u64,
    page_table_frames: u64,
}

impl PhysicalMemory {
    /// Creates a fully free physical memory of the configured size.
    pub fn new(config: MemoryConfig) -> PhysicalMemory {
        let total = config.total_frames();
        let windows = total.div_ceil(512) as usize;
        PhysicalMemory {
            config,
            buddy: BuddyAllocator::new(total),
            kinds: vec![FrameKind::Free; total as usize],
            allocated: BTreeMap::new(),
            window_movable: vec![0; windows],
            window_pinned: vec![0; windows],
            movable_frames: 0,
            unmovable_frames: 0,
            page_table_frames: 0,
        }
    }

    /// The configuration this memory was created with.
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Total number of frames.
    pub fn total_frames(&self) -> u64 {
        self.config.total_frames()
    }

    /// Currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.buddy.free_frames()
    }

    /// The ownership state of a frame.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of bounds.
    pub fn kind_of(&self, pfn: Pfn) -> FrameKind {
        self.kinds[pfn.raw() as usize]
    }

    /// Allocates one page of the given size (order 0 / 9 / 18).
    ///
    /// # Errors
    ///
    /// See [`BuddyAllocator::alloc`].
    pub fn alloc_page(&mut self, size: PageSize, kind: FrameKind) -> Result<Pfn, AllocError> {
        self.alloc_block(Self::order_for(size), kind)
    }

    /// Allocates a block of `2^order` frames.
    ///
    /// # Errors
    ///
    /// See [`BuddyAllocator::alloc`].
    pub fn alloc_block(&mut self, order: u8, kind: FrameKind) -> Result<Pfn, AllocError> {
        let base = self.buddy.alloc(order)?;
        self.mark(base, order, kind);
        Ok(Pfn::new(base))
    }

    /// Allocates a block of `2^order` frames from the top of memory (see
    /// [`BuddyAllocator::alloc_from_top`]).
    ///
    /// # Errors
    ///
    /// See [`BuddyAllocator::alloc`].
    pub fn alloc_block_top(&mut self, order: u8, kind: FrameKind) -> Result<Pfn, AllocError> {
        let base = self.buddy.alloc_from_top(order)?;
        self.mark(base, order, kind);
        Ok(Pfn::new(base))
    }

    /// Allocates the specific block `[base, base + 2^order)`.
    ///
    /// # Errors
    ///
    /// See [`BuddyAllocator::alloc_at`].
    pub fn alloc_block_at(&mut self, base: Pfn, order: u8, kind: FrameKind) -> Result<(), AllocError> {
        self.buddy.alloc_at(base.raw(), order)?;
        self.mark(base.raw(), order, kind);
        Ok(())
    }

    /// Frees one page of the given size.
    pub fn free_page(&mut self, base: Pfn, size: PageSize) {
        self.free_block(base, Self::order_for(size));
    }

    /// Frees a block of `2^order` frames.
    ///
    /// # Panics
    ///
    /// Panics if the block was not allocated as a unit at this base/order.
    pub fn free_block(&mut self, base: Pfn, order: u8) {
        let (recorded_order, _) = self
            .allocated
            .get(&base.raw())
            .copied()
            // lint: allow(panic) — freeing an untracked block is a simulator bug; failing loudly is the allocator's contract
            .unwrap_or_else(|| panic!("freeing unallocated block at {base}"));
        assert_eq!(recorded_order, order, "free order mismatch at {base}");
        self.unmark(base.raw(), order);
        self.buddy.free(base.raw(), order);
    }

    /// Returns `true` if the aligned range `[base, base + 2^order)` is
    /// entirely free.
    pub fn is_range_free(&self, base: Pfn, order: u8) -> bool {
        self.buddy.is_range_free(base.raw(), order)
    }

    /// Counts `(movable, pinned)` frames within an aligned window.
    ///
    /// For windows of 2 MB and larger this reads cached per-window counters
    /// and is O(window / 2 MB); smaller windows scan frame states directly.
    pub fn window_occupancy(&self, base: Pfn, order: u8) -> (u64, u64) {
        if order >= 9 && base.raw().is_multiple_of(512) {
            let first = base.page_number(PageSize::Size2M) as usize;
            let count = 1usize << (order - 9);
            let last = (first + count).min(self.window_movable.len());
            let mut movable = 0u64;
            let mut pinned = 0u64;
            for w in first..last {
                movable += u64::from(self.window_movable[w]);
                pinned += u64::from(self.window_pinned[w]);
            }
            return (movable, pinned);
        }
        let start = base.raw() as usize;
        let end = (base.raw() + (1u64 << order)).min(self.total_frames()) as usize;
        let mut movable = 0;
        let mut pinned = 0;
        for kind in &self.kinds[start..end] {
            match kind {
                FrameKind::Free => {}
                FrameKind::Movable => movable += 1,
                FrameKind::Unmovable | FrameKind::PageTable => pinned += 1,
            }
        }
        (movable, pinned)
    }

    /// Attempts to free the aligned window `[base, base + 2^order)` by
    /// migrating movable blocks elsewhere, then reserves the window for the
    /// caller with the given `kind` (like Linux compaction feeding a THP
    /// allocation).
    ///
    /// `budget_frames` caps how many frames may be migrated.
    ///
    /// On [`CompactionOutcome::Freed`], the window is *allocated to the
    /// caller* and the returned relocations must be applied to page tables.
    pub fn compact_window(
        &mut self,
        base: Pfn,
        order: u8,
        kind: FrameKind,
        budget_frames: u64,
    ) -> CompactionOutcome {
        if !base.raw().is_multiple_of(1u64 << order)
            || base.raw() + (1u64 << order) > self.total_frames()
        {
            return CompactionOutcome::Pinned;
        }
        let window_start = base.raw();
        let window_end = window_start + (1u64 << order);
        let (movable, pinned) = self.window_occupancy(base, order);
        if pinned > 0 {
            return CompactionOutcome::Pinned;
        }
        if movable > budget_frames {
            return CompactionOutcome::OverBudget;
        }
        // Net frames consumed: the whole window minus what is already free
        // inside it will come out of the free pool elsewhere.
        if self.buddy.free_frames() < (1u64 << order) {
            return CompactionOutcome::NoSpace;
        }
        // Collect allocated blocks overlapping the window. Blocks are
        // buddy-aligned, so any block not larger than the window is either
        // fully inside or fully outside; a larger containing block means an
        // in-use superpage we will not split.
        let block_count = self.allocated.range(window_start..window_end).count();
        let mut inside: Vec<(u64, u8, FrameKind)> = Vec::with_capacity(block_count);
        for (&b, &(o, k)) in self.allocated.range(window_start..window_end) {
            if o > order {
                return CompactionOutcome::Pinned;
            }
            inside.push((b, o, k));
        }
        // A containing block would have a base below the window start.
        if let Some((&b, &(o, _))) = self.allocated.range(..window_start).next_back() {
            if b + (1u64 << o) > window_start {
                return CompactionOutcome::Pinned;
            }
        }
        // Phase 1: release every block inside the window.
        for &(b, o, _) in &inside {
            self.unmark(b, o);
            self.buddy.free(b, o);
        }
        // Phase 2: reserve the window itself.
        if self.buddy.alloc_at(window_start, order).is_err() {
            // Cannot happen: we just freed everything inside it.
            unreachable!("window not free after releasing its contents");
        }
        // Phase 3: find new homes for the displaced blocks.
        let mut relocations = Vec::with_capacity(inside.len());
        let mut placed: Vec<(u64, u8)> = Vec::with_capacity(inside.len());
        let mut failed = false;
        for &(old, o, k) in &inside {
            // Linux compaction's free scanner works from the top of the
            // zone down: displaced pages migrate to high addresses, so the
            // low-address space the allocation scanner feeds on stays
            // clean instead of being re-polluted by displaced data.
            match self.buddy.alloc_from_top(o) {
                Ok(new) => {
                    self.mark(new, o, k);
                    placed.push((new, o));
                    relocations.push((Pfn::new(old), Pfn::new(new), o));
                }
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            // Roll back: undo placements, release the window, restore the
            // original blocks.
            for (new, o) in placed {
                self.unmark(new, o);
                self.buddy.free(new, o);
            }
            self.buddy.free(window_start, order);
            for &(b, o, k) in &inside {
                self.buddy
                    .alloc_at(b, o)
                    // lint: allow(panic) — rollback re-allocates a block this very function just freed, so the region is free
                    .expect("original block location must still be free during rollback");
                self.mark(b, o, k);
            }
            return CompactionOutcome::NoSpace;
        }
        self.mark(window_start, order, kind);
        CompactionOutcome::Freed { relocations }
    }

    /// Occupancy and fragmentation statistics.
    pub fn stats(&self) -> MemoryStats {
        let mut free_2m = 0u64;
        let mut free_1g = 0u64;
        for order in 9..=MAX_ORDER {
            let blocks = self.buddy.free_blocks_of_order(order) as u64;
            free_2m += blocks << (order - 9);
            if order >= 18 {
                free_1g += blocks << (order - 18);
            }
        }
        MemoryStats {
            total_frames: self.total_frames(),
            free_frames: self.buddy.free_frames(),
            movable_frames: self.movable_frames,
            unmovable_frames: self.unmovable_frames,
            page_table_frames: self.page_table_frames,
            free_2m_blocks: free_2m,
            free_1g_blocks: free_1g,
        }
    }

    fn order_for(size: PageSize) -> u8 {
        size.buddy_order()
    }

    fn mark(&mut self, base: u64, order: u8, kind: FrameKind) {
        debug_assert!(kind.is_allocated());
        let n = 1u64 << order;
        for f in base..base + n {
            self.kinds[f as usize] = kind;
            let w = (f / 512) as usize;
            if kind.is_movable() {
                self.window_movable[w] += 1;
            } else {
                self.window_pinned[w] += 1;
            }
        }
        match kind {
            FrameKind::Movable => self.movable_frames += n,
            FrameKind::Unmovable => self.unmovable_frames += n,
            FrameKind::PageTable => self.page_table_frames += n,
            FrameKind::Free => {}
        }
        self.allocated.insert(base, (order, kind));
    }

    fn unmark(&mut self, base: u64, order: u8) {
        let (_, kind) = self
            .allocated
            .remove(&base)
            // lint: allow(panic) — unmarking an untracked block is a simulator bug surfaced immediately
            .unwrap_or_else(|| panic!("unmark of untracked block {base:#x}"));
        let n = 1u64 << order;
        for f in base..base + n {
            self.kinds[f as usize] = FrameKind::Free;
            let w = (f / 512) as usize;
            if kind.is_movable() {
                self.window_movable[w] -= 1;
            } else {
                self.window_pinned[w] -= 1;
            }
        }
        match kind {
            FrameKind::Movable => self.movable_frames -= n,
            FrameKind::Unmovable => self.unmovable_frames -= n,
            FrameKind::PageTable => self.page_table_frames -= n,
            FrameKind::Free => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with_frames(frames: u64) -> PhysicalMemory {
        PhysicalMemory::new(MemoryConfig::with_bytes(frames * 4096))
    }

    #[test]
    fn alloc_free_roundtrip_updates_kinds() {
        let mut mem = mem_with_frames(4096);
        let p = mem.alloc_page(PageSize::Size2M, FrameKind::Movable).unwrap();
        assert_eq!(mem.kind_of(p), FrameKind::Movable);
        assert_eq!(mem.kind_of(p.add_4k(511)), FrameKind::Movable);
        assert_eq!(mem.stats().movable_frames, 512);
        mem.free_page(p, PageSize::Size2M);
        assert_eq!(mem.kind_of(p), FrameKind::Free);
        assert_eq!(mem.stats().movable_frames, 0);
    }

    #[test]
    fn stats_count_free_superpage_blocks() {
        let mut mem = mem_with_frames(4096);
        assert_eq!(mem.stats().free_2m_blocks, 8);
        // Pin one frame inside the second 2 MB window.
        mem.alloc_block_at(Pfn::new(600), 0, FrameKind::Unmovable).unwrap();
        assert_eq!(mem.stats().free_2m_blocks, 7);
        assert_eq!(mem.stats().unmovable_frames, 1);
    }

    #[test]
    fn compaction_moves_movable_data_out() {
        let mut mem = mem_with_frames(4096);
        // Occupy a frame in window [512, 1024) with movable data.
        mem.alloc_block_at(Pfn::new(700), 0, FrameKind::Movable).unwrap();
        let outcome = mem.compact_window(Pfn::new(512), 9, FrameKind::Movable, 512);
        assert!(outcome.is_freed());
        match outcome {
            CompactionOutcome::Freed { relocations } => {
                assert_eq!(relocations.len(), 1);
                let (old, new, order) = relocations[0];
                assert_eq!(old, Pfn::new(700));
                assert_eq!(order, 0);
                assert!(new.raw() < 512 || new.raw() >= 1024, "migrated inside the window");
                assert_eq!(mem.kind_of(new), FrameKind::Movable);
            }
            other => panic!("expected Freed, got {other:?}"),
        }
        // The window now belongs to the caller.
        assert_eq!(mem.kind_of(Pfn::new(512)), FrameKind::Movable);
        assert_eq!(mem.kind_of(Pfn::new(1023)), FrameKind::Movable);
    }

    #[test]
    fn compaction_refuses_pinned_windows() {
        let mut mem = mem_with_frames(4096);
        mem.alloc_block_at(Pfn::new(700), 0, FrameKind::Unmovable).unwrap();
        assert_eq!(
            mem.compact_window(Pfn::new(512), 9, FrameKind::Movable, 512),
            CompactionOutcome::Pinned
        );
    }

    #[test]
    fn compaction_respects_budget() {
        let mut mem = mem_with_frames(4096);
        mem.alloc_block_at(Pfn::new(512), 0, FrameKind::Movable).unwrap();
        mem.alloc_block_at(Pfn::new(513), 0, FrameKind::Movable).unwrap();
        assert_eq!(
            mem.compact_window(Pfn::new(512), 9, FrameKind::Movable, 1),
            CompactionOutcome::OverBudget
        );
    }

    #[test]
    fn compaction_will_not_split_inuse_superpages() {
        let mut mem = mem_with_frames(1 << 19);
        // A movable 1 GB page in use covers the candidate 2 MB window.
        let gig = mem.alloc_page(PageSize::Size1G, FrameKind::Movable).unwrap();
        assert_eq!(
            mem.compact_window(gig, 9, FrameKind::Movable, u64::MAX),
            CompactionOutcome::Pinned
        );
    }

    #[test]
    fn compaction_fails_cleanly_when_memory_is_full() {
        let mut mem = mem_with_frames(1024);
        // Fill all of memory with movable 4 KB pages.
        let mut pages = Vec::new();
        while let Ok(p) = mem.alloc_page(PageSize::Size4K, FrameKind::Movable) {
            pages.push(p);
        }
        assert_eq!(mem.free_frames(), 0);
        let before = mem.stats();
        assert_eq!(
            mem.compact_window(Pfn::new(0), 9, FrameKind::Movable, u64::MAX),
            CompactionOutcome::NoSpace
        );
        // State unchanged after the failed attempt.
        assert_eq!(mem.stats(), before);
        assert_eq!(mem.kind_of(Pfn::new(0)), FrameKind::Movable);
    }

    #[test]
    fn free_block_validates_order() {
        let mut mem = mem_with_frames(1024);
        let p = mem.alloc_page(PageSize::Size2M, FrameKind::Movable).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = mem.clone();
            m.free_block(p, 0);
        }));
        assert!(result.is_err(), "mismatched free order must panic");
    }
}
