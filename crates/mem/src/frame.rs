//! Per-frame ownership states.

use std::fmt;

/// Who owns a physical frame, from the point of view of compaction.
///
/// Linux's page-block mobility types collapse, for our purposes, into three
/// relevant classes: free, movable (user data that compaction may migrate),
/// and unmovable (kernel allocations, pinned memory — and our model of the
/// `memhog` fragmenter's footprint, which is what makes fragmentation *hurt*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// The frame is on a free list.
    Free,
    /// User data; compaction may migrate it.
    Movable,
    /// Pinned/kernel memory; compaction must work around it.
    Unmovable,
    /// A page-table page. Unmovable, but tracked separately so walk traffic
    /// and footprint can be reported.
    PageTable,
}

impl FrameKind {
    /// Returns `true` if compaction may migrate frames of this kind.
    #[inline]
    pub const fn is_movable(self) -> bool {
        matches!(self, FrameKind::Movable)
    }

    /// Returns `true` if the frame is allocated (not free).
    #[inline]
    pub const fn is_allocated(self) -> bool {
        !matches!(self, FrameKind::Free)
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameKind::Free => write!(f, "free"),
            FrameKind::Movable => write!(f, "movable"),
            FrameKind::Unmovable => write!(f, "unmovable"),
            FrameKind::PageTable => write!(f, "page-table"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movability() {
        assert!(FrameKind::Movable.is_movable());
        assert!(!FrameKind::Unmovable.is_movable());
        assert!(!FrameKind::PageTable.is_movable());
        assert!(!FrameKind::Free.is_movable());
    }

    #[test]
    fn allocation_state() {
        assert!(!FrameKind::Free.is_allocated());
        assert!(FrameKind::Movable.is_allocated());
        assert!(FrameKind::PageTable.is_allocated());
    }
}
