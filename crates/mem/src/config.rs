//! Physical-memory configuration.

use mixtlb_types::PAGE_SIZE_4K;

/// Configuration for a [`crate::PhysicalMemory`] instance.
///
/// # Examples
///
/// ```
/// use mixtlb_mem::MemoryConfig;
///
/// let cfg = MemoryConfig::with_gib(80); // the paper's 80 GB server
/// assert_eq!(cfg.total_frames(), 20 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    total_bytes: u64,
}

impl MemoryConfig {
    /// Creates a configuration for a machine with the given memory size.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is zero or not a multiple of 4 KB.
    pub fn with_bytes(total_bytes: u64) -> MemoryConfig {
        assert!(total_bytes > 0, "memory size must be non-zero");
        assert_eq!(
            total_bytes % PAGE_SIZE_4K,
            0,
            "memory size must be a multiple of 4 KB"
        );
        MemoryConfig { total_bytes }
    }

    /// Creates a configuration for a machine with `gib` GiB of memory.
    pub fn with_gib(gib: u64) -> MemoryConfig {
        MemoryConfig::with_bytes(gib << 30)
    }

    /// Total memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total number of 4 KB frames.
    pub fn total_frames(&self) -> u64 {
        self.total_bytes / PAGE_SIZE_4K
    }
}

impl Default for MemoryConfig {
    /// The paper's evaluation machine: 80 GB of physical memory.
    fn default() -> MemoryConfig {
        MemoryConfig::with_gib(80)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_for_80_gib() {
        assert_eq!(MemoryConfig::default().total_frames(), 20_971_520);
    }

    #[test]
    #[should_panic(expected = "multiple of 4 KB")]
    fn rejects_unaligned_sizes() {
        let _ = MemoryConfig::with_bytes(4097);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero() {
        let _ = MemoryConfig::with_bytes(0);
    }
}
