//! A buddy allocator over 4 KB frames.
//!
//! Free blocks of each order are kept in ascending address order
//! (`BTreeSet`), so allocation prefers the lowest available address. This is
//! the property that makes consecutive superpage allocations come out
//! physically adjacent on a defragmented system — the contiguity MIX TLBs
//! coalesce (paper Sec. 7.1).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Largest supported block order: `2^18` frames = 1 GB.
pub const MAX_ORDER: u8 = 18;

/// Errors returned by [`BuddyAllocator`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block large enough exists.
    OutOfMemory,
    /// The requested specific range is not entirely free.
    RangeBusy,
    /// The request was malformed (order too large, misaligned or
    /// out-of-bounds base).
    BadRequest,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "no free block of the requested order"),
            AllocError::RangeBusy => write!(f, "requested frame range is not free"),
            AllocError::BadRequest => write!(f, "malformed allocation request"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A buddy allocator managing `total_frames` 4 KB frames.
///
/// # Examples
///
/// ```
/// use mixtlb_mem::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(1024);
/// let a = buddy.alloc(0)?; // one 4 KB frame
/// let b = buddy.alloc(9)?; // one 2 MB block
/// assert_ne!(a, b);
/// buddy.free(a, 0);
/// buddy.free(b, 9);
/// assert_eq!(buddy.free_frames(), 1024);
/// # Ok::<(), mixtlb_mem::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    total_frames: u64,
    free_lists: Vec<BTreeSet<u64>>,
    /// base → order for every free block; the membership test that buddy
    /// merging needs.
    free_blocks: HashMap<u64, u8>,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over `total_frames` frames, all initially free.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    pub fn new(total_frames: u64) -> BuddyAllocator {
        assert!(total_frames > 0, "allocator must manage at least one frame");
        let mut buddy = BuddyAllocator {
            total_frames,
            free_lists: vec![BTreeSet::new(); MAX_ORDER as usize + 1],
            free_blocks: HashMap::new(),
            free_frames: 0,
        };
        // Greedy decomposition of [0, total_frames) into aligned blocks.
        let mut base = 0u64;
        while base < total_frames {
            let align_order = if base == 0 {
                MAX_ORDER
            } else {
                (base.trailing_zeros() as u8).min(MAX_ORDER)
            };
            let mut order = align_order;
            while base + (1u64 << order) > total_frames {
                order -= 1;
            }
            buddy.insert_free(base, order);
            base += 1u64 << order;
        }
        buddy.free_frames = total_frames;
        buddy
    }

    /// Total frames under management.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Currently free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// The largest order with at least one free block, or `None` when full.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..=MAX_ORDER).rev().find(|&o| !self.free_lists[o as usize].is_empty())
    }

    /// Number of free blocks of exactly the given order.
    pub fn free_blocks_of_order(&self, order: u8) -> usize {
        self.free_lists
            .get(order as usize)
            .map_or(0, |set| set.len())
    }

    /// Allocates the lowest-addressed free block of `2^order` frames.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadRequest`] if `order > MAX_ORDER`;
    /// [`AllocError::OutOfMemory`] if no sufficiently large block is free.
    pub fn alloc(&mut self, order: u8) -> Result<u64, AllocError> {
        if order > MAX_ORDER {
            return Err(AllocError::BadRequest);
        }
        // Lowest-addressed block across all sufficient orders. (Pure
        // smallest-order-first would consume scattered fragments before
        // splitting large low blocks, destroying the ascending-address
        // behaviour that makes consecutive allocations contiguous.)
        let (base, from_order) = (order..=MAX_ORDER)
            .filter_map(|o| {
                self.free_lists[o as usize]
                    .first()
                    .map(|&b| (b, o))
            })
            .min()
            .ok_or(AllocError::OutOfMemory)?;
        self.remove_free(base, from_order);
        // Split down, returning the low half each time.
        let mut cur = from_order;
        while cur > order {
            cur -= 1;
            self.insert_free(base + (1u64 << cur), cur);
        }
        self.free_frames -= 1u64 << order;
        Ok(base)
    }

    /// Allocates the highest-addressed free block of `2^order` frames.
    /// Used for allocations that should stay away from the ascending
    /// low-address stream the buddy allocator feeds to data pages — e.g.
    /// page-table frames, which real kernels segregate by migratetype so
    /// they do not puncture superpage runs.
    ///
    /// # Errors
    ///
    /// Same as [`BuddyAllocator::alloc`].
    pub fn alloc_from_top(&mut self, order: u8) -> Result<u64, AllocError> {
        if order > MAX_ORDER {
            return Err(AllocError::BadRequest);
        }
        let from_order = (order..=MAX_ORDER)
            .find(|&o| !self.free_lists[o as usize].is_empty())
            .ok_or(AllocError::OutOfMemory)?;
        let mut base = *self.free_lists[from_order as usize]
            .last()
            // lint: allow(panic) — the search above selected this order because its free list is non-empty
            .expect("order was found non-empty");
        self.remove_free(base, from_order);
        // Split down, keeping the HIGH half each time.
        let mut cur = from_order;
        while cur > order {
            cur -= 1;
            self.insert_free(base, cur);
            base += 1u64 << cur;
        }
        self.free_frames -= 1u64 << order;
        Ok(base)
    }

    /// Allocates the specific block `[base, base + 2^order)`.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadRequest`] for misaligned/out-of-bounds requests;
    /// [`AllocError::RangeBusy`] if the range is not entirely free.
    pub fn alloc_at(&mut self, base: u64, order: u8) -> Result<(), AllocError> {
        if order > MAX_ORDER
            || !base.is_multiple_of(1u64 << order)
            || base + (1u64 << order) > self.total_frames
        {
            return Err(AllocError::BadRequest);
        }
        // Find the free block containing the requested range. Free blocks
        // are order-aligned, so the candidates are base aligned down at each
        // order >= `order`.
        let mut found = None;
        for k in order..=MAX_ORDER {
            let candidate = base & !((1u64 << k) - 1);
            if self.free_blocks.get(&candidate) == Some(&k) {
                found = Some((candidate, k));
                break;
            }
        }
        let (block_base, block_order) = found.ok_or(AllocError::RangeBusy)?;
        self.remove_free(block_base, block_order);
        // Split, keeping the half that contains the target, freeing the rest.
        let mut cur_base = block_base;
        let mut cur_order = block_order;
        while cur_order > order {
            cur_order -= 1;
            let half = 1u64 << cur_order;
            if base < cur_base + half {
                self.insert_free(cur_base + half, cur_order);
            } else {
                self.insert_free(cur_base, cur_order);
                cur_base += half;
            }
        }
        debug_assert_eq!(cur_base, base);
        self.free_frames -= 1u64 << order;
        Ok(())
    }

    /// Frees the block `[base, base + 2^order)`, merging buddies eagerly.
    ///
    /// # Panics
    ///
    /// Panics if the block (or part of it) is already free — double frees
    /// always indicate a simulator bug.
    pub fn free(&mut self, base: u64, order: u8) {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        assert_eq!(base % (1u64 << order), 0, "freed block is misaligned");
        assert!(
            base + (1u64 << order) <= self.total_frames,
            "freed block out of bounds"
        );
        let freed_frames = 1u64 << order;
        let mut base = base;
        let mut order = order;
        while order < MAX_ORDER {
            let buddy = base ^ (1u64 << order);
            if buddy + (1u64 << order) > self.total_frames
                || self.free_blocks.get(&buddy) != Some(&order)
            {
                break;
            }
            self.remove_free(buddy, order);
            base = base.min(buddy);
            order += 1;
        }
        assert!(
            !self.free_blocks.contains_key(&base),
            "double free of block {base:#x}"
        );
        self.insert_free(base, order);
        self.free_frames += freed_frames;
    }

    /// Returns `true` if the exact block `[base, base + 2^order)` could be
    /// carved out of free space right now.
    pub fn is_range_free(&self, base: u64, order: u8) -> bool {
        if order > MAX_ORDER
            || !base.is_multiple_of(1u64 << order)
            || base + (1u64 << order) > self.total_frames
        {
            return false;
        }
        (order..=MAX_ORDER).any(|k| {
            let candidate = base & !((1u64 << k) - 1);
            self.free_blocks.get(&candidate) == Some(&k)
        })
    }

    fn insert_free(&mut self, base: u64, order: u8) {
        self.free_lists[order as usize].insert(base);
        self.free_blocks.insert(base, order);
    }

    fn remove_free(&mut self, base: u64, order: u8) {
        let was_in_list = self.free_lists[order as usize].remove(&base);
        let was_in_map = self.free_blocks.remove(&base).is_some();
        debug_assert!(was_in_list && was_in_map, "free-list bookkeeping desync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_fully_free() {
        let buddy = BuddyAllocator::new(4096);
        assert_eq!(buddy.free_frames(), 4096);
        assert_eq!(buddy.largest_free_order(), Some(12));
    }

    #[test]
    fn non_power_of_two_totals_decompose() {
        // 20 GiB worth of frames: 5 * 2^20.
        let buddy = BuddyAllocator::new(5 << 20);
        assert_eq!(buddy.free_frames(), 5 << 20);
        assert_eq!(buddy.largest_free_order(), Some(18));
    }

    #[test]
    fn alloc_prefers_low_addresses() {
        let mut buddy = BuddyAllocator::new(1 << 12);
        assert_eq!(buddy.alloc(0).unwrap(), 0);
        assert_eq!(buddy.alloc(0).unwrap(), 1);
        assert_eq!(buddy.alloc(9).unwrap(), 512);
    }

    #[test]
    fn sequential_superpage_allocs_are_adjacent() {
        let mut buddy = BuddyAllocator::new(1 << 14);
        let a = buddy.alloc(9).unwrap();
        let b = buddy.alloc(9).unwrap();
        let c = buddy.alloc(9).unwrap();
        assert_eq!(b, a + 512);
        assert_eq!(c, b + 512);
    }

    #[test]
    fn free_merges_buddies() {
        let mut buddy = BuddyAllocator::new(1024);
        let a = buddy.alloc(0).unwrap();
        let b = buddy.alloc(0).unwrap();
        buddy.free(a, 0);
        buddy.free(b, 0);
        assert_eq!(buddy.free_frames(), 1024);
        // Everything merged back into the single top block.
        assert_eq!(buddy.free_blocks_of_order(10), 1);
    }

    #[test]
    fn alloc_at_carves_specific_ranges() {
        let mut buddy = BuddyAllocator::new(1 << 12);
        buddy.alloc_at(512, 9).unwrap();
        assert_eq!(buddy.free_frames(), (1 << 12) - 512);
        // The carved range is busy now.
        assert_eq!(buddy.alloc_at(512, 9), Err(AllocError::RangeBusy));
        assert_eq!(buddy.alloc_at(768, 8), Err(AllocError::RangeBusy));
        // Its neighbours are still free.
        buddy.alloc_at(0, 9).unwrap();
        buddy.alloc_at(1024, 10).unwrap();
    }

    #[test]
    fn alloc_at_rejects_bad_requests() {
        let mut buddy = BuddyAllocator::new(1024);
        assert_eq!(buddy.alloc_at(3, 2), Err(AllocError::BadRequest));
        assert_eq!(buddy.alloc_at(1024, 0), Err(AllocError::BadRequest));
        assert_eq!(buddy.alloc_at(0, MAX_ORDER + 1), Err(AllocError::BadRequest));
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut buddy = BuddyAllocator::new(512);
        assert_eq!(buddy.alloc(10), Err(AllocError::OutOfMemory));
        buddy.alloc(9).unwrap();
        assert_eq!(buddy.alloc(0), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn is_range_free_tracks_state() {
        let mut buddy = BuddyAllocator::new(1024);
        assert!(buddy.is_range_free(0, 9));
        assert!(buddy.is_range_free(256, 8));
        buddy.alloc_at(256, 8).unwrap();
        assert!(!buddy.is_range_free(0, 9));
        assert!(!buddy.is_range_free(256, 8));
        assert!(buddy.is_range_free(0, 8));
        assert!(buddy.is_range_free(512, 9));
    }

    #[test]
    fn alloc_from_top_takes_high_addresses() {
        let mut buddy = BuddyAllocator::new(1 << 12);
        let top = buddy.alloc_from_top(0).unwrap();
        assert_eq!(top, (1 << 12) - 1);
        let next = buddy.alloc_from_top(0).unwrap();
        assert_eq!(next, (1 << 12) - 2);
        // Low allocations are untouched by the top split.
        assert_eq!(buddy.alloc(0).unwrap(), 0);
        // Freeing the top frames merges back.
        buddy.free(top, 0);
        buddy.free(next, 0);
        assert_eq!(buddy.free_frames(), (1 << 12) - 1);
    }

    #[test]
    fn alloc_from_top_respects_order_alignment() {
        let mut buddy = BuddyAllocator::new(1 << 12);
        let block = buddy.alloc_from_top(9).unwrap();
        assert_eq!(block % 512, 0);
        assert_eq!(block, (1 << 12) - 512);
        assert_eq!(buddy.alloc_from_top(MAX_ORDER + 1), Err(AllocError::BadRequest));
    }

    #[test]
    fn lowest_address_first_across_orders() {
        // Carve a small free fragment at a high address and leave a big
        // block at 0: alloc must pick the LOW block, not the small
        // fragment (ascending-address allocation keeps runs contiguous).
        let mut buddy = BuddyAllocator::new(1 << 12);
        buddy.alloc_at(512, 9).unwrap(); // [512, 1024) busy
        // Free lists now hold o9@0 and larger blocks above 1024.
        let a = buddy.alloc(0).unwrap();
        assert_eq!(a, 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut buddy = BuddyAllocator::new(1024);
        let a = buddy.alloc(0).unwrap();
        buddy.free(a, 0);
        buddy.free(a, 0);
    }

    #[test]
    fn boundary_blocks_do_not_merge_past_the_end() {
        // 768 frames = a 512 block + a 256 block; the 256 block's "buddy"
        // would lie beyond the end of memory.
        let mut buddy = BuddyAllocator::new(768);
        buddy.alloc_at(512, 8).unwrap();
        buddy.free(512, 8);
        assert_eq!(buddy.free_frames(), 768);
        assert_eq!(buddy.free_blocks_of_order(9), 1);
        assert_eq!(buddy.free_blocks_of_order(8), 1);
    }
}
