//! Physical-memory model: buddy allocation, fragmentation, and compaction.
//!
//! The MIX TLB paper's evaluation hinges on *how the OS allocates physical
//! memory*: whether superpages can be formed at all, and whether consecutive
//! superpage allocations land in adjacent physical frames. This crate models
//! the physical side of that story:
//!
//! * [`PhysicalMemory`] — a buddy allocator over the machine's frames with
//!   per-frame ownership states ([`FrameKind`]). Free lists are kept in
//!   ascending address order, which reproduces the emergent behaviour the
//!   paper leans on: once memory is defragmented, back-to-back superpage
//!   allocations receive *contiguous* physical frames.
//! * [`Memhog`] — the paper's fragmentation microbenchmark (Sec. 7.1):
//!   unmovable chunks scattered at random until a target fraction of memory
//!   is occupied.
//! * Compaction ([`PhysicalMemory::compact_window`]) — migrates movable
//!   frames out of a candidate superpage window, the way Linux compaction
//!   frees 2 MB blocks for transparent hugepages.
//!
//! # Examples
//!
//! ```
//! use mixtlb_mem::{FrameKind, MemoryConfig, PhysicalMemory};
//! use mixtlb_types::PageSize;
//!
//! let mut mem = PhysicalMemory::new(MemoryConfig::with_bytes(64 << 20));
//! let a = mem.alloc_page(PageSize::Size2M, FrameKind::Movable).unwrap();
//! let b = mem.alloc_page(PageSize::Size2M, FrameKind::Movable).unwrap();
//! // Ascending free lists make consecutive superpages physically adjacent.
//! assert_eq!(b.raw(), a.raw() + 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
mod config;
mod frame;
mod memhog;
mod physmem;

pub use buddy::{AllocError, BuddyAllocator, MAX_ORDER};
pub use config::MemoryConfig;
pub use frame::FrameKind;
pub use memhog::{Memhog, MemhogConfig};
pub use physmem::{CompactionOutcome, MemoryStats, PhysicalMemory};
