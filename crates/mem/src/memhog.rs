//! The paper's `memhog` fragmentation microbenchmark (Sec. 7.1).
//!
//! `memhog(p%)` occupies `p` percent of physical memory with chunks scattered
//! at random addresses, degrading the OS' ability to form superpages. A small
//! share of the pressure is modeled as *unmovable* (kernel-side allocations —
//! slab, page cache metadata — that grow under memory pressure and that
//! compaction cannot migrate); the rest is movable anonymous memory that
//! compaction can work around at a cost.
//!
//! The default chunk geometry and unmovable share are calibration constants:
//! together with the THS compaction budget they reproduce the paper's three
//! regimes (Figure 9): superpages dominate up to ~40% fragmentation, mixed
//! distributions around 60%, mostly small pages at 80%.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mixtlb_types::Pfn;

use crate::frame::FrameKind;
use crate::physmem::PhysicalMemory;

/// Configuration for a [`Memhog`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemhogConfig {
    /// Fraction of total memory to occupy, in `[0, 1)`.
    pub fraction: f64,
    /// Buddy order of each chunk (default 6 → 256 KB).
    pub chunk_order: u8,
    /// Share of chunks pinned as unmovable (default 20%).
    pub unmovable_share: f64,
    /// Random placement attempts per chunk before falling back to the buddy
    /// allocator's choice.
    pub placement_attempts: u32,
    /// Chunks are placed in clusters of this many adjacent chunk slots
    /// (default 1 = uniform scatter, the classic memhog). Larger clusters
    /// model coarse-grained pressure — e.g. hypervisor-level page sharing
    /// and VM working sets — which consumes memory without shredding the
    /// adjacency of what remains free.
    pub cluster: u32,
    /// Cluster size for the *unmovable* share of chunks (default 32).
    /// Real kernels group unmovable allocations into shared pageblocks by
    /// migratetype, so kernel-side pressure pins whole clustered regions
    /// rather than sprinkling un-compactable holes everywhere — which is
    /// why the paper can measure 80+ contiguous superpages even under
    /// substantial fragmentation (Fig. 11).
    pub unmovable_cluster: u32,
    /// RNG seed; `Memhog` is deterministic given the seed.
    pub seed: u64,
}

impl MemhogConfig {
    /// A `memhog` run occupying `fraction` of memory with default geometry.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1)`.
    pub fn with_fraction(fraction: f64) -> MemhogConfig {
        assert!(
            (0.0..1.0).contains(&fraction),
            "memhog fraction must be in [0, 1)"
        );
        MemhogConfig {
            fraction,
            chunk_order: 6,
            unmovable_share: 0.20,
            placement_attempts: 16,
            cluster: 1,
            unmovable_cluster: 32,
            seed: 0x6d65_6d68_6f67, // "memhog"
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> MemhogConfig {
        self.seed = seed;
        self
    }

    /// Sets the cluster size (adjacent chunk slots per placement).
    pub fn clustered(mut self, cluster: u32) -> MemhogConfig {
        assert!(cluster >= 1, "cluster must be at least 1");
        self.cluster = cluster;
        self
    }
}

impl Default for MemhogConfig {
    fn default() -> MemhogConfig {
        MemhogConfig::with_fraction(0.0)
    }
}

/// A live `memhog` footprint: the chunks it allocated, so they can be
/// released.
///
/// # Examples
///
/// ```
/// use mixtlb_mem::{Memhog, MemhogConfig, MemoryConfig, PhysicalMemory};
///
/// let mut mem = PhysicalMemory::new(MemoryConfig::with_bytes(256 << 20));
/// let hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.4));
/// assert!(mem.stats().free_frames < mem.total_frames() * 61 / 100);
/// hog.release(&mut mem);
/// assert_eq!(mem.stats().free_frames, mem.total_frames());
/// ```
#[derive(Debug)]
pub struct Memhog {
    chunks: Vec<(Pfn, u8)>,
}

impl Memhog {
    /// Fragments `mem` per the configuration and returns the footprint.
    pub fn fragment(mem: &mut PhysicalMemory, config: MemhogConfig) -> Memhog {
        let total = mem.total_frames();
        let chunk_frames = 1u64 << config.chunk_order;
        let target_frames = (total as f64 * config.fraction) as u64;
        let n_chunks = target_frames / chunk_frames;
        let slots = total / chunk_frames;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut chunks = Vec::with_capacity(n_chunks as usize);
        let unmovable_target = (config.unmovable_share * n_chunks as f64) as u64;
        let phases = [
            (unmovable_target, FrameKind::Unmovable, config.unmovable_cluster.max(1)),
            (n_chunks - unmovable_target, FrameKind::Movable, config.cluster.max(1)),
        ];
        for (target, kind, cluster) in phases {
            let cluster = u64::from(cluster);
            let mut i = 0u64;
            'phase: while i < target {
                // Pick a cluster start, then fill adjacent slots.
                let mut start = None;
                for _ in 0..config.placement_attempts {
                    let slot = rng.gen_range(0..slots);
                    let base = Pfn::new(slot * chunk_frames);
                    if mem.is_range_free(base, config.chunk_order) {
                        start = Some(slot);
                        break;
                    }
                }
                let Some(start) = start else {
                    // Memory too full for random placement; take what the
                    // buddy allocator gives (or stop when exhausted).
                    match mem.alloc_block(config.chunk_order, kind) {
                        Ok(base) => {
                            chunks.push((base, config.chunk_order));
                            i += 1;
                            continue;
                        }
                        Err(_) => break 'phase,
                    }
                };
                for j in 0..cluster {
                    if i >= target {
                        break;
                    }
                    let slot = start + j;
                    if slot >= slots {
                        break;
                    }
                    let base = Pfn::new(slot * chunk_frames);
                    if mem.alloc_block_at(base, config.chunk_order, kind).is_ok() {
                        chunks.push((base, config.chunk_order));
                        i += 1;
                    }
                }
            }
        }
        Memhog { chunks }
    }

    /// Number of chunks held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Releases every chunk back to the allocator.
    ///
    /// Only valid while no compaction has run since [`Memhog::fragment`]:
    /// compaction may migrate the hog's movable chunks, and (unlike a real
    /// process, whose page table the kernel patches) the hog has no page
    /// table to forward it to the new locations. Experiments that compact
    /// tear down the whole [`PhysicalMemory`] instead of releasing.
    ///
    /// # Panics
    ///
    /// Panics if a chunk is no longer allocated at its original base (i.e.
    /// compaction moved it).
    pub fn release(self, mem: &mut PhysicalMemory) {
        for (base, order) in self.chunks {
            mem.free_block(base, order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    fn memory(frames: u64) -> PhysicalMemory {
        PhysicalMemory::new(MemoryConfig::with_bytes(frames * 4096))
    }

    #[test]
    fn occupies_requested_fraction() {
        let mut mem = memory(1 << 16);
        let _hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.5));
        let used = mem.total_frames() - mem.free_frames();
        let expected = mem.total_frames() / 2;
        assert!(
            used >= expected - 64 && used <= expected,
            "used {used}, expected about {expected}"
        );
    }

    #[test]
    fn zero_fraction_touches_nothing() {
        let mut mem = memory(4096);
        let hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.0));
        assert_eq!(hog.chunk_count(), 0);
        assert_eq!(mem.free_frames(), 4096);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut mem = memory(1 << 14);
            let hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.3).seed(seed));
            let first = hog.chunks.first().copied();
            (hog.chunk_count(), first)
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).1, run(2).1);
    }

    #[test]
    fn fragmentation_destroys_free_superpage_blocks() {
        let mut mem = memory(1 << 16);
        let clean = mem.stats().free_2m_blocks;
        let _hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.4));
        let fragged = mem.stats().free_2m_blocks;
        assert!(
            fragged < clean / 2,
            "expected <{} free 2MB blocks, got {fragged}",
            clean / 2
        );
    }

    #[test]
    fn mixes_movable_and_unmovable_chunks() {
        let mut mem = memory(1 << 16);
        let _hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.5));
        let stats = mem.stats();
        assert!(stats.unmovable_frames > 0);
        // Movable dominates: the default unmovable share is 20%.
        assert!(stats.movable_frames > stats.unmovable_frames * 3);
    }

    #[test]
    fn clustered_chunks_sit_adjacent() {
        let mut mem = memory(1 << 16);
        let hog = Memhog::fragment(
            &mut mem,
            MemhogConfig {
                unmovable_share: 0.0,
                ..MemhogConfig::with_fraction(0.25)
            }
            .clustered(8),
        );
        // Count adjacent chunk pairs: clustering should make most chunks
        // contiguous with a neighbour.
        let mut bases: Vec<u64> = Vec::new();
        let stats = mem.stats();
        assert!(stats.movable_frames > 0);
        // Derive adjacency from the allocator state: walk chunk list.
        let chunk_frames = 64u64;
        let mut adjacent = 0usize;
        let mut total = 0usize;
        // Re-scan physical memory for movable chunk starts.
        let mut f = 0u64;
        while f + chunk_frames <= mem.total_frames() {
            if mem.kind_of(mixtlb_types::Pfn::new(f)).is_movable() {
                bases.push(f);
            }
            f += chunk_frames;
        }
        for pair in bases.windows(2) {
            total += 1;
            if pair[1] == pair[0] + chunk_frames {
                adjacent += 1;
            }
        }
        assert!(total > 0);
        assert!(
            adjacent * 2 > total,
            "clustering should make most chunk slots adjacent: {adjacent}/{total}"
        );
        drop(hog);
    }

    #[test]
    fn unmovable_chunks_cluster_by_default() {
        let mut mem = memory(1 << 16);
        let _hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.4));
        // Unmovable frames should occupy few distinct 2 MB windows
        // relative to their total (migratetype grouping).
        let stats = mem.stats();
        let mut pinned_windows = 0u64;
        for w in 0..mem.total_frames() / 512 {
            let (_, pinned) = mem.window_occupancy(mixtlb_types::Pfn::new(w * 512), 9);
            if pinned > 0 {
                pinned_windows += 1;
            }
        }
        let min_windows = stats.unmovable_frames / 512;
        assert!(
            pinned_windows <= min_windows * 3 + 4,
            "unmovable pressure too scattered: {pinned_windows} windows for {} frames",
            stats.unmovable_frames
        );
    }

    #[test]
    fn release_restores_all_memory() {
        let mut mem = memory(1 << 15);
        let hog = Memhog::fragment(&mut mem, MemhogConfig::with_fraction(0.7));
        hog.release(&mut mem);
        let stats = mem.stats();
        assert_eq!(stats.free_frames, mem.total_frames());
        assert_eq!(stats.unmovable_frames, 0);
        assert_eq!(stats.movable_frames, 0);
    }
}
