//! Property tests for the buddy allocator: no overlap, alignment,
//! conservation of frames, and merge correctness.

use std::collections::HashMap;

use mixtlb_mem::{AllocError, BuddyAllocator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc(u8),
    /// Free the i-th live allocation (modulo the live count).
    Free(usize),
    AllocAt(u64, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..=10).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::Free),
        ((0u64..4096), (0u8..=9)).prop_map(|(b, o)| Op::AllocAt(b, o)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocations_never_overlap_and_frames_are_conserved(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        total in 1024u64..4096,
    ) {
        let mut buddy = BuddyAllocator::new(total);
        let mut live: Vec<(u64, u8)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    match buddy.alloc(order) {
                        Ok(base) => {
                            prop_assert_eq!(base % (1u64 << order), 0, "misaligned block");
                            prop_assert!(base + (1u64 << order) <= total, "out of bounds");
                            live.push((base, order));
                        }
                        Err(AllocError::OutOfMemory) => {
                            prop_assert!(
                                buddy.largest_free_order().is_none_or(|o| o < order),
                                "OutOfMemory although a block of order {} exists", order
                            );
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected {e:?}"))),
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (base, order) = live.swap_remove(i % live.len());
                        buddy.free(base, order);
                    }
                }
                Op::AllocAt(base, order) => {
                    let base = base & !((1u64 << order) - 1);
                    if buddy.alloc_at(base, order).is_ok() {
                        live.push((base, order));
                    }
                }
            }
            // Conservation: free + live allocated frames == total.
            let allocated: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
            prop_assert_eq!(buddy.free_frames() + allocated, total);
            // No two live blocks overlap.
            let mut seen: HashMap<u64, ()> = HashMap::new();
            for &(base, order) in &live {
                for f in base..base + (1u64 << order) {
                    prop_assert!(seen.insert(f, ()).is_none(), "frame {} double-allocated", f);
                }
            }
        }
        // Freeing everything restores a fully free allocator.
        for (base, order) in live {
            buddy.free(base, order);
        }
        prop_assert_eq!(buddy.free_frames(), total);
    }

    #[test]
    fn is_range_free_agrees_with_alloc_at(
        total in 512u64..2048,
        holes in proptest::collection::vec((0u64..2048, 0u8..6), 0..20),
        probe_base in 0u64..2048,
        probe_order in 0u8..9,
    ) {
        let mut buddy = BuddyAllocator::new(total);
        for (b, o) in holes {
            let b = b & !((1u64 << o) - 1);
            let _ = buddy.alloc_at(b, o);
        }
        let probe_base = probe_base & !((1u64 << probe_order) - 1);
        let claimed_free = buddy.is_range_free(probe_base, probe_order);
        let alloc_result = buddy.alloc_at(probe_base, probe_order);
        prop_assert_eq!(claimed_free, alloc_result.is_ok());
    }
}
