//! Fixture self-tests for the workspace lint pass: every rule must fire
//! on its seeded fixture, respect suppression markers and file-kind
//! exemptions, and stay silent on the clean fixture. The final test runs
//! the real `lint_workspace` over this repository — the lint gate CI
//! enforces.

use std::path::Path;

use mixtlb_check::lint::{lint_source, lint_workspace, FileKind, RULES};

const LIB: &str = "crates/fixture/src/demo.rs";
const ROOT: &str = "crates/fixture/src/lib.rs";

fn rules_of(findings: &[mixtlb_check::lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn relaxed_ordering_fires_once_and_respects_the_marker() {
    let src = include_str!("fixtures/relaxed.rs");
    let findings = lint_source(FileKind::Lib, Path::new(LIB), src);
    assert_eq!(rules_of(&findings), ["relaxed-ordering"]);
    assert_eq!(findings[0].line, 6, "the unjustified fetch_add");
}

#[test]
fn panic_rule_catches_unwrap_expect_and_panic_only() {
    let src = include_str!("fixtures/panics.rs");
    let findings = lint_source(FileKind::Lib, Path::new(LIB), src);
    assert_eq!(rules_of(&findings), ["panic", "panic", "panic"]);
    let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, [5, 6, 8], "unwrap, expect, panic! — nothing else");
}

#[test]
fn tlbdevice_impl_without_invalidate_sets_is_flagged() {
    let src = include_str!("fixtures/no_invalidate_sets.rs");
    let findings = lint_source(FileKind::Lib, Path::new(LIB), src);
    assert_eq!(rules_of(&findings), ["invalidate-sets-override"]);
    assert_eq!(findings[0].line, 6, "the Conventional impl header");
    assert!(findings[0].message.contains("Sec. 5.1"));
}

#[test]
fn geometry_literals_fire_outside_types_and_honor_markers() {
    let src = include_str!("fixtures/geometry.rs");
    let findings = lint_source(FileKind::Lib, Path::new(LIB), src);
    assert_eq!(
        rules_of(&findings),
        ["geometry-literal"; 4],
        "4096, 0x20_0000, 1_073_741_824, 262_144 — the justified and \
         non-geometry literals stay silent"
    );
    // The same source inside mixtlb-types is exempt: that is where the
    // named constants live.
    let in_types = lint_source(
        FileKind::Lib,
        Path::new("crates/types/src/geometry.rs"),
        src,
    );
    assert!(in_types.is_empty(), "types crate defines the constants");
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let src = include_str!("fixtures/missing_forbid.rs");
    let findings = lint_source(FileKind::Lib, Path::new(ROOT), src);
    assert_eq!(rules_of(&findings), ["forbid-unsafe"]);
    // A non-root file with the same content is fine.
    let non_root = lint_source(FileKind::Lib, Path::new(LIB), src);
    assert!(non_root.is_empty());
}

#[test]
fn clean_fixture_passes_every_rule() {
    let src = include_str!("fixtures/clean.rs");
    let findings = lint_source(FileKind::Lib, Path::new(ROOT), src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn test_and_compat_files_are_exempt_from_style_rules() {
    // Test code may unwrap and hard-code geometry freely.
    let src = include_str!("fixtures/panics.rs");
    assert!(lint_source(FileKind::Test, Path::new("tests/x.rs"), src).is_empty());
    assert!(lint_source(FileKind::Compat, Path::new("compat/x/src/util.rs"), src).is_empty());
}

#[test]
fn rule_list_is_stable() {
    assert_eq!(
        RULES,
        [
            "relaxed-ordering",
            "panic",
            "invalidate-sets-override",
            "geometry-literal",
            "forbid-unsafe",
        ]
    );
}

#[test]
fn workspace_is_lint_clean() {
    // The acceptance bar: the lint pass runs clean on this repository.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels below the workspace root");
    let report = lint_workspace(root).expect("workspace walk");
    assert!(report.files_checked > 50, "the walk must see the workspace");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.is_clean(),
        "workspace lint findings:\n{}",
        rendered.join("\n")
    );
}
