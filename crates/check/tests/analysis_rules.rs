//! Fixture self-tests for the structural analyzer: every semantic rule
//! must fire on its seeded dirty fixture and stay silent on the paired
//! clean fixture; the SARIF renderer must match its committed golden
//! log byte-for-byte; and the real workspace, under the committed
//! `check-baseline.json`, must analyze clean — the `--analyze` gate CI
//! enforces.

use std::path::{Path, PathBuf};

use mixtlb_check::analysis::{analyze_sources, to_sarif, AnalysisReport, Baseline, SourceFile};
use mixtlb_check::lint::FileKind;

/// Wraps fixture text as a library file of a pseudo-crate, so crate
/// attribution and rule scoping behave as they would on real sources.
fn lib(pseudo_path: &str, text: &str) -> SourceFile {
    SourceFile {
        path: PathBuf::from(pseudo_path),
        kind: FileKind::Lib,
        text: text.to_owned(),
    }
}

fn analyze(sources: &[SourceFile]) -> AnalysisReport {
    analyze_sources(sources)
}

/// Distinct rule identifiers fired over a fixture set, sorted.
fn rules_fired(sources: &[SourceFile]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> =
        analyze(sources).findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn addr_arith_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/addr_arith_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["addr-arith"]);
    let report = analyze(&dirty);
    assert!(
        report.findings.len() >= 2,
        "direct shift and let-propagated mask must both fire: {:?}",
        report.findings
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/addr_arith_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn truncating_cast_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/truncating_cast_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["truncating-cast"]);
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/truncating_cast_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn dead_code_fixture_pair_spans_crates() {
    let dirty = [
        lib(
            "crates/a/src/lib.rs",
            include_str!("fixtures/analysis/dead_code_dirty_a.rs"),
        ),
        lib(
            "crates/b/src/lib.rs",
            include_str!("fixtures/analysis/dead_code_dirty_b.rs"),
        ),
    ];
    assert_eq!(rules_fired(&dirty), ["dead-code"]);
    let report = analyze(&dirty);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert!(f.message.contains("`orphan_probe`"), "{}", f.message);
    assert_eq!(f.path, Path::new("crates/a/src/lib.rs"));
    // `used_probe` survives because crate `b` references it by name.
    let clean = [
        lib(
            "crates/a/src/lib.rs",
            include_str!("fixtures/analysis/dead_code_clean_a.rs"),
        ),
        lib(
            "crates/b/src/lib.rs",
            include_str!("fixtures/analysis/dead_code_clean_b.rs"),
        ),
    ];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn lock_order_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/lock_order_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["lock-order"]);
    let report = analyze(&dirty);
    assert!(
        report.findings[0].message.contains("ABBA"),
        "{}",
        report.findings[0].message
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/lock_order_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
    // The acyclic order is still extracted for `--locks` / the dynamic
    // checker's documentation.
    let clean_report = analyze(&clean);
    assert!(
        clean_report
            .lock_edges
            .iter()
            .any(|e| e.contains("s.alpha -> s.beta")),
        "{:?}",
        clean_report.lock_edges
    );
}

#[test]
fn pagesize_match_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/pagesize_match_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["pagesize-match"]);
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/pagesize_match_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn bare_unwrap_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/bare_unwrap_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["bare-unwrap"]);
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/bare_unwrap_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn lockset_race_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/lockset_race_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["lockset-race"]);
    let report = analyze(&dirty);
    assert!(
        report.findings.len() >= 4,
        "inconsistent pair, unlocked write, and broken helper entry set \
         must all fire: {:?}",
        report.findings
    );
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("inconsistent locksets")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("no lock held")),
        "{msgs:?}"
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/lockset_race_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn atomic_ordering_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/atomic_ordering_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["atomic-ordering"]);
    let report = analyze(&dirty);
    assert!(
        report.findings.len() >= 3,
        "both publication halves and the split RMW must fire: {:?}",
        report.findings
    );
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("justification marker")),
        "the contradicted allow(relaxed-ordering) marker must be called \
         out: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("load then store")),
        "{msgs:?}"
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/atomic_ordering_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn hot_path_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/hot_path_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["hot-path"]);
    let report = analyze(&dirty);
    assert!(
        report.findings.len() >= 3,
        "format!, clone(), and Vec::new in the hot helper must fire: {:?}",
        report.findings
    );
    // The identical machinery in the non-hot `diagnostics` must NOT fire:
    // every finding names the hot helper.
    assert!(
        report.findings.iter().all(|f| f.message.contains("`Engine::resolve`")),
        "{:?}",
        report.findings
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/hot_path_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn bit_pack_overflow_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/bit_pack_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["bit-pack-overflow"]);
    let report = analyze(&dirty);
    assert!(
        report.findings.len() >= 3,
        "slot overflow (via the kind_code summary), field overlap, and \
         carrier escape must all fire: {:?}",
        report.findings
    );
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("overlapping bit")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("slot is only")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("64-bit carrier")),
        "{msgs:?}"
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/bit_pack_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn tag_range_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/tag_range_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["tag-range"]);
    let report = analyze(&dirty);
    assert!(report.findings.len() >= 2, "{:?}", report.findings);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("`Vmid`") && m.contains("bits: 12")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("possibly-negative")),
        "{msgs:?}"
    );
    // Mask, checked-constructor branch, and full-width modulo wrap all
    // prove the range.
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/tag_range_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn index_bound_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/index_bound_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["index-bound"]);
    let report = analyze(&dirty);
    assert!(
        report.findings.len() >= 3,
        "the off-by-one modulo, the unbounded hash, and the local-table \
         slip must all fire: {:?}",
        report.findings
    );
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("may escape fixed 8-slot")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("not provably in bounds")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("3-slot")),
        "{msgs:?}"
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/index_bound_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

#[test]
fn blocking_in_lock_fixture_pair() {
    let dirty = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/blocking_dirty.rs"),
    )];
    assert_eq!(rules_fired(&dirty), ["blocking-in-lock"]);
    let report = analyze(&dirty);
    assert!(
        report.findings.len() >= 3,
        "the direct semaphore wait, the push through the private helper, \
         and the permit acquire under the read lock must all fire: {:?}",
        report.findings
    );
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains(".wait()")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("enqueue")),
        "the call into the blocking helper must be flagged at the locked \
         call site: {msgs:?}"
    );
    let clean = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/blocking_clean.rs"),
    )];
    assert_eq!(rules_fired(&clean), [] as [&str; 0]);
}

/// The shipped pre-PR-8 bug, shape-for-shape: `Asid::new(id as u16 + 1)`
/// plus the unmasked 16-bit tag packed at bit 52. The value rules this
/// PR adds must catch both halves — the whole motivation for the layer.
#[test]
fn pre_pr8_asid_overflow_regression_is_flagged() {
    let sources = [lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/asid_overflow_regression.rs"),
    )];
    assert_eq!(rules_fired(&sources), ["bit-pack-overflow", "tag-range"]);
    let report = analyze(&sources);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("`Asid`") && m.contains("65536")),
        "the truncated-and-offset id must be flagged at the constructor \
         call: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("64-bit carrier")),
        "the unmasked tag in the entry packing must be flagged: {msgs:?}"
    );
}

/// The per-file parse fans out across worker threads; findings must
/// nevertheless come back in deterministic (file, line) order. Analyze
/// the same multi-file, multi-rule workload repeatedly and require
/// byte-identical finding lists.
#[test]
fn finding_order_is_stable_across_parallel_runs() {
    let sources = [
        lib(
            "crates/a/src/lib.rs",
            include_str!("fixtures/analysis/lockset_race_dirty.rs"),
        ),
        lib(
            "crates/b/src/lib.rs",
            include_str!("fixtures/analysis/atomic_ordering_dirty.rs"),
        ),
        lib(
            "crates/c/src/lib.rs",
            include_str!("fixtures/analysis/hot_path_dirty.rs"),
        ),
        lib(
            "crates/d/src/lib.rs",
            include_str!("fixtures/analysis/addr_arith_dirty.rs"),
        ),
        lib(
            "crates/e/src/lib.rs",
            include_str!("fixtures/analysis/truncating_cast_dirty.rs"),
        ),
        lib(
            "crates/f/src/lib.rs",
            include_str!("fixtures/analysis/lock_order_dirty.rs"),
        ),
    ];
    let reference: Vec<String> =
        analyze(&sources).findings.iter().map(|f| f.to_string()).collect();
    assert!(!reference.is_empty());
    for run in 0..8 {
        let again: Vec<String> =
            analyze(&sources).findings.iter().map(|f| f.to_string()).collect();
        assert_eq!(reference, again, "finding order drifted on run {run}");
    }
}

/// The SARIF log for the addr-arith dirty fixture, byte-for-byte. The
/// fingerprints inside are line-insensitive, so this golden only churns
/// when the rule's *output contract* changes — regenerate deliberately
/// with `UPDATE_SARIF_GOLDEN=1 cargo test -p mixtlb-check sarif_golden`.
#[test]
fn sarif_golden_is_stable() {
    let report = analyze(&[lib(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/analysis/addr_arith_dirty.rs"),
    )]);
    let sarif = to_sarif(&report);
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/analysis/addr_arith_dirty.sarif");
    if std::env::var_os("UPDATE_SARIF_GOLDEN").is_some() {
        std::fs::write(&golden_path, &sarif).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path).expect("read golden");
    assert_eq!(
        sarif, golden,
        "SARIF drifted from the committed golden; rerun with \
         UPDATE_SARIF_GOLDEN=1 if the change is intentional"
    );
}

/// The gate CI runs: the workspace itself, under the committed baseline,
/// has zero findings. If this fails, fix the finding in code — or, for
/// a deliberate acceptance, run `--analyze . --update-baseline` and
/// commit the diff.
#[test]
fn workspace_is_analysis_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut report =
        mixtlb_check::analysis::analyze_workspace(&root).expect("walk workspace");
    let baseline =
        Baseline::load(&root.join("check-baseline.json")).expect("read baseline");
    report
        .apply_baseline(&baseline)
        .expect("no fingerprint collisions in the workspace findings");
    assert!(
        report.is_clean(),
        "non-baselined analysis findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.stats.files > 100, "workspace walk looks truncated");
    // Pin that the interprocedural passes actually ran over the real
    // workspace, not a degenerate front end: the shared-state model sees
    // the concurrent structs, the condensation is non-trivial, and the
    // hot roots reach a real slice of the call graph.
    assert!(report.stats.structs > 50, "struct outline looks truncated");
    assert!(
        report.stats.shared_structs >= 1,
        "SharedCache/SmpMachine should register as cross-thread shared"
    );
    assert!(report.stats.sccs > 100, "condensation looks degenerate");
    assert!(
        report.stats.hot_fns > 20,
        "translate_batch/SmpCore::run should reach a real call-graph slice"
    );
    // The abstract interpreter must be summarizing a real slice of the
    // workspace (79 functions at the time of writing), not bailing out
    // to `Top` everywhere.
    assert!(
        report.stats.summarized_fns > 40,
        "value summaries collapsed: only {} functions summarized",
        report.stats.summarized_fns
    );
}
