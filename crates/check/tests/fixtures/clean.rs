#![forbid(unsafe_code)]
// Lint fixture: a crate root that satisfies every rule.
// Never compiled — driven through `lint_source` by tests/lint_rules.rs.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    // lint: allow(relaxed-ordering) — statistics counter read post-join.
    counter.fetch_add(1, Ordering::Relaxed)
}

pub fn safe_div(a: u64, b: u64) -> Option<u64> {
    a.checked_div(b)
}
