// Lint fixture: a crate root without `#![forbid(unsafe_code)]`.
// Never compiled — driven through `lint_source` by tests/lint_rules.rs,
// which presents it under a `src/lib.rs` path.

pub fn noop() {}
