// Lint fixture: hard-coded page-geometry constants.
// Never compiled — driven through `lint_source` by tests/lint_rules.rs.

pub fn offsets(addr: u64) -> (u64, u64, u64, u64) {
    let base = addr / 4096;
    let super2m = addr & (0x20_0000 - 1);
    let super1g = addr % 1_073_741_824;
    let pages_per_gig = 262_144;
    (base, super2m, super1g, pages_per_gig)
}

pub fn justified(addr: u64) -> u64 {
    // lint: allow(geometry-literal) — documenting the raw encoding.
    addr / 4096
}

pub fn unrelated() -> u64 {
    // Not a geometry value: must not fire.
    4095 + 2048
}
