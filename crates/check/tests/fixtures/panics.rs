// Lint fixture: panic sites in library code.
// Never compiled — driven through `lint_source` by tests/lint_rules.rs.

pub fn bad(opt: Option<u64>, res: Result<u64, String>) -> u64 {
    let a = opt.unwrap();
    let b = res.expect("must be present");
    if a + b == 0 {
        panic!("impossible");
    }
    a + b
}

pub fn fine(opt: Option<u64>) -> u64 {
    // `unwrap_or*` combinators are error handling, not panics.
    opt.unwrap_or_else(|| 0).unwrap_or(7)
}

pub fn justified(opt: Option<u64>) -> u64 {
    // lint: allow(panic) — invariant established two lines above.
    opt.unwrap()
}
