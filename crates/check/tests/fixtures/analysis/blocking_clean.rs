//! Clean fixture for `blocking-in-lock`: every blocking call happens
//! with an empty lockset — the guard's scope ends first, the lock is
//! statement-scoped, or no lock is ever taken near the queue.

use std::sync::Mutex;

struct Pipeline {
    feed: BoundedQueue<u64>,
}

/// The wait happens after the guard's block ends.
fn refill(state: &Mutex<u64>, slots: &Semaphore) {
    {
        let g = state.lock();
        let _ = g;
    }
    slots.wait();
}

impl Pipeline {
    /// The lock protects only the counter bump; the push runs unlocked.
    fn publish(&self, table: &Mutex<u64>, item: u64) {
        {
            let g = table.lock();
            let _ = g;
        }
        self.feed.push(item);
    }
}

/// A statement-expression lock is released at the `;` and does not pin
/// the lockset over the wait.
fn bump(state: &Mutex<u64>, slots: &Semaphore) {
    *state.lock() += 1;
    slots.wait();
}

/// Draining a queue parameter with no lock in sight is the normal
/// consumer loop.
fn drain(q: &BoundedQueue<u64>) -> u64 {
    q.pop()
}
