//! Regression fixture: the exact pre-PR-8 SMP core-id mapping. The
//! caller truncated and offset an unbounded id straight into the
//! asserting constructor — silent truncation past 65535 and a panic at
//! id 4095 — and the companion entry packing let the unmasked 16-bit
//! tag bleed past the 64-bit carrier. `tag-range` must flag the
//! constructor call and `bit-pack-overflow` the packing.

/// The 12-bit hardware tag, as `mixtlb-types` declares it.
// bits: 12
struct Asid(u16);

impl Asid {
    /// The pre-PR-8 constructor: asserts instead of wrapping.
    fn new(raw: u16) -> Asid {
        assert!(raw < 4096, "ASID out of the 12-bit PCID range");
        Asid(raw)
    }
}

/// The shipped bug, shape-for-shape: `id as u16 + 1` reaches 65536
/// before the 12-bit check, so ids past 4094 panic or alias.
fn asid_for_core(id: usize) -> Asid {
    Asid::new(id as u16 + 1)
}

/// The companion packing: a 16-bit tag shifted to bit 52 reaches bit
/// 67 — past the `u64` carrier — unless it is masked to 12 bits first.
fn entry_key(asid: u16, vpn: u64) -> u64 {
    ((asid as u64) << 52) | (vpn & 0xFFF_FFFF)
}
