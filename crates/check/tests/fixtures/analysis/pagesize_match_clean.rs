//! Clean fixture for `pagesize-match`: every `PageSize` variant listed,
//! and a wildcard over an unrelated enum stays out of scope.

/// Exhaustive size dispatch — a new variant breaks the build here.
fn pages(size: PageSize) -> u64 {
    match size {
        PageSize::Size4K => 1,
        PageSize::Size2M => 512,
        PageSize::Size1G => 262_144,
    }
}

/// Wildcards over non-`PageSize` scrutinees are fine.
fn or_zero(x: Option<u64>) -> u64 {
    match x {
        Some(v) => v,
        _ => 0,
    }
}
