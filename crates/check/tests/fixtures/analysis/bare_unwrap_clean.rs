//! Clean fixture for `bare-unwrap`: the library path propagates the
//! option; unwraps inside `#[cfg(test)]` are masked out.

/// Surfaces emptiness to the caller.
fn head(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = [1u64];
        assert_eq!(super::head(&xs).unwrap(), 1);
    }
}
