//! Dirty fixture for `bare-unwrap`: a `.unwrap()` in non-test library
//! code. No inline suppression exists for this rule — only the
//! committed baseline.

/// Panics on an empty slice instead of surfacing the case.
fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}
