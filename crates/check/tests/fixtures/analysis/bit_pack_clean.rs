//! Clean fixture for `bit-pack-overflow`: the same packings with every
//! field masked or asserted into its slot, plus the flag-union shape
//! the rule must not mistake for a packing.

/// Each field is masked to its slot before packing; the open-ended PFN
/// payload rides in the top slot.
fn pack_entry(pfn: u64, kind: u64) -> u64 {
    (pfn << 6) | (kind & 0x3F)
}

/// An assert bounds the tag just as well as a mask does.
fn pack_asserted(base: u64, code: u64) -> u64 {
    assert!(code < 16, "code overflows its 4-bit slot");
    (base << 4) | code
}

/// A plain flag union has a single shift position — not a packing.
fn flag_union(flags: u64) -> u64 {
    flags | 0x1 | 0x2
}
