//! Dirty fixture for `pagesize-match`: a size dispatch hiding variants
//! behind a wildcard — adding a fourth page size would silently fall
//! into the default instead of breaking the build here.

/// Returns 4 KB pages per mapping of `size`.
fn pages(size: PageSize) -> u64 {
    match size {
        PageSize::Size4K => 1,
        _ => 512,
    }
}
