//! Clean fixture for `truncating-cast`: narrowing non-address integers
//! is fine, and checked conversion of raw bits is the endorsed shape.

/// A plain count may narrow.
fn ways(ways: usize) -> u32 {
    ways as u32
}

/// Checked conversion keeps overflow an error, not silent bit loss.
fn low_bits(pfn: Pfn) -> Option<u32> {
    u32::try_from(pfn.raw()).ok()
}
