//! Dirty fixture for `blocking-in-lock`: a semaphore wait under a held
//! `Mutex`, a bounded-queue push reached through a private helper with
//! the table lock held, and a permit acquire under a read lock.

use std::sync::{Mutex, RwLock};

struct Pipeline {
    feed: BoundedQueue<u64>,
}

/// BUG 1: waits on the semaphore while the state lock is held — the
/// signalling side may need the same lock to make progress.
fn refill(state: &Mutex<u64>, slots: &Semaphore) {
    let g = state.lock();
    slots.wait();
    let _ = g;
}

impl Pipeline {
    /// Blocks when the queue is full.
    fn enqueue(&self, item: u64) {
        self.feed.push(item);
    }

    /// BUG 2: the blocking push is reached with the table lock held —
    /// only through the private helper above.
    fn publish(&self, table: &Mutex<u64>, item: u64) {
        let g = table.lock();
        self.enqueue(item);
        let _ = g;
    }
}

/// BUG 3: acquiring a permit while the map's read lock is held.
fn reserve(map: &RwLock<u64>, permits: &Semaphore) {
    let g = map.read();
    let p = permits.acquire();
    let _ = (g, p);
}
