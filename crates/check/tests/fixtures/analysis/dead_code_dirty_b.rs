//! Dirty fixture for `dead-code`, crate `b`: references `used_probe`
//! cross-crate so only `orphan_probe` in crate `a` stays unreferenced.

/// Private, so rustc's own `dead_code` lint owns it — the analyzer
/// only polices *exported* symbols.
fn entry() -> u64 {
    used_probe()
}
