//! The disciplined twin of `atomic_ordering_dirty.rs`: the publication
//! pairs `Release` with `Acquire`, and the counter uses a single
//! `fetch_add` RMW instead of a split load/store.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Mailbox {
    seq: AtomicU64,
    delivered: AtomicU64,
    payload: u64,
}

impl Mailbox {
    fn publish(&mut self, value: u64) {
        self.payload = value;
        self.seq.store(1, Ordering::Release);
    }

    fn consume(&self) -> u64 {
        if self.seq.load(Ordering::Acquire) == 1 {
            return self.payload;
        }
        0
    }

    fn bump_delivered(&self) {
        // lint: allow(relaxed-ordering) — pure counter, read after join
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
}
