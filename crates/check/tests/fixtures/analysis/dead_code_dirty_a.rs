//! Dirty fixture for `dead-code`, crate `a`: one exported function is
//! referenced from crate `b`, the other from nowhere in the workspace.

/// Referenced cross-crate by `entry` in the `b` fixture.
pub fn used_probe() -> u64 {
    7
}

/// No caller and no name reference anywhere — must be flagged.
pub fn orphan_probe() -> u64 {
    8
}
