//! Seeded hot-path bugs: per-event allocation and formatting inside a
//! helper reachable from the `translate_batch` hot root. Expected
//! findings, all in `resolve`:
//!   1. `format!` builds a key string per translated address.
//!   2. `.clone()` copies the name table per event.
//!   3. `Vec::new` allocates a scratch buffer per event.
//! `diagnostics` contains the same machinery but is only reachable from
//! the non-hot `report`, so it must NOT fire — that is the scoping the
//! rule's downward call-graph walk provides.

pub struct Engine {
    names: Vec<String>,
}

impl Engine {
    fn translate_batch(&mut self, vpns: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(vpns.len());
        for &vpn in vpns {
            out.push(self.resolve(vpn));
        }
        out
    }

    fn resolve(&mut self, vpn: u64) -> u64 {
        let key = format!("vpn-{vpn}");
        let cached = self.names.clone();
        let mut scratch: Vec<u64> = Vec::new();
        scratch.push(vpn);
        (key.len() as u64) + (cached.len() as u64) + scratch[0]
    }

    fn diagnostics(&self) -> String {
        format!("{} names interned", self.names.len())
    }

    fn report(&self) -> String {
        self.diagnostics()
    }
}
