//! The disciplined twin of `lockset_race_dirty.rs`: every plain-field
//! write of the shared struct happens under the same lock — directly,
//! through a private helper whose entry lockset is non-empty at every
//! call site, or through a guard-returning accessor — or under `&mut
//! self`, which is exclusive access and needs no lock.

use std::sync::{Mutex, MutexGuard};

pub struct ShardStats {
    m: Mutex<u64>,
    hits: u64,
    epoch: u64,
}

impl ShardStats {
    fn record_hit(&self) {
        let _g = self.m.lock();
        self.hits += 1;
    }

    fn record_probe_hit(&self) {
        let _g = self.m.lock();
        self.hits += 1;
    }

    fn guard(&self) -> MutexGuard<'_, u64> {
        self.m.lock()
    }

    fn tick(&self) {
        let _g = self.guard();
        self.epoch += 1;
    }

    fn reset(&mut self) {
        self.hits = 0;
        self.epoch = 0;
    }
}
