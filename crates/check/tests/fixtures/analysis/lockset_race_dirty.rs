//! Seeded lockset-race bugs: a cross-thread-shared struct (it owns
//! `Mutex` fields) whose plain counters are written under inconsistent
//! or empty locksets. Expected findings:
//!   1+2. `hits` is written under `alpha` in one method and `beta` in
//!        another — the intersection over all write sites is empty, so
//!        both sites fire (Eraser discipline).
//!   3.   `epoch` is written in a `&self` method with no lock at all.
//!   4.   `evictions` is written in a private helper whose entry lockset
//!        collapses to empty because one caller skips the lock.

use std::sync::Mutex;

pub struct ShardStats {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
    hits: u64,
    epoch: u64,
    evictions: u64,
}

impl ShardStats {
    fn record_hit(&self) {
        let _g = self.alpha.lock();
        self.hits += 1;
    }

    fn record_hit_alt(&self) {
        let _g = self.beta.lock();
        self.hits += 1;
    }

    fn bump_epoch(&self) {
        self.epoch += 1;
    }

    fn note_eviction(&self) {
        self.evictions += 1;
    }

    fn evict(&self) {
        let _g = self.alpha.lock();
        self.note_eviction();
    }

    fn evict_unlocked(&self) {
        self.note_eviction();
    }
}
