//! Clean fixture for `addr-arith`: the same geometry routed through the
//! typed `mixtlb-types` helpers, plus the closure-pipe and plain-integer
//! shapes the rule must not confuse with masks.

/// The typed helper owns the shift/mask; its result is a plain index.
fn slot_of(vpn: Vpn) -> usize {
    vpn.table_index(1)
}

/// Closure parameter bars are delimiters, not binary ORs, even with a
/// raw-tainted body.
fn host_of(gpa: PhysAddr) -> Option<u64> {
    lookup(gpa).and_then(|h| translate(gpa.raw()))
}

/// Arithmetic on non-address integers is out of scope.
fn ways_mask(ways: usize) -> usize {
    (ways << 1) - 1
}
