//! Dirty fixture for `tag-range`: two seeded bugs against a 12-bit
//! tag type — an unbounded id narrowed and offset straight into the
//! constructor, and a possibly-negative delta reaching the tag.

/// A 12-bit hardware tag, declared the way `mixtlb-types` does it.
// bits: 12
struct Vmid(u16);

/// BUG 1: the space id is truncated and offset with no reduction —
/// ids past 4094 overflow the declared 12-bit range.
fn vmid_for(space: usize) -> Vmid {
    Vmid(space as u16 + 1)
}

/// BUG 2: the decrement may go below zero before it reaches the tag.
fn vmid_prev(code: u16) -> Vmid {
    let v = (code & 0xFF) - 1;
    Vmid(v)
}
