//! Clean fixture for `index-bound`: modulo reduction to the exact
//! capacity, a mask to the index space, and an assert-proved bound.

struct SetArray {
    slots: [u64; 8],
}

impl SetArray {
    /// Reduced modulo the capacity: always in bounds.
    fn read(&self, probe: usize) -> u64 {
        self.slots[probe % 8]
    }

    /// Masked to the 3-bit index space.
    fn read_masked(&self, probe: usize) -> u64 {
        self.slots[probe & 0x7]
    }
}

/// An assert proves the bound for an otherwise-opaque index.
fn pick(idx: usize) -> u64 {
    assert!(idx < 3, "index escapes the code table");
    let table = [0u64; 3];
    table[idx]
}
