//! Dirty fixture for `truncating-cast`: a raw address value narrowed
//! with `as`, silently dropping high bits.

/// Drops bits 32.. of the frame number without a check.
fn low_bits(pfn: Pfn) -> u32 {
    pfn.raw() as u32
}
