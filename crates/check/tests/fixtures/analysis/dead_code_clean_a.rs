//! Clean fixture for `dead-code`, crate `a`: every exported symbol has a
//! cross-crate reference.

/// Referenced by `entry` in the `b` fixture.
pub fn used_probe() -> u64 {
    7
}
