//! Clean fixture for `tag-range`: the three sound constructor shapes —
//! a mask to the declared width, a branch-narrowed checked
//! constructor, and the full-width modulo wrap `Asid::for_index` uses.

/// A 12-bit hardware tag, declared the way `mixtlb-types` does it.
// bits: 12
struct Vmid(u16);

/// Masked to the declared width before construction.
fn vmid_for(space: usize) -> Vmid {
    Vmid((space & 0xFFF) as u16)
}

/// The checked constructor's branch proves the range.
fn vmid_checked(raw: u16) -> Option<Vmid> {
    if raw < 4095 {
        return Some(Vmid(raw + 1));
    }
    None
}

/// Reduced modulo the non-zero tag space in full `usize` width.
fn vmid_wrap(index: usize) -> Vmid {
    Vmid((index % 4095) as u16 + 1)
}
