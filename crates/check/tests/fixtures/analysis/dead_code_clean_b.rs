//! Clean fixture for `dead-code`, crate `b`: the cross-crate caller that
//! keeps crate `a`'s export alive.

/// Private driver; references `used_probe` across the crate boundary.
fn entry() -> u64 {
    used_probe()
}
