//! Clean fixture for `lock-order`: every multi-lock function acquires
//! in the same global order, so the acquisition graph is acyclic (the
//! edges still appear in the extracted order for `--locks`).

/// Acquires `alpha` then `beta`.
fn forward(s: &Shards) {
    let _a = s.alpha.lock();
    let _b = s.beta.lock();
}

/// Same order from a second site: one more edge, still no cycle.
fn also_forward(s: &Shards) {
    let _a = s.alpha.lock();
    let _b = s.beta.lock();
}
