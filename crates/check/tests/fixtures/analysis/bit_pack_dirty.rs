//! Dirty fixture for `bit-pack-overflow`: three seeded packing bugs —
//! a field wider than its slot (through an interprocedural return
//! summary), two fields with overlapping bit ranges, and a shifted
//! field that reaches past the 64-bit carrier.

/// Returns a 6-bit kind code — the summary `[0, 63]` flows into the
/// packing below.
fn kind_code(raw: u64) -> u64 {
    raw & 0x3F
}

/// BUG 1: the kind code needs 6 bits but the slot below the PFN shift
/// is only 4 bits wide, so kinds 16..=63 corrupt the PFN.
fn pack_entry(pfn: u64) -> u64 {
    (pfn << 4) | kind_code(pfn)
}

/// BUG 2: the shifted code occupies bits 2..=5 and the low field bits
/// 0..=2 — the or corrupts both at bit 2.
fn pack_overlapping(code: u64, low: u64) -> u64 {
    let c = code & 0xF;
    let l = low & 0x7;
    (c << 2) | l
}

/// BUG 3: a 5-bit generation shifted to bit 60 reaches bit 64 — past
/// the end of the `u64` carrier.
fn stale_key(generation: u64, frame: u64) -> u64 {
    let g = generation & 0x1F;
    (g << 60) | (frame & 0xFFF)
}
