//! The disciplined twin of `hot_path_dirty.rs`: the batch loop reuses a
//! caller-provided output buffer and a pre-sized scratch field, and the
//! one formatting helper is `#[cold]` — the same unlikely-path hint the
//! compiler uses, which the hot-path walk trusts and does not enter.

pub struct Engine {
    scratch: Vec<u64>,
}

impl Engine {
    fn translate_batch(&mut self, vpns: &[u64], out: &mut Vec<u64>) {
        out.clear();
        for &vpn in vpns {
            let t = self.resolve(vpn);
            out.push(t);
        }
    }

    fn resolve(&mut self, vpn: u64) -> u64 {
        if vpn == 0 {
            let _m = self.fault_message(vpn);
        }
        self.scratch.push(vpn);
        vpn ^ 0xfff
    }

    #[cold]
    fn fault_message(&self, vpn: u64) -> String {
        format!("fault at vpn {vpn}")
    }
}
