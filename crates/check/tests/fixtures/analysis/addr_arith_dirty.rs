//! Dirty fixture for `addr-arith`: open-coded page geometry on raw
//! address bits. Both functions below must fire — one directly on a
//! `.raw()` call, one through a `let`-bound raw local.

/// Re-implements `Vpn::table_index` by hand.
fn slot_of(vpn: Vpn) -> u64 {
    (vpn.raw() >> 9) & 0x1FF
}

/// Taint flows through the local binding: `bits` carries raw bits.
fn page_base(pa: PhysAddr) -> u64 {
    let bits = pa.raw();
    bits & !0xFFF
}
