//! Dirty fixture for `lock-order`: two functions acquire the same pair
//! of locks in opposite orders — the classic ABBA deadlock shape the
//! static acquisition graph must reject.

/// Acquires `alpha` then `beta`.
fn forward(s: &Shards) {
    let _a = s.alpha.lock();
    let _b = s.beta.lock();
}

/// Acquires `beta` then `alpha` — closes the cycle.
fn backward(s: &Shards) {
    let _b = s.beta.lock();
    let _a = s.alpha.lock();
}
