//! Seeded atomic-ordering bugs around a message-passing mailbox.
//! Expected findings:
//!   1. `publish` writes the plain `payload` field and then stores the
//!      `seq` flag with `Relaxed` — a release-free publication. The
//!      justification marker above the store claims independence, so the
//!      finding also calls out the contradicted marker.
//!   2. `consume` loads `seq` with `Relaxed` and then reads `payload` —
//!      the acquire-free half of the same publication.
//!   3. `bump_delivered` updates `delivered` as a separate load then
//!      store: a lost-update window; should be a `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Mailbox {
    seq: AtomicU64,
    delivered: AtomicU64,
    payload: u64,
}

impl Mailbox {
    fn publish(&mut self, value: u64) {
        self.payload = value;
        // lint: allow(relaxed-ordering) — flag claimed independent of payload
        self.seq.store(1, Ordering::Relaxed);
    }

    fn consume(&self) -> u64 {
        if self.seq.load(Ordering::Relaxed) == 1 {
            return self.payload;
        }
        0
    }

    fn bump_delivered(&self) {
        let d = self.delivered.load(Ordering::Relaxed);
        self.delivered.store(d + 1, Ordering::Relaxed);
    }
}
