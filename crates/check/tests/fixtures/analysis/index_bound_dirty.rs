//! Dirty fixture for `index-bound`: three seeded bugs against fixed
//! storage — an off-by-one modulo, a completely unbounded hash index,
//! and an inclusive-bound slip on a local lookup table.

struct SetArray {
    slots: [u64; 8],
}

impl SetArray {
    /// BUG 1: the reduction is `% 9`, so the index still reaches 8 —
    /// one past the last slot.
    fn read(&self, probe: usize) -> u64 {
        let idx = probe % 9;
        self.slots[idx]
    }

    /// BUG 2: an unbounded hash indexes the fixed store directly.
    fn read_hashed(&self, probe: u64) -> u64 {
        self.slots[hash_of(probe)]
    }
}

/// BUG 3: the classic inclusive-bound slip — a 3-entry table indexed
/// modulo 4.
fn last_code(seq: usize) -> u64 {
    let table = [0u64; 3];
    let idx = seq % 4;
    table[idx]
}
