// Lint fixture: one unjustified `Ordering::Relaxed`, one justified.
// Never compiled — driven through `lint_source` by tests/lint_rules.rs.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn justified(c: &AtomicU64) -> u64 {
    // lint: allow(relaxed-ordering) — statistics counter read post-join.
    c.fetch_add(1, Ordering::Relaxed)
}
