// Lint fixture: a `TlbDevice` impl that forgets `invalidate_sets`.
// Never compiled — driven through `lint_source` by tests/lint_rules.rs.

pub struct Conventional;

impl TlbDevice for Conventional {
    fn lookup(&mut self) -> bool {
        false
    }
}

pub struct Mirrored;

impl TlbDevice for Mirrored {
    fn lookup(&mut self) -> bool {
        true
    }

    fn invalidate_sets(&self, sets: u64) -> u64 {
        sets
    }
}

// An unrelated trait impl must not trip the rule.
impl Clone for Conventional {
    fn clone(&self) -> Self {
        Conventional
    }
}
