//! Model-checking the *real* shared LLC under the interleaving explorer,
//! plus lock-discipline fixtures for the lock-order analysis.
//!
//! These tests compile `mixtlb-cache` with its `model` feature (see this
//! crate's dev-dependencies): the LLC's shard mutexes and statistics
//! atomics become instrumented schedule points, so the explorer can drive
//! every bounded interleaving of concurrent `SharedCache::access` calls
//! and check the module's central claim — contents and statistics are a
//! function of *which* lines were accessed, never of the order cores
//! interleaved.

use std::sync::Arc;

use mixtlb_cache::{SharedCache, SharedCacheConfig};
use mixtlb_check::sched::{explore, Config, FailureKind, Sim};
use mixtlb_check::sync::instrumented::Mutex;
use mixtlb_types::PhysAddr;

#[test]
fn disjoint_shard_traffic_is_clean_exhaustively() {
    // Two cores touching lines that hash to different shards: no shared
    // lock, every interleaving must produce the same (all-cold) totals.
    let report = explore(&Config::exhaustive(), |sim: &mut Sim| {
        let llc = Arc::new(SharedCache::new(SharedCacheConfig::tiny()));
        for t in 0..2u64 {
            let llc = Arc::clone(&llc);
            sim.thread(&format!("core{t}"), move || {
                llc.access(PhysAddr::new(t * 64));
            });
        }
        sim.finally(move || {
            let s = llc.stats();
            assert_eq!(s.hits + s.misses, 2);
            assert_eq!(s.misses, 2, "disjoint cold lines must both miss");
            assert_eq!(s.total_cycles, 2 * 110);
        });
    });
    assert!(report.complete, "tiny scenario must be exhaustible");
    assert!(report.schedules > 1, "two cores have real choice points");
    report.assert_clean();
}

#[test]
fn same_shard_contention_totals_are_order_independent() {
    // Both cores hammer the *same* line: whoever arrives first misses and
    // fills, the other hits — but the totals (1 miss, 1 hit, 120 cycles)
    // are identical under every schedule. This is exactly the property
    // that lets the SMP engine treat LLC latency as a stall estimate
    // without breaking parallel-replay determinism.
    let report = explore(&Config::exhaustive(), |sim: &mut Sim| {
        let llc = Arc::new(SharedCache::new(SharedCacheConfig::tiny()));
        for t in 0..2u64 {
            let llc = Arc::clone(&llc);
            sim.thread(&format!("core{t}"), move || {
                llc.access(PhysAddr::new(0x40));
            });
        }
        sim.finally(move || {
            let s = llc.stats();
            assert_eq!((s.hits, s.misses), (1, 1));
            assert_eq!(s.total_cycles, 110 + 10);
        });
    });
    assert!(report.complete);
    report.assert_clean();
}

#[test]
fn consistent_lock_order_is_clean() {
    // Two mutexes, both threads acquire in the same (id) order: no cycle
    // in the held→acquired edges, no deadlock — the discipline the LLC's
    // one-lock-at-a-time sharding enforces by construction.
    let report = explore(&Config::exhaustive(), |sim: &mut Sim| {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        for t in 0..2 {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            sim.thread(&format!("t{t}"), move || {
                let mut ga = a.lock().unwrap_or_else(|e| e.into_inner());
                let mut gb = b.lock().unwrap_or_else(|e| e.into_inner());
                *ga += 1;
                *gb += 1;
            });
        }
        sim.finally(move || {
            assert_eq!(*a.lock().unwrap_or_else(|e| e.into_inner()), 2);
            assert_eq!(*b.lock().unwrap_or_else(|e| e.into_inner()), 2);
        });
    });
    assert!(report.complete);
    report.assert_clean();
}

#[test]
fn opposite_lock_order_is_flagged_as_inversion() {
    // The classic AB/BA pattern. Even on schedules where the race never
    // materializes (one thread runs to completion first), the execution's
    // acquisition edges contain the a→b and b→a cycle — the analysis
    // flags the *hazard*, not just a lucky deadlock.
    let report = explore(&Config::exhaustive(), |sim: &mut Sim| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            sim.thread("ab", move || {
                let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
                let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
            });
        }
        sim.thread("ba", move || {
            let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
            let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
        });
    });
    let failure = report.failure.expect("AB/BA must be flagged");
    assert_eq!(failure.kind, FailureKind::LockOrderInversion);
    assert!(
        failure.message.contains("mutex ids"),
        "inversion report should name the cycle: {}",
        failure.message
    );
}
