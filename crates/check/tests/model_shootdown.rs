//! Bounded model checking of the TLB shootdown protocol over real
//! `MixTlb` instances (see `mixtlb_check::protocol`).
//!
//! The acceptance bar (ISSUE 2): the explorer must cover *all*
//! interleavings of the two-core scenario up to its preemption bound,
//! catch each deliberately seeded bug, and pass the correct protocol
//! clean.

use mixtlb_check::protocol::{SeededBug, ShootdownScenario};
use mixtlb_check::sched::{Config, FailureKind};

#[test]
fn correct_two_core_protocol_is_clean_exhaustively() {
    let report = ShootdownScenario::two_core(SeededBug::None).explore(&Config::exhaustive());
    assert!(
        report.complete,
        "exploration must exhaust the schedule space, not stop at the cap"
    );
    assert!(report.schedules > 1, "a 2-thread scenario has real choice points");
    report.assert_clean();
}

#[test]
fn correct_three_core_protocol_is_clean_exhaustively() {
    let report = ShootdownScenario::three_core(SeededBug::None).explore(&Config::exhaustive());
    assert!(report.complete);
    // Two remotes racing their sweeps/acks against the initiator: the
    // schedule space is orders of magnitude larger than the 2-core one.
    assert!(
        report.schedules > 100,
        "3-core space should be large, got {}",
        report.schedules
    );
    report.assert_clean();
}

#[test]
fn doorbell_before_remap_is_caught() {
    // The initiator ringing the IPI doorbell before writing the new
    // mapping lets a fast remote sweep + demand-refill from the *old*
    // page table. Only some interleavings expose it: the explorer must
    // find one and report the stale translation.
    let report = ShootdownScenario::two_core(SeededBug::DoorbellBeforeRemap)
        .explore(&Config::exhaustive());
    let failure = report.failure.expect("the seeded reordering must be found");
    assert_eq!(failure.kind, FailureKind::Assertion);
    assert!(
        failure.message.contains("stale translation"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "a failing schedule must come with its decision trace"
    );
}

#[test]
fn doorbell_before_remap_needs_schedules_beyond_the_first() {
    // Sanity-check that the bug is genuinely interleaving-dependent: the
    // default run-to-completion schedule (initiator first) is benign, so
    // the explorer has to *search* to expose it.
    let report = ShootdownScenario::two_core(SeededBug::DoorbellBeforeRemap)
        .explore(&Config::exhaustive());
    assert!(
        report.schedules > 1,
        "bug should not fire on the first (run-to-completion) schedule"
    );
}

#[test]
fn partial_sweep_stale_mirror_is_caught() {
    // The paper's Sec. 5.1 failure mode: sweeping only the probed set
    // leaves mirrored superpage copies in other sets. After the remap and
    // refill, a set still serves the old frame — caught by the stale
    // probe / MixTlb::check_invariants mirror-conflict.
    let report =
        ShootdownScenario::two_core(SeededBug::PartialSweep).explore(&Config::exhaustive());
    let failure = report.failure.expect("the seeded partial sweep must be found");
    assert_eq!(failure.kind, FailureKind::Assertion);
    assert!(
        failure.message.contains("stale translation")
            || failure.message.contains("mirror-conflict"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn missing_ack_deadlocks_and_is_reported() {
    let report =
        ShootdownScenario::two_core(SeededBug::MissingAck).explore(&Config::exhaustive());
    let failure = report.failure.expect("the lost acknowledgement must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("EventWait"),
        "deadlock report should name the blocked wait: {}",
        failure.message
    );
}

#[test]
fn preemption_bound_zero_misses_the_reordering_bug() {
    // With zero preemptions every thread runs to completion once granted:
    // the doorbell-before-remap window never opens. This documents *why*
    // the bound matters — and that the default bound is generous enough.
    let report = ShootdownScenario::two_core(SeededBug::DoorbellBeforeRemap)
        .explore(&Config::with_preemption_bound(0));
    assert!(
        report.failure.is_none(),
        "bound 0 should serialize threads past the race, found: {:?}",
        report.failure
    );
    // One preemption is already enough to expose it.
    let report = ShootdownScenario::two_core(SeededBug::DoorbellBeforeRemap)
        .explore(&Config::with_preemption_bound(1));
    assert!(report.failure.is_some(), "bound 1 must expose the race");
}

#[test]
fn three_core_seeded_bugs_are_still_caught() {
    for (bug, expect) in [
        (SeededBug::DoorbellBeforeRemap, FailureKind::Assertion),
        (SeededBug::PartialSweep, FailureKind::Assertion),
        (SeededBug::MissingAck, FailureKind::Deadlock),
    ] {
        let report =
            ShootdownScenario::three_core(bug).explore(&Config::with_preemption_bound(2));
        let failure = report
            .failure
            .unwrap_or_else(|| panic!("3-core seeded {bug:?} must be caught"));
        assert_eq!(failure.kind, expect, "seeded {bug:?}");
    }
}

#[test]
fn schedule_cap_time_boxes_the_search() {
    let report = ShootdownScenario::three_core(SeededBug::None)
        .explore(&Config::exhaustive().max_schedules(10));
    assert_eq!(report.schedules, 10);
    assert!(!report.complete, "a capped run must not claim completeness");
    assert!(report.failure.is_none());
}
