//! Executable TLB-shootdown protocol scenarios for the model checker.
//!
//! The SMP simulator's correctness story (and the paper's Sec. 5.1 caveat)
//! is a *protocol*: when the OS remaps a superpage, it must (1) update the
//! page table, (2) ring a doorbell IPI on every remote core, (3) have each
//! remote sweep **all** sets of its MIX TLB (mirroring may have spread the
//! entry everywhere) and acknowledge, and (4) only after the last
//! acknowledgement consider the shootdown complete. Each step is easy to
//! get wrong in a way that only specific interleavings expose.
//!
//! [`ShootdownScenario`] builds that protocol out of the instrumented
//! primitives ([`crate::sync::instrumented`]) over *real* [`MixTlb`]
//! instances, so [`crate::sched::explore`] can replay it under every
//! schedule up to the preemption bound and assert, after completion:
//!
//! * **No stale translation**: every core's TLB either misses on the
//!   remapped superpage or serves the *new* frame — for every 4 KB region,
//!   whichever set it routes to.
//! * **No orphan mirror**: [`MixTlb::check_invariants`] holds on every
//!   core (no two entries any lookup could both serve disagree on the
//!   physical anchor).
//! * **Counters sum**: the acknowledgement counter equals the number of
//!   remote cores, and every core swept exactly once.
//!
//! [`SeededBug`] re-introduces the classic mistakes; the model-check test
//! suite proves the explorer catches each one and passes the correct
//! protocol clean.

use std::sync::Arc;

use mixtlb_core::{Lookup, MixTlb, MixTlbConfig, TlbDevice};
use mixtlb_types::{AccessKind, PageSize, Permissions, Pfn, Translation, Vpn};

use crate::sched::Sim;
use crate::sync::instrumented::{AtomicU64, Event, Mutex};
use crate::sync::Ordering;

/// The remapped superpage: base VPN of a 2 MB page.
const SUPER_VPN: u64 = 0x400;
/// Frame before the remap.
const OLD_PFN: u64 = 0x2000;
/// Frame after the remap (e.g. compaction moved the superpage).
const NEW_PFN: u64 = 0x8000;

/// A deliberately seeded protocol bug for the explorer's self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeededBug {
    /// The correct protocol: remap before doorbell, full sweeps, every
    /// remote acknowledges. Must pass **all** schedules.
    #[default]
    None,
    /// The initiator rings the doorbell *before* writing the new mapping.
    /// A fast remote can sweep and demand-refill from the stale page table
    /// — the lost-update interleaving the acknowledgement edge exists to
    /// prevent. Only some schedules expose it.
    DoorbellBeforeRemap,
    /// Remotes sweep only the probed set, as a conventional TLB would —
    /// forgetting MIX mirrors superpage entries into every set (Sec. 5.1).
    /// The refill then coexists with stale mirrors: an orphan-mirror
    /// conflict and stale hits in unswept sets.
    PartialSweep,
    /// One remote sweeps but never acknowledges: the initiator waits for a
    /// completion signal that can never come. Every schedule deadlocks.
    MissingAck,
}

/// A 2–3 core shootdown scenario over real MIX TLBs (see the module docs).
#[derive(Debug, Clone)]
pub struct ShootdownScenario {
    /// Total cores; core 0 initiates, the rest are remotes. Must be ≥ 2.
    pub cores: usize,
    /// Which mistake (if any) to seed.
    pub bug: SeededBug,
    /// TLB geometry (kept tiny to keep the schedule space tractable).
    pub config: MixTlbConfig,
}

impl ShootdownScenario {
    /// A two-core scenario with the given seeded bug over a 2-set, 2-way
    /// L1 MIX TLB.
    pub fn two_core(bug: SeededBug) -> ShootdownScenario {
        ShootdownScenario {
            cores: 2,
            bug,
            config: MixTlbConfig::l1(2, 2),
        }
    }

    /// A three-core scenario (two remotes racing their sweeps and
    /// acknowledgements against the initiator).
    pub fn three_core(bug: SeededBug) -> ShootdownScenario {
        ShootdownScenario {
            cores: 3,
            bug,
            config: MixTlbConfig::l1(2, 2),
        }
    }

    /// Registers the scenario's threads and final validator on `sim`.
    /// Called once per explored schedule, so all shared state is fresh.
    ///
    /// # Panics
    ///
    /// Panics if `cores < 2` (there must be at least one remote).
    pub fn install(&self, sim: &mut Sim) {
        assert!(self.cores >= 2, "a shootdown needs at least one remote core");
        let remotes = self.cores - 1;
        let bug = self.bug;

        let superpage = |pfn: u64| {
            Translation::new(
                Vpn::new(SUPER_VPN),
                Pfn::new(pfn),
                PageSize::Size2M,
                Permissions::rw_user(),
            )
        };

        // Shared state. Construction runs on the controller thread (no
        // managed context), so the instrumented ops here are dormant and
        // cost no schedule points.
        let pt = Arc::new(Mutex::new(OLD_PFN));
        let tlbs: Arc<Vec<Mutex<MixTlb>>> = Arc::new(
            (0..self.cores)
                .map(|_| {
                    let mut tlb = MixTlb::new(self.config.clone());
                    let t = superpage(OLD_PFN);
                    tlb.fill(t.vpn, &t, &[t]); // warm: old mapping mirrored everywhere
                    Mutex::new(tlb)
                })
                .collect(),
        );
        let doorbells: Arc<Vec<Event>> = Arc::new((0..remotes).map(|_| Event::new()).collect());
        let acks = Arc::new(AtomicU64::new(0));
        let complete = Arc::new(Event::new());
        let sweeps = Arc::new(AtomicU64::new(0));

        fn lock(m: &Mutex<MixTlb>) -> crate::sync::instrumented::MutexGuard<'_, MixTlb> {
            m.lock().unwrap_or_else(|e| e.into_inner())
        }

        // Core 0: the initiator.
        {
            let (pt, tlbs, doorbells, complete, sweeps) = (
                Arc::clone(&pt),
                Arc::clone(&tlbs),
                Arc::clone(&doorbells),
                Arc::clone(&complete),
                Arc::clone(&sweeps),
            );
            sim.thread("initiator", move || {
                let remap = |pt: &Mutex<u64>| {
                    *pt.lock().unwrap_or_else(|e| e.into_inner()) = NEW_PFN;
                };
                if bug == SeededBug::DoorbellBeforeRemap {
                    for d in doorbells.iter() {
                        d.set();
                    }
                    remap(&pt); // BUG: remotes may refill from the old mapping
                } else {
                    remap(&pt);
                    for d in doorbells.iter() {
                        d.set();
                    }
                }
                // Sweep the local TLB (the initiator is a core too).
                lock(&tlbs[0]).invalidate(Vpn::new(SUPER_VPN), PageSize::Size2M);
                sweeps.fetch_add(1, Ordering::SeqCst);
                // The shootdown returns only after every remote acked.
                complete.wait();
            });
        }

        // Remote cores: sweep on the doorbell, acknowledge, resume work.
        for r in 0..remotes {
            let (pt, tlbs, doorbells, acks, complete, sweeps) = (
                Arc::clone(&pt),
                Arc::clone(&tlbs),
                Arc::clone(&doorbells),
                Arc::clone(&acks),
                Arc::clone(&complete),
                Arc::clone(&sweeps),
            );
            let core = r + 1;
            sim.thread(&format!("core{core}"), move || {
                doorbells[r].wait();
                {
                    let mut tlb = lock(&tlbs[core]);
                    if bug == SeededBug::PartialSweep {
                        // BUG: sweeps one set; mirrors elsewhere survive.
                        tlb.buggy_invalidate_probed_set_only(
                            Vpn::new(SUPER_VPN),
                            PageSize::Size2M,
                        );
                    } else {
                        tlb.invalidate(Vpn::new(SUPER_VPN), PageSize::Size2M);
                    }
                }
                sweeps.fetch_add(1, Ordering::SeqCst);
                let skip_ack = bug == SeededBug::MissingAck && r == 0;
                if !skip_ack {
                    // The last acknowledgement completes the shootdown.
                    if acks.fetch_add(1, Ordering::SeqCst) + 1 == remotes as u64 {
                        complete.set();
                    }
                }
                // Resume user work: touch the superpage, demand-refilling
                // from the page table on a miss — exactly what a core does
                // right after acknowledging an IPI.
                let frame = *pt.lock().unwrap_or_else(|e| e.into_inner());
                let mut tlb = lock(&tlbs[core]);
                let vpn = Vpn::new(SUPER_VPN);
                if !tlb.lookup(vpn, AccessKind::Load).is_hit() {
                    let t = Translation::new(
                        vpn,
                        Pfn::new(frame),
                        PageSize::Size2M,
                        Permissions::rw_user(),
                    );
                    tlb.fill(vpn, &t, &[t]);
                }
            });
        }

        // Validation after every thread finished (dormant instrumentation:
        // runs on the controller thread, costs no schedule points).
        let remotes_u64 = remotes as u64;
        sim.finally(move || {
            assert_eq!(
                acks.load(Ordering::SeqCst),
                remotes_u64,
                "acknowledgement counter must equal the remote core count"
            );
            assert_eq!(
                sweeps.load(Ordering::SeqCst),
                remotes_u64 + 1,
                "every core sweeps exactly once"
            );
            for (core, tlb) in tlbs.iter().enumerate() {
                let mut tlb = tlb.lock().unwrap_or_else(|e| e.into_inner());
                // Probe one 4 KB region per set: with 2 sets, offsets 0
                // and 1 route to different sets, so a stale mirror in any
                // set is observed.
                for off in 0..tlb.config().sets as u64 {
                    let vpn = Vpn::new(SUPER_VPN + off);
                    if let Lookup::Hit { translation, .. } =
                        tlb.lookup(vpn, AccessKind::Load)
                    {
                        let frame = translation
                            .frame_for(vpn)
                            .map(|p| p.raw())
                            .unwrap_or(u64::MAX);
                        assert_eq!(
                            frame,
                            NEW_PFN + off,
                            "core {core}: stale translation for {vpn:?} after \
                             the shootdown completed"
                        );
                    }
                }
                if let Err(v) = tlb.check_invariants() {
                    // lint: allow(panic) — the validator reports violations by panicking into the explorer's catch_unwind, which turns them into a Failure
                    panic!("core {core}: {v}");
                }
                if let Err(v) = tlb.check_invariants_strict() {
                    // lint: allow(panic) — same reporting channel as check_invariants above
                    panic!("core {core} (post-probe quiescence): {v}");
                }
            }
        });
    }

    /// Explores the scenario under the given bounds.
    pub fn explore(&self, cfg: &crate::sched::Config) -> crate::sched::Report {
        crate::sched::explore(cfg, |sim| self.install(sim))
    }
}
