//! `mixtlb-check` — the workspace's offline checker CLI.
//!
//! ```text
//! mixtlb-check --lint [ROOT]     # token-level workspace lint pass
//! mixtlb-check --analyze [ROOT]  # structural static analysis (13 semantic rules)
//!               [--format text|json|sarif] [--baseline PATH]
//!               [--update-baseline] [--locks] [--stats]
//! mixtlb-check --model           # bounded model-check of the shootdown protocol
//! mixtlb-check --list-rules      # print lint + analysis rule identifiers
//! ```
//!
//! Exit codes are uniform across `--lint`, `--analyze`, and `--model`:
//! **0** — clean; **1** — findings (or a model failure) remain; **2** —
//! internal error (bad arguments, unreadable root or baseline). CI gates
//! on "non-zero" without distinguishing, while scripts that want to
//! separate "the code is dirty" from "the tool is broken" can.
//!
//! `--analyze` loads `ROOT/check-baseline.json` (or
//! `--baseline PATH`) and reports only non-baselined findings;
//! `--update-baseline` rewrites that file from the current findings —
//! the committed diff is the audit trail. `--locks` additionally prints
//! the extracted static lock-acquisition order; `--stats` prints
//! per-rule finding counts and analysis wall time. `--model` runs the
//! time-boxed subset of the interleaving exploration (the full suites
//! live in `cargo test -p mixtlb-check --features model`): the correct
//! two-core shootdown protocol must pass *every* schedule up to the
//! preemption bound, and each seeded bug must be caught.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mixtlb_check::analysis;
use mixtlb_check::handoff::{HandoffBug, HandoffScenario};
use mixtlb_check::lint;
use mixtlb_check::protocol::{SeededBug, ShootdownScenario};
use mixtlb_check::sched::{Config, FailureKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--lint") => run_lint(args.get(1).map(PathBuf::from)),
        Some("--analyze") => run_analyze(&args[1..]),
        Some("--model") => run_model(),
        Some("--list-rules") => {
            for rule in lint::RULES {
                println!("{rule}");
            }
            for rule in analysis::ANALYSIS_RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: mixtlb-check --lint [ROOT] | --analyze [ROOT] \
                 [--format text|json|sarif] [--baseline PATH] \
                 [--update-baseline] [--locks] [--stats] | --model | \
                 --list-rules"
            );
            ExitCode::from(2)
        }
    }
}

/// Parses and runs `--analyze`; see the module docs for the contract.
fn run_analyze(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_owned();
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut show_locks = false;
    let mut show_stats = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if ["text", "json", "sarif"].contains(&f.as_str()) => {
                    format = f.clone();
                }
                _ => {
                    eprintln!("analyze: --format needs text|json|sarif");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("analyze: --baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            "--locks" => show_locks = true,
            "--stats" => show_stats = true,
            other if !other.starts_with("--") && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("check-baseline.json"));

    let mut report = match analysis::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        if let Some(c) = analysis::find_collision(&report.findings) {
            eprintln!("analyze: refusing to update the baseline: {c}");
            return ExitCode::from(2);
        }
        if let Err(e) = analysis::Baseline::write(&baseline_path, &report.findings) {
            eprintln!("analyze: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "analyze: baseline {} updated with {} finding(s)",
            baseline_path.display(),
            report.findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match analysis::Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("analyze: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    if let Err(c) = report.apply_baseline(&baseline) {
        eprintln!("analyze: {c}");
        return ExitCode::from(2);
    }

    match format.as_str() {
        "json" => print!("{}", analysis::to_json(&report)),
        "sarif" => print!("{}", analysis::to_sarif(&report)),
        _ => {
            for finding in &report.findings {
                println!("{finding}");
            }
            if show_locks {
                println!("analyze: static lock-acquisition order:");
                if report.lock_edges.is_empty() {
                    println!("  (no multi-lock functions outside crates/check)");
                }
                for edge in &report.lock_edges {
                    println!("  {edge}");
                }
            }
            println!(
                "analyze: {} file(s), {} fn(s), {} symbol(s), {} call edge(s); \
                 {} finding(s), {} baselined",
                report.stats.files,
                report.stats.functions,
                report.stats.symbols,
                report.stats.call_edges,
                report.findings.len(),
                report.baselined
            );
            if show_stats {
                print_stats(&report);
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints the `--stats` block: per-rule finding counts (live and
/// baselined) plus front-end shape and phase wall time.
fn print_stats(report: &analysis::AnalysisReport) {
    println!("analyze: per-rule findings:");
    for rule in analysis::ANALYSIS_RULES {
        let live = report.findings.iter().filter(|f| f.rule == rule).count();
        let baselined = report
            .baselined_by_rule
            .iter()
            .find(|(r, _)| *r == rule)
            .map_or(0, |&(_, n)| n);
        println!("  {rule:<16} {live} live, {baselined} baselined");
    }
    println!(
        "analyze: front end: {} struct(s), {} shared, {} SCC(s), {} hot-reachable fn(s)",
        report.stats.structs,
        report.stats.shared_structs,
        report.stats.sccs,
        report.stats.hot_fns
    );
    println!(
        "analyze: abstract interpretation: {} value-summarized fn(s)",
        report.stats.summarized_fns
    );
    println!(
        "analyze: wall time: parse {:.1} ms, rules {:.1} ms, absint {:.1} ms \
         (bit-pack-overflow {:.1} ms, tag-range {:.1} ms, index-bound {:.1} ms, \
         blocking-in-lock {:.1} ms)",
        report.stats.parse_nanos as f64 / 1e6,
        report.stats.rules_nanos as f64 / 1e6,
        report.stats.absint_nanos as f64 / 1e6,
        report.stats.value_rule_nanos[0] as f64 / 1e6,
        report.stats.value_rule_nanos[1] as f64 / 1e6,
        report.stats.value_rule_nanos[2] as f64 / 1e6,
        report.stats.blocking_nanos as f64 / 1e6
    );
}

fn run_lint(root: Option<PathBuf>) -> ExitCode {
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match lint::lint_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}");
            }
            if report.is_clean() {
                println!(
                    "lint: {} file(s) clean ({} rules)",
                    report.files_checked,
                    lint::RULES.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "lint: {} finding(s) in {} file(s)",
                    report.findings.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint: cannot walk {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn run_model() -> ExitCode {
    let cfg = Config::exhaustive();
    let mut ok = true;

    // The correct protocol: every interleaving must be clean.
    let clean = ShootdownScenario::two_core(SeededBug::None).explore(&cfg);
    match &clean.failure {
        None => println!(
            "model: correct 2-core shootdown clean over {} schedule(s){}",
            clean.schedules,
            if clean.complete { " (exhaustive)" } else { "" }
        ),
        Some(f) => {
            ok = false;
            println!(
                "model: FAILURE — correct protocol failed ({:?}): {}",
                f.kind, f.message
            );
        }
    }

    // Each seeded bug must be caught.
    for (bug, expect) in [
        (SeededBug::DoorbellBeforeRemap, FailureKind::Assertion),
        (SeededBug::PartialSweep, FailureKind::Assertion),
        (SeededBug::MissingAck, FailureKind::Deadlock),
    ] {
        let report = ShootdownScenario::two_core(bug).explore(&cfg);
        match &report.failure {
            Some(f) if f.kind == expect => println!(
                "model: seeded {bug:?} caught as {:?} after {} schedule(s)",
                f.kind, report.schedules
            ),
            Some(f) => {
                ok = false;
                println!(
                    "model: FAILURE — seeded {bug:?} caught as {:?}, expected {expect:?}: {}",
                    f.kind, f.message
                );
            }
            None => {
                ok = false;
                println!(
                    "model: FAILURE — seeded {bug:?} NOT caught in {} schedule(s)",
                    report.schedules
                );
            }
        }
    }

    // The streaming pipeline's bounded hand-off (producer/consumer +
    // buffer recycling over two BoundedQueues). Semaphore schedule points
    // are instrumented feature-independently, so this binary explores the
    // hand-off protocol's blocking structure directly.
    let handoff_cfg = Config::with_preemption_bound(3);
    let clean = HandoffScenario::with_bug(HandoffBug::None).explore(&handoff_cfg);
    match &clean.failure {
        None => println!(
            "model: bounded hand-off clean over {} schedule(s){}",
            clean.schedules,
            if clean.complete {
                " (complete at preemption bound 3)"
            } else {
                ""
            }
        ),
        Some(f) => {
            ok = false;
            println!(
                "model: FAILURE — bounded hand-off failed ({:?}): {}",
                f.kind, f.message
            );
        }
    }
    for bug in [HandoffBug::MissingPublish, HandoffBug::LeakedBuffer] {
        let report = HandoffScenario::with_bug(bug).explore(&handoff_cfg);
        match &report.failure {
            Some(f) if f.kind == FailureKind::Deadlock => println!(
                "model: seeded {bug:?} caught as {:?} after {} schedule(s)",
                f.kind, report.schedules
            ),
            Some(f) => {
                ok = false;
                println!(
                    "model: FAILURE — seeded {bug:?} caught as {:?}, expected Deadlock: {}",
                    f.kind, f.message
                );
            }
            None => {
                ok = false;
                println!(
                    "model: FAILURE — seeded {bug:?} NOT caught in {} schedule(s)",
                    report.schedules
                );
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
