//! `mixtlb-check` — the workspace's offline checker CLI.
//!
//! ```text
//! mixtlb-check --lint [ROOT]     # token-level workspace lint pass
//! mixtlb-check --model           # bounded model-check of the shootdown protocol
//! mixtlb-check --list-rules      # print the lint rule identifiers
//! ```
//!
//! `--lint` exits non-zero when any finding remains, so CI can gate on it.
//! `--model` runs the time-boxed subset of the interleaving exploration
//! (the full suites live in `cargo test -p mixtlb-check --features model`):
//! the correct two-core shootdown protocol must pass *every* schedule up
//! to the preemption bound, and each seeded bug must be caught.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mixtlb_check::lint;
use mixtlb_check::protocol::{SeededBug, ShootdownScenario};
use mixtlb_check::sched::{Config, FailureKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--lint") => run_lint(args.get(1).map(PathBuf::from)),
        Some("--model") => run_model(),
        Some("--list-rules") => {
            for rule in lint::RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: mixtlb-check --lint [ROOT] | --model | --list-rules"
            );
            ExitCode::from(2)
        }
    }
}

fn run_lint(root: Option<PathBuf>) -> ExitCode {
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match lint::lint_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}");
            }
            if report.is_clean() {
                println!(
                    "lint: {} file(s) clean ({} rules)",
                    report.files_checked,
                    lint::RULES.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "lint: {} finding(s) in {} file(s)",
                    report.findings.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint: cannot walk {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn run_model() -> ExitCode {
    let cfg = Config::exhaustive();
    let mut ok = true;

    // The correct protocol: every interleaving must be clean.
    let clean = ShootdownScenario::two_core(SeededBug::None).explore(&cfg);
    match &clean.failure {
        None => println!(
            "model: correct 2-core shootdown clean over {} schedule(s){}",
            clean.schedules,
            if clean.complete { " (exhaustive)" } else { "" }
        ),
        Some(f) => {
            ok = false;
            println!(
                "model: FAILURE — correct protocol failed ({:?}): {}",
                f.kind, f.message
            );
        }
    }

    // Each seeded bug must be caught.
    for (bug, expect) in [
        (SeededBug::DoorbellBeforeRemap, FailureKind::Assertion),
        (SeededBug::PartialSweep, FailureKind::Assertion),
        (SeededBug::MissingAck, FailureKind::Deadlock),
    ] {
        let report = ShootdownScenario::two_core(bug).explore(&cfg);
        match &report.failure {
            Some(f) if f.kind == expect => println!(
                "model: seeded {bug:?} caught as {:?} after {} schedule(s)",
                f.kind, report.schedules
            ),
            Some(f) => {
                ok = false;
                println!(
                    "model: FAILURE — seeded {bug:?} caught as {:?}, expected {expect:?}: {}",
                    f.kind, f.message
                );
            }
            None => {
                ok = false;
                println!(
                    "model: FAILURE — seeded {bug:?} NOT caught in {} schedule(s)",
                    report.schedules
                );
            }
        }
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
