//! The bounded interleaving explorer (a "mini-loom").
//!
//! [`explore`] runs a multi-threaded scenario under **every** thread
//! interleaving up to a preemption bound, using stateless re-execution:
//! each schedule spawns fresh OS threads whose instrumented synchronization
//! operations ([`crate::sync::instrumented`]) park at *schedule points*; a
//! controller grants exactly one thread the right to run between points, so
//! an execution is fully determined by the sequence of grant decisions. A
//! depth-first search over those decisions enumerates the interleavings.
//!
//! # What it checks
//!
//! * **Assertions** in scenario code (stale-translation probes, counter
//!   sums, [`mixtlb_core::MixTlb::check_invariants`] calls, …): a panic in
//!   any managed thread fails the schedule and the failing decision trace
//!   is reported.
//! * **Deadlocks**: a state where every live thread is parked at a disabled
//!   operation (a held lock, an unset event) is reported with the parked
//!   ops.
//! * **Lock-order inversions**: each execution accumulates held-lock →
//!   acquired-lock edges; a cycle in that graph is reported even when no
//!   explored schedule happened to realize the deadlock.
//! * **Livelocks**: executions exceeding [`Config::max_steps`] schedule
//!   points fail with [`FailureKind::StepLimit`].
//!
//! # Memory model
//!
//! Execution is serialized at synchronization-operation granularity, so the
//! explorer checks *logic* races (check-then-act windows, missing
//! acknowledgement edges, partial invalidation sweeps) under sequential
//! consistency. It does **not** model weak-memory reorderings; the
//! workspace lint's `relaxed-ordering` rule exists precisely because
//! `Ordering::Relaxed` choices cannot be validated here and therefore need
//! a written justification.

use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError};

/// Bounds on one exploration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of *preemptions* per schedule (context switches away
    /// from a thread that could have kept running). `None` explores every
    /// interleaving. Iyer/Musuvathi-style bounding: most concurrency bugs
    /// manifest within 2 preemptions.
    pub preemption_bound: Option<u32>,
    /// Hard cap on explored schedules (time-boxing for CI).
    pub max_schedules: u64,
    /// Per-schedule step cap; exceeding it is reported as a livelock.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(3),
            max_schedules: 100_000,
            max_steps: 2_000,
        }
    }
}

impl Config {
    /// A configuration with the given preemption bound.
    pub fn with_preemption_bound(bound: u32) -> Config {
        Config {
            preemption_bound: Some(bound),
            ..Config::default()
        }
    }

    /// Exhaustive exploration (no preemption bound).
    pub fn exhaustive() -> Config {
        Config {
            preemption_bound: None,
            ..Config::default()
        }
    }

    /// Caps the number of schedules (time-boxing).
    pub fn max_schedules(mut self, n: u64) -> Config {
        self.max_schedules = n;
        self
    }
}

/// Why a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A managed thread (or the [`Sim::finally`] validator) panicked.
    Assertion,
    /// Every live thread was parked at a disabled operation.
    Deadlock,
    /// The union of held-lock → acquired-lock edges of an execution
    /// contains a cycle.
    LockOrderInversion,
    /// The schedule exceeded [`Config::max_steps`] points (livelock).
    StepLimit,
}

/// A failing schedule, with the decision trace that reproduces it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Classification.
    pub kind: FailureKind,
    /// Human-readable description (panic message, deadlock state, …).
    pub message: String,
    /// The granted `(step, thread name, operation)` decisions of the
    /// failing schedule.
    pub trace: Vec<String>,
}

/// The outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed.
    pub schedules: u64,
    /// `true` when the search space up to the preemption bound was
    /// exhausted (i.e. the run was not truncated by
    /// [`Config::max_schedules`]).
    pub complete: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with a readable account if the exploration found a failure.
    ///
    /// # Panics
    ///
    /// Panics when `self.failure` is some — that is the point.
    pub fn assert_clean(&self) {
        if let Some(f) = &self.failure {
            // lint: allow(panic) — test-harness API, panicking is the contract
            panic!(
                "model checking failed after {} schedule(s): {:?}: {}\nschedule:\n  {}",
                self.schedules,
                f.kind,
                f.message,
                f.trace.join("\n  ")
            );
        }
    }
}

/// One scenario instance: the set of threads (and an optional final
/// validator) to run under one schedule. The scenario factory passed to
/// [`explore`] is invoked afresh for every schedule, so shared state
/// created inside it cannot leak between schedules.
#[derive(Default)]
pub struct Sim {
    threads: Vec<(String, Box<dyn FnOnce() + Send>)>,
    finale: Option<Box<dyn FnOnce() + Send>>,
}

impl Sim {
    /// Registers a managed thread.
    pub fn thread(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        self.threads.push((name.to_owned(), Box::new(f)));
    }

    /// Registers a validator that runs on the controller thread after every
    /// managed thread finished (e.g. aggregate-statistics invariants).
    pub fn finally(&mut self, f: impl FnOnce() + Send + 'static) {
        self.finale = Some(Box::new(f));
    }
}

/// A schedule point declared by an instrumented operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The thread is about to run its first instruction.
    Start,
    /// About to acquire the mutex with this object id.
    Lock(u64),
    /// An atomic load.
    AtomicLoad(u64),
    /// An atomic store.
    AtomicStore(u64),
    /// An atomic read-modify-write.
    AtomicRmw(u64),
    /// Blocking wait until the event is set.
    EventWait(u64),
    /// Setting an event.
    EventSet(u64),
    /// Non-blocking poll of an event.
    EventPoll(u64),
    /// Acquiring one permit of a counting semaphore (blocks at zero).
    SemAcquire(u64),
    /// Releasing one permit of a counting semaphore.
    SemRelease(u64),
}

impl Op {
    fn enabled(self, st: &CtlState) -> bool {
        match self {
            Op::Lock(id) => !st.held.contains_key(&id),
            Op::EventWait(id) => st.events.contains(&id),
            Op::SemAcquire(id) => st.sems.get(&id).is_some_and(|&p| p > 0),
            _ => true,
        }
    }
}

#[derive(Debug, Clone)]
enum TStatus {
    /// Executing between schedule points (or not yet at its Start point).
    Running,
    /// Parked at a schedule point, waiting for a grant.
    Parked(Op),
    Finished,
    Panicked(String),
}

struct CtlState {
    status: Vec<TStatus>,
    names: Vec<String>,
    grant: Option<usize>,
    abort: bool,
    /// mutex object id -> owning tid.
    held: HashMap<u64, usize>,
    /// Per-thread stack of held mutex ids (for lock-order edges).
    held_stack: Vec<Vec<u64>>,
    /// Set events.
    events: HashSet<u64>,
    /// Modelled semaphore permit counts (registered lazily at the first
    /// managed operation on each semaphore; see [`Controller::ensure_sem`]).
    sems: HashMap<u64, u64>,
    /// Granted decisions of this execution.
    trace: Vec<(usize, Op)>,
    /// held-lock -> acquired-lock edges observed this execution.
    lock_edges: HashSet<(u64, u64)>,
}

pub(crate) struct Controller {
    state: StdMutex<CtlState>,
    cv: Condvar,
}

fn relock(e: PoisonError<StdMutexGuard<'_, CtlState>>) -> StdMutexGuard<'_, CtlState> {
    // A managed thread panicked while holding the controller lock is
    // impossible (no panicking code runs under it), but recover anyway.
    e.into_inner()
}

impl Controller {
    fn new(names: Vec<String>) -> Controller {
        let n = names.len();
        Controller {
            state: StdMutex::new(CtlState {
                status: vec![TStatus::Running; n],
                names,
                grant: None,
                abort: false,
                held: HashMap::new(),
                held_stack: vec![Vec::new(); n],
                events: HashSet::new(),
                sems: HashMap::new(),
                trace: Vec::new(),
                lock_edges: HashSet::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Parks the calling managed thread at a schedule point and blocks
    /// until the controller grants it the right to perform `op`.
    pub(crate) fn reach_point(&self, tid: usize, op: Op) {
        let mut st = self.state.lock().unwrap_or_else(relock);
        if st.abort {
            return; // free-running teardown
        }
        st.status[tid] = TStatus::Parked(op);
        self.cv.notify_all();
        loop {
            if st.abort {
                st.status[tid] = TStatus::Running;
                if matches!(op, Op::Lock(_) | Op::SemAcquire(_)) {
                    // Taking the real lock — or decrementing a semaphore
                    // that may hold zero permits — during teardown could
                    // deadlock or spin for real (that may be exactly the
                    // bug under test); unwind this thread instead.
                    drop(st);
                    panic::panic_any(AbortRun);
                }
                return;
            }
            if st.grant == Some(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(relock);
        }
        st.grant = None;
        st.status[tid] = TStatus::Running;
        st.trace.push((tid, op));
        match op {
            Op::EventSet(id) => {
                st.events.insert(id);
            }
            // Permit counts move when the operation is *granted*, mirroring
            // the real counter the instrumented semaphore updates right
            // after this call returns. `SemAcquire` is granted only while
            // the modelled count is positive, so the decrement cannot wrap.
            Op::SemAcquire(id) => {
                if let Some(p) = st.sems.get_mut(&id) {
                    *p -= 1;
                }
            }
            Op::SemRelease(id) => {
                *st.sems.entry(id).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// Registers a semaphore's permit count the first time any managed
    /// thread touches it. Semaphores are constructed on the controller
    /// thread (where the facade is dormant), so at the first managed
    /// operation the real counter still holds its pre-exploration value —
    /// every later modification requires a grant, which requires parking,
    /// which is preceded by that thread's own `ensure_sem`. Later calls
    /// are no-ops.
    pub(crate) fn ensure_sem(&self, id: u64, permits: u64) {
        let mut st = self.state.lock().unwrap_or_else(relock);
        st.sems.entry(id).or_insert(permits);
    }

    /// Records a completed mutex acquisition (lock-order bookkeeping).
    pub(crate) fn acquired(&self, tid: usize, id: u64) {
        let mut st = self.state.lock().unwrap_or_else(relock);
        let edges: Vec<(u64, u64)> =
            st.held_stack[tid].iter().map(|&h| (h, id)).collect();
        st.lock_edges.extend(edges);
        st.held.insert(id, tid);
        st.held_stack[tid].push(id);
    }

    /// Records a mutex release; may enable parked threads.
    pub(crate) fn released(&self, tid: usize, id: u64) {
        let mut st = self.state.lock().unwrap_or_else(relock);
        st.held.remove(&id);
        st.held_stack[tid].retain(|&h| h != id);
        self.cv.notify_all();
    }

    fn finish(&self, tid: usize, outcome: Result<(), String>) {
        let mut st = self.state.lock().unwrap_or_else(relock);
        st.status[tid] = match outcome {
            Ok(()) => TStatus::Finished,
            Err(msg) => TStatus::Panicked(msg),
        };
        self.cv.notify_all();
    }

    fn describe(&self, st: &CtlState) -> Vec<String> {
        st.trace
            .iter()
            .enumerate()
            .map(|(i, (tid, op))| format!("{i:3}: {} {:?}", st.names[*tid], op))
            .collect()
    }
}

/// Sentinel panic payload used to unwind parked threads during teardown.
struct AbortRun;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<ThreadCtx>> =
        const { std::cell::RefCell::new(None) };
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> =
        const { std::cell::Cell::new(false) };
}

/// Handle every instrumented operation uses to reach its schedule point.
#[derive(Clone)]
pub(crate) struct ThreadCtx {
    pub(crate) ctl: Arc<Controller>,
    pub(crate) tid: usize,
}

/// The calling thread's managed context, if it runs under an explorer.
pub(crate) fn current() -> Option<ThreadCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Exploration of failing scenarios catches panics in managed threads; the
/// default panic hook would spam stderr with one backtrace per explored
/// failing schedule. Install (once, chained) a hook that stays silent for
/// managed threads.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// One decision of an execution, for the DFS over schedules.
#[derive(Debug, Clone)]
struct StepRecord {
    /// Enabled tids at this point, ascending.
    enabled: Vec<usize>,
    /// Index into `enabled` that was granted.
    chosen: usize,
    /// Previously running tid (granted at the prior step), if any.
    prev: Option<usize>,
    /// Preemptions accumulated *after* this decision.
    preemptions: u32,
}

fn is_preemption(prev: Option<usize>, chosen: usize, enabled: &[usize]) -> bool {
    match prev {
        Some(p) => p != chosen && enabled.contains(&p),
        None => false,
    }
}

struct RunOutcome {
    decisions: Vec<StepRecord>,
    failure: Option<Failure>,
    /// The executed decision trace, kept even on success so a failing
    /// *final validator* can still report the schedule that led to it.
    trace: Vec<String>,
}

fn run_once(cfg: &Config, sim: Sim, prefix: &[usize]) -> RunOutcome {
    let names: Vec<String> = sim.threads.iter().map(|(n, _)| n.clone()).collect();
    let ctl = Arc::new(Controller::new(names));
    let mut handles = Vec::new();
    for (tid, (_, body)) in sim.threads.into_iter().enumerate() {
        let ctl2 = Arc::clone(&ctl);
        handles.push(std::thread::spawn(move || {
            CURRENT.with(|c| {
                *c.borrow_mut() = Some(ThreadCtx {
                    ctl: Arc::clone(&ctl2),
                    tid,
                })
            });
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
            ctl2.reach_point(tid, Op::Start);
            let result = panic::catch_unwind(AssertUnwindSafe(body));
            let outcome = match result {
                Ok(()) => Ok(()),
                Err(p) if p.is::<AbortRun>() => Ok(()), // teardown unwind
                Err(p) => Err(payload_message(p.as_ref())),
            };
            ctl2.finish(tid, outcome);
        }));
    }

    let mut decisions: Vec<StepRecord> = Vec::new();
    let mut failure: Option<Failure> = None;
    let mut prev: Option<usize> = None;
    let mut preemptions: u32 = 0;
    {
        let mut st = ctl.state.lock().unwrap_or_else(relock);
        'steps: loop {
            // Wait until nothing is running and no grant is outstanding.
            while st.grant.is_some()
                || st.status.iter().any(|s| matches!(s, TStatus::Running))
            {
                st = ctl.cv.wait(st).unwrap_or_else(relock);
            }
            // A panic anywhere fails the schedule.
            for (tid, s) in st.status.iter().enumerate() {
                if let TStatus::Panicked(msg) = s {
                    failure = Some(Failure {
                        kind: FailureKind::Assertion,
                        message: format!("thread '{}' panicked: {msg}", st.names[tid]),
                        trace: ctl.describe(&st),
                    });
                    break 'steps;
                }
            }
            if st
                .status
                .iter()
                .all(|s| matches!(s, TStatus::Finished))
            {
                break 'steps; // schedule complete
            }
            let enabled: Vec<usize> = st
                .status
                .iter()
                .enumerate()
                .filter_map(|(tid, s)| match s {
                    TStatus::Parked(op) if op.enabled(&st) => Some(tid),
                    _ => None,
                })
                .collect();
            if enabled.is_empty() {
                let parked: Vec<String> = st
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(tid, s)| match s {
                        TStatus::Parked(op) => {
                            Some(format!("{} blocked at {op:?}", st.names[tid]))
                        }
                        _ => None,
                    })
                    .collect();
                failure = Some(Failure {
                    kind: FailureKind::Deadlock,
                    message: format!("deadlock: {}", parked.join("; ")),
                    trace: ctl.describe(&st),
                });
                break 'steps;
            }
            if decisions.len() >= cfg.max_steps {
                failure = Some(Failure {
                    kind: FailureKind::StepLimit,
                    message: format!(
                        "schedule exceeded {} points (possible livelock)",
                        cfg.max_steps
                    ),
                    trace: ctl.describe(&st),
                });
                break 'steps;
            }
            // Choose: replay the prefix, then default to run-to-completion
            // (keep the previous thread going — zero preemptions).
            let step = decisions.len();
            let chosen = match prefix.get(step) {
                // The replayed enabled sets are identical (deterministic
                // scenarios), so the recorded index stays valid; clamp
                // defensively anyway.
                Some(&idx) => idx.min(enabled.len() - 1),
                None => prev
                    .and_then(|p| enabled.iter().position(|&t| t == p))
                    .unwrap_or(0),
            };
            let tid = enabled[chosen];
            if is_preemption(prev, tid, &enabled) {
                preemptions += 1;
            }
            decisions.push(StepRecord {
                enabled: enabled.clone(),
                chosen,
                prev,
                preemptions,
            });
            prev = Some(tid);
            st.grant = Some(tid);
            ctl.cv.notify_all();
        }
        if failure.is_some() {
            st.abort = true;
            ctl.cv.notify_all();
        }
    }
    for h in handles {
        let _ = h.join();
    }
    // Lock-order cycle detection over this execution's edges, plus the
    // final decision trace (kept for finale-validator failures).
    let trace = {
        let st = ctl.state.lock().unwrap_or_else(relock);
        if failure.is_none() {
            if let Some(cycle) = find_cycle(&st.lock_edges) {
                failure = Some(Failure {
                    kind: FailureKind::LockOrderInversion,
                    message: format!(
                        "lock-order inversion: acquisition cycle through mutex ids {cycle:?}"
                    ),
                    trace: ctl.describe(&st),
                });
            }
        }
        ctl.describe(&st)
    };
    RunOutcome {
        decisions,
        failure,
        trace,
    }
}

/// Detects a cycle in the held→acquired edge set; returns its nodes.
///
/// Shared with the *static* lock-order extraction in
/// [`crate::analysis::lockorder`]: the dynamic explorer feeds it observed
/// mutex-object-id edges, the analyzer feeds it interned lock-path ids
/// from the whole-workspace acquisition-order graph, so both checkers
/// agree on what an inversion is.
pub(crate) fn find_cycle(edges: &HashSet<(u64, u64)>) -> Option<Vec<u64>> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut mark: HashMap<u64, u8> = adj.keys().map(|&k| (k, 0u8)).collect();
    let mut order: Vec<u64> = adj.keys().copied().collect();
    order.sort_unstable();
    for start in order {
        if mark.get(&start).copied() != Some(0) {
            continue;
        }
        // Iterative DFS with an explicit stack of (node, next-child index).
        let mut stack: Vec<(u64, usize)> = vec![(start, 0)];
        mark.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                match mark.get(&child).copied() {
                    Some(1) => {
                        let mut cycle: Vec<u64> =
                            stack.iter().map(|&(n, _)| n).collect();
                        cycle.push(child);
                        return Some(cycle);
                    }
                    Some(0) => {
                        mark.insert(child, 1);
                        stack.push((child, 0));
                    }
                    _ => {}
                }
            } else {
                mark.insert(node, 2);
                stack.pop();
            }
        }
    }
    None
}

/// Computes the next DFS prefix: the deepest decision with an untried,
/// preemption-admissible alternative.
fn next_prefix(decisions: &[StepRecord], bound: Option<u32>) -> Option<Vec<usize>> {
    for k in (0..decisions.len()).rev() {
        let rec = &decisions[k];
        let before = if k == 0 { 0 } else { decisions[k - 1].preemptions };
        for alt in rec.chosen + 1..rec.enabled.len() {
            let delta =
                u32::from(is_preemption(rec.prev, rec.enabled[alt], &rec.enabled));
            if bound.is_none_or(|b| before + delta <= b) {
                let mut prefix: Vec<usize> =
                    decisions[..k].iter().map(|r| r.chosen).collect();
                prefix.push(alt);
                return Some(prefix);
            }
        }
    }
    None
}

/// Explores every interleaving of the scenario up to the configured
/// preemption bound. The `scenario` factory is called once per schedule and
/// must register its threads (and shared state) on the given [`Sim`];
/// executions must be deterministic given the schedule (no wall-clock, no
/// uncontrolled randomness).
pub fn explore(cfg: &Config, scenario: impl Fn(&mut Sim)) -> Report {
    install_quiet_hook();
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules: u64 = 0;
    loop {
        let mut sim = Sim::default();
        scenario(&mut sim);
        let finale = sim.finale.take();
        let outcome = run_once(cfg, sim, &prefix);
        schedules += 1;
        let mut failure = outcome.failure;
        if failure.is_none() {
            if let Some(f) = finale {
                let trace = outcome.trace;
                let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
                    f();
                    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
                }));
                SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
                if let Err(p) = caught {
                    failure = Some(Failure {
                        kind: FailureKind::Assertion,
                        message: format!(
                            "final validator panicked: {}",
                            payload_message(p.as_ref())
                        ),
                        trace,
                    });
                }
            }
        }
        if let Some(f) = failure {
            return Report {
                schedules,
                complete: false,
                failure: Some(f),
            };
        }
        if schedules >= cfg.max_schedules {
            return Report {
                schedules,
                complete: false,
                failure: None,
            };
        }
        match next_prefix(&outcome.decisions, cfg.preemption_bound) {
            Some(p) => prefix = p,
            None => {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                }
            }
        }
    }
}

/// Monotonic object-id source for instrumented primitives.
pub(crate) fn next_object_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    // lint: allow(relaxed-ordering) — pure unique-id counter; only
    // atomicity matters, no ordering with any other memory access.
    NEXT.fetch_add(1, Ordering::Relaxed)
}
