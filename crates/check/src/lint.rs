//! The token-level workspace lint driver (`mixtlb-check --lint`).
//!
//! `rustc` and `clippy` cannot see *project* rules — conventions whose
//! violation compiles fine but breaks the repository's correctness or
//! reproducibility story. This module enforces them by scanning the
//! workspace's `.rs` files at the token level (comment-, string- and
//! `#[cfg(test)]`-aware, but deliberately not a full parser: the rules are
//! syntactic and the scanner must stay dependency-free).
//!
//! # Rules
//!
//! | rule | requirement | scope |
//! |------|-------------|-------|
//! | `relaxed-ordering` | every `Ordering::Relaxed` carries a written justification | lib + bin |
//! | `panic` | no `unwrap()` / `expect()` / `panic!` without justification | lib |
//! | `invalidate-sets-override` | every `impl TlbDevice for …` overrides `invalidate_sets` | lib |
//! | `geometry-literal` | no hard-coded page-geometry constants (4096, 2 MB, 1 GB, 262144 pages) outside `mixtlb-types` | lib |
//! | `forbid-unsafe` | every crate-root file carries `#![forbid(unsafe_code)]` (or a documented `#![deny(unsafe_code)]`) | crate roots |
//!
//! `relaxed-ordering` exists because the model checker explores
//! interleavings under sequential consistency only: a `Relaxed` choice is
//! exactly the thing it *cannot* validate, so each one must say why it is
//! safe. `invalidate-sets-override` guards the paper's Sec. 5.1 cost
//! model: a `TlbDevice` that forgets to report its sweep footprint
//! silently prices MIX shootdowns as one set.
//!
//! # Suppressions
//!
//! A finding is suppressed by a marker comment on the same or the
//! preceding line:
//!
//! ```text
//! // lint: allow(relaxed-ordering) — pure statistics counter; only
//! // atomicity matters, no ordering with any other access.
//! self.hits.fetch_add(1, Ordering::Relaxed);
//! ```
//!
//! The marker is the allowlist: `--lint` output stays empty only while
//! every exception carries its justification in the source. A whole file
//! can opt out of one rule with `// lint: allow-file(<rule>) — reason`.
//!
//! Files under `tests/` (and `#[cfg(test)]` blocks anywhere) are exempt
//! from all rules except `forbid-unsafe`; vendored `compat/` stubs are
//! exempt from everything except `forbid-unsafe` (they mimic external
//! APIs, including their panicking contracts); binaries and benches may
//! panic (a CLI's `main` is its own error boundary) but must justify
//! `Relaxed` orderings like any other concurrent code.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a file participates in the build (decides which rules apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// Binary / bench code: may panic, everything else applies.
    Bin,
    /// Integration-test code: only `forbid-unsafe` (for crate roots).
    Test,
    /// Vendored offline stubs under `compat/`: only `forbid-unsafe`.
    Compat,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's identifier.
    pub rule: &'static str,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Result of linting a file set.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every unsuppressed finding, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_checked: usize,
}

impl LintReport {
    /// `true` when no findings remain.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// All rule identifiers (for `--lint --list-rules` and the self-tests).
pub const RULES: [&str; 5] = [
    "relaxed-ordering",
    "panic",
    "invalidate-sets-override",
    "geometry-literal",
    "forbid-unsafe",
];

/// Page-geometry values that must come from `mixtlb-types`, not literals:
/// 4 KB / 2 MB / 1 GB page bytes and the 4 KB-pages-per-1 GB count.
const GEOMETRY_VALUES: [u64; 4] = [4096, 2 * 1024 * 1024, 1024 * 1024 * 1024, 262_144]; // lint: allow(geometry-literal) — this rule's own table

/// Classifies a workspace-relative path.
pub fn classify(path: &Path) -> FileKind {
    let has = |name: &str| path.iter().any(|c| c == name);
    if has("compat") {
        FileKind::Compat
    } else if has("tests") {
        FileKind::Test
    } else if has("bin") || has("benches") || has("examples") || path.ends_with("main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Is this file the root of a compilation target (where inner attributes
/// like `#![forbid(unsafe_code)]` belong)?
pub fn is_crate_root(path: &Path) -> bool {
    if path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") {
        return true;
    }
    let parent_is = |name: &str| {
        path.parent()
            .and_then(Path::file_name)
            .is_some_and(|p| p == name)
    };
    (parent_is("bin") || parent_is("benches") || parent_is("examples"))
        && path.extension().is_some_and(|e| e == "rs")
}

/// Lints one file's source with an explicit classification (the fixture
/// self-tests drive this directly).
pub fn lint_source(kind: FileKind, path: &Path, source: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    let masked = mask_code(source);
    let code = mask_test_blocks(&masked);

    let allowed = |rule: &str, line: usize| is_suppressed(&lines, source, rule, line);
    let mut push = |rule: &'static str, line: usize, message: String| {
        if !allowed(rule, line) {
            findings.push(Finding {
                rule,
                path: path.to_path_buf(),
                line,
                message,
            });
        }
    };

    if is_crate_root(path) {
        // Checked against *masked* text: mentioning the attribute in a
        // comment must not satisfy the rule.
        let ok = masked.contains("#![forbid(unsafe_code)]")
            || masked.contains("#![deny(unsafe_code)]");
        if !ok {
            push(
                "forbid-unsafe",
                1,
                "crate root lacks `#![forbid(unsafe_code)]` (use \
                 `#![deny(unsafe_code)]` plus a justification for a \
                 documented exception)"
                    .to_owned(),
            );
        }
    }

    if matches!(kind, FileKind::Test | FileKind::Compat) {
        return findings;
    }

    // relaxed-ordering: lib + bin.
    for (line, col) in find_all(&code, "Ordering::Relaxed") {
        let _ = col;
        push(
            "relaxed-ordering",
            line,
            "`Ordering::Relaxed` needs a written justification — the model \
             checker validates interleavings under sequential consistency \
             only, so relaxed choices are on you (add `// lint: \
             allow(relaxed-ordering) — why it is safe`)"
                .to_owned(),
        );
    }

    // panic: lib only.
    if kind == FileKind::Lib {
        for (line, what) in find_panic_sites(&code) {
            push(
                "panic",
                line,
                format!(
                    "`{what}` in library code — return an error or justify \
                     with `// lint: allow(panic) — why it cannot fire`"
                ),
            );
        }
    }

    // invalidate-sets-override: lib only.
    if kind == FileKind::Lib {
        for (line, body) in impl_blocks(&code, "TlbDevice") {
            if !body.contains("fn invalidate_sets") {
                push(
                    "invalidate-sets-override",
                    line,
                    "`impl TlbDevice` does not override `invalidate_sets`: \
                     the default prices every shootdown at one set, silently \
                     mis-costing mirrored designs (paper Sec. 5.1)"
                        .to_owned(),
                );
            }
        }
    }

    // geometry-literal: lib only, outside mixtlb-types.
    let in_types = path.iter().any(|c| c == "types");
    if kind == FileKind::Lib && !in_types {
        for (line, value, text) in numeric_literals(&code) {
            if GEOMETRY_VALUES.contains(&value) {
                push(
                    "geometry-literal",
                    line,
                    format!(
                        "hard-coded page-geometry constant `{text}` (= {value}) — \
                         use the named constants / `PageSize` accessors from \
                         `mixtlb-types`"
                    ),
                );
            }
        }
    }

    findings
}

/// Walks the workspace at `root` and lints every `.rs` file outside
/// `target/` and VCS metadata.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let source = fs::read_to_string(&path)?;
        report
            .findings
            .extend(lint_source(classify(&rel), &rel, &source));
        report.files_checked += 1;
    }
    Ok(report)
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scanner: comment/string masking, test-block masking, token helpers.
// ---------------------------------------------------------------------------

/// Replaces comments, string literals and char literals with spaces
/// (preserving byte offsets and newlines) so rules never fire on prose.
pub(crate) fn mask_code(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = source.as_bytes().to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = source[i..]
                    .find('\n')
                    .map(|o| i + o)
                    .unwrap_or(bytes.len());
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, as in Rust.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j.min(bytes.len()));
                i = j;
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string r"…" / r#"…"# (any hash count).
                let mut hashes = 0;
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    i += 1;
                    continue;
                }
                j += 1;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                while j < bytes.len() {
                    if bytes[j..].starts_with(&closer) {
                        j += closer.len();
                        break;
                    }
                    j += 1;
                }
                blank(&mut out, i, j.min(bytes.len()));
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, i, j.min(bytes.len()));
                i = j;
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with `'`
                // within a few bytes; a lifetime never does.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char: find the next quote.
                    source[i + 2..].find('\'').map(|o| i + 2 + o)
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None // lifetime
                };
                match close {
                    Some(end) => {
                        blank(&mut out, i, end + 1);
                        i = end + 1;
                    }
                    None => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    // The masking only writes ASCII spaces over non-newline bytes, so the
    // result stays valid UTF-8 except where a multi-byte char was partially
    // blanked — blank runs are whole literals/comments, so boundaries are
    // char boundaries. Rebuild losslessly.
    String::from_utf8(out).unwrap_or_else(|e| {
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    })
}

/// Blanks `#[cfg(test)]`-guarded items (brace-matched from the attribute)
/// in already comment-masked code.
pub(crate) fn mask_test_blocks(code: &str) -> String {
    let mut out = code.as_bytes().to_vec();
    let mut search = 0;
    while let Some(off) = code[search..].find("#[cfg(test)]") {
        let at = search + off;
        // Find the first `{` after the attribute and match braces.
        let Some(open_rel) = code[at..].find('{') else { break };
        let open = at + open_rel;
        let mut depth = 0usize;
        let mut end = code.len();
        for (j, b) in code.as_bytes().iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        for b in &mut out[at..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        search = end;
    }
    String::from_utf8(out).unwrap_or_else(|e| {
        String::from_utf8_lossy(e.as_bytes()).into_owned()
    })
}

/// 1-based line number of a byte offset.
pub(crate) fn line_of(code: &str, offset: usize) -> usize {
    code[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Every occurrence of `needle` in `code` as `(line, column)`.
fn find_all(code: &str, needle: &str) -> Vec<(usize, usize)> {
    let mut hits = Vec::new();
    let mut search = 0;
    while let Some(off) = code[search..].find(needle) {
        let at = search + off;
        let line_start = code[..at].rfind('\n').map(|p| p + 1).unwrap_or(0);
        hits.push((line_of(code, at), at - line_start + 1));
        search = at + needle.len();
    }
    hits
}

/// `unwrap()` / `expect()` method calls and `panic!` invocations, as
/// `(line, what)`. `unwrap_or`, `unwrap_or_else` etc. do not count — they
/// are the *fix*.
fn find_panic_sites(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut sites = Vec::new();
    for (what, label) in [("unwrap", "unwrap()"), ("expect", "expect()")] {
        for (at, _) in match_indices_word(code, what) {
            // Must be a method call: preceded by `.`, followed by `(`.
            let before = code[..at].trim_end();
            if !before.ends_with('.') {
                continue;
            }
            let mut j = at + what.len();
            while bytes.get(j) == Some(&b' ') {
                j += 1;
            }
            if bytes.get(j) == Some(&b'(') {
                sites.push((line_of(code, at), label));
            }
        }
    }
    for (at, _) in match_indices_word(code, "panic") {
        let mut j = at + "panic".len();
        while bytes.get(j) == Some(&b' ') {
            j += 1;
        }
        if bytes.get(j) == Some(&b'!') {
            sites.push((line_of(code, at), "panic!"));
        }
    }
    sites.sort_by_key(|&(line, _)| line);
    sites
}

/// Occurrences of `word` with identifier boundaries on both sides.
fn match_indices_word(code: &str, word: &str) -> Vec<(usize, usize)> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(off) = code[search..].find(word) {
        let at = search + off;
        let ok_before = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + word.len();
        let ok_after = after >= bytes.len() || !is_ident(bytes[after]);
        if ok_before && ok_after {
            out.push((at, after));
        }
        search = at + word.len();
    }
    out
}

/// `impl … <trait_name> for …` blocks as `(line, body)`.
fn impl_blocks<'c>(code: &'c str, trait_name: &str) -> Vec<(usize, &'c str)> {
    let mut blocks = Vec::new();
    for (at, _) in match_indices_word(code, "impl") {
        let rest = &code[at..];
        let Some(brace_rel) = rest.find('{') else { continue };
        let header = &rest[..brace_rel];
        // A trait impl header names the trait and continues with ` for `;
        // `;` means the match strayed into unrelated code.
        if header.contains(';')
            || !header.contains(" for ")
            || match_indices_word(header, trait_name).is_empty()
        {
            continue;
        }
        let open = at + brace_rel;
        let mut depth = 0usize;
        let mut end = code.len();
        for (j, b) in code.as_bytes().iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        blocks.push((line_of(code, at), &code[open..end]));
    }
    blocks
}

/// Numeric literals in the code as `(line, value, text)`, with underscores
/// and type suffixes normalized and `0x`/`0o`/`0b` radices parsed.
fn numeric_literals(code: &str) -> Vec<(usize, u64, String)> {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() && (i == 0 || !is_ident(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && (is_ident(bytes[i])) {
                i += 1;
            }
            let text = &code[start..i];
            if let Some(value) = parse_literal(text) {
                out.push((line_of(code, start), value, text.to_owned()));
            }
        } else {
            i += 1;
        }
    }
    out
}

fn parse_literal(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    // Strip a type suffix (u8…u128, i8…i128, usize, isize).
    let body = ["usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8"]
        .iter()
        .find_map(|s| clean.strip_suffix(s))
        .unwrap_or(&clean);
    if body.is_empty() {
        return None;
    }
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = body.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = body.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        body.parse().ok()
    }
}

/// Is the finding suppressed by a marker on the same or preceding line, or
/// by a file-level marker?
fn is_suppressed(lines: &[&str], source: &str, rule: &str, line: usize) -> bool {
    let site = format!("lint: allow({rule})");
    let file_wide = format!("lint: allow-file({rule})");
    if source.contains(&file_wide) {
        return true;
    }
    // A trailing marker on the offending line itself always counts.
    // (`line` is 1-based.)
    if lines
        .get(line.wrapping_sub(1))
        .is_some_and(|l| l.contains(&site))
    {
        return true;
    }
    // Otherwise scan upward through the contiguous comment block directly
    // above the site: a marker anywhere in that block covers the statement
    // it documents, however long the justification runs. A trailing marker
    // on the *previous statement* does not bleed downward, because that
    // line is not comment-only and stops the scan.
    let mut idx = line.wrapping_sub(2);
    while let Some(l) = lines.get(idx) {
        if !l.trim_start().starts_with("//") {
            break;
        }
        if l.contains(&site) {
            return true;
        }
        if idx == 0 {
            break;
        }
        idx -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings() {
        let src = "let x = \"panic!\"; // panic!\n/* panic! */ let y = 'p';\n";
        let masked = mask_code(src);
        assert!(!masked.contains("panic"));
        assert!(masked.contains("let x ="));
        assert!(masked.contains("let y ="));
        assert_eq!(masked.lines().count(), src.lines().count());
    }

    #[test]
    fn masking_keeps_lifetimes() {
        let masked = mask_code("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(masked.contains("'a"));
    }

    #[test]
    fn masking_handles_raw_strings() {
        let masked = mask_code(r##"let s = r#"unwrap() inside"#; let t = 1;"##);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("let t = 1;"));
    }

    #[test]
    fn test_blocks_are_masked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\n";
        let out = mask_test_blocks(&mask_code(src));
        assert!(!out.contains("unwrap"));
        assert!(out.contains("fn a()"));
    }

    #[test]
    fn panic_sites_exclude_unwrap_or() {
        let code = "a.unwrap_or_else(f); b.unwrap(); c.expect(\"x\"); panic!(\"y\");";
        let masked = mask_code(code);
        let sites = find_panic_sites(&masked);
        let labels: Vec<&str> = sites.iter().map(|&(_, w)| w).collect();
        assert_eq!(labels, ["unwrap()", "expect()", "panic!"]);
    }

    #[test]
    fn literal_parsing_normalizes() {
        assert_eq!(parse_literal("4096"), Some(4096));
        assert_eq!(parse_literal("4_096u64"), Some(4096));
        assert_eq!(parse_literal("0x1000"), Some(4096));
        assert_eq!(parse_literal("0x20_0000"), Some(2 * 1024 * 1024));
        assert_eq!(parse_literal("0b1000000000000"), Some(4096));
        assert_eq!(parse_literal("123usize"), Some(123));
        assert_eq!(parse_literal("0x"), None);
    }

    #[test]
    fn suppression_covers_same_and_preceding_line() {
        let src = "// lint: allow(panic) — fine\nx.unwrap();\ny.unwrap(); // lint: allow(panic)\nz.unwrap();\n";
        let findings = lint_source(FileKind::Lib, Path::new("crates/x/src/a.rs"), src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn file_wide_suppression() {
        let src = "// lint: allow-file(panic) — generated shim\nx.unwrap();\ny.unwrap();\n";
        let findings = lint_source(FileKind::Lib, Path::new("crates/x/src/a.rs"), src);
        assert!(findings.is_empty());
    }

    #[test]
    fn classification_by_path() {
        assert_eq!(classify(Path::new("compat/rand/src/lib.rs")), FileKind::Compat);
        assert_eq!(classify(Path::new("tests/differential.rs")), FileKind::Test);
        assert_eq!(classify(Path::new("crates/sim/src/bin/sweep.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("crates/sim/benches/tlb_ops.rs")), FileKind::Bin);
        assert_eq!(classify(Path::new("crates/core/src/mix.rs")), FileKind::Lib);
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root(Path::new("crates/core/src/lib.rs")));
        assert!(is_crate_root(Path::new("crates/check/src/main.rs")));
        assert!(is_crate_root(Path::new("crates/sim/src/bin/sweep.rs")));
        assert!(is_crate_root(Path::new("crates/sim/benches/tlb_ops.rs")));
        assert!(!is_crate_root(Path::new("crates/core/src/mix.rs")));
    }

    #[test]
    fn impl_block_extraction() {
        let code = "impl TlbDevice for Foo {\n fn invalidate_sets(&self) {}\n}\nimpl TlbDevice for Bar {\n fn other(&self) {}\n}\n";
        let blocks = impl_blocks(code, "TlbDevice");
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].1.contains("fn invalidate_sets"));
        assert!(!blocks[1].1.contains("fn invalidate_sets"));
    }
}
