//! # mixtlb-check — concurrency model checker and workspace lint pass
//!
//! PR 1 made the simulator genuinely parallel: a sharded, thread-safe
//! shared LLC ([`mixtlb-cache`]'s `shared` module), per-core ASID-tagged
//! TLBs, and an atomic shootdown-absorption cost model in `mixtlb-smp`.
//! The paper's central correctness claim — MIX's mirrored superpage
//! entries stay coherent across sets and cores after invalidation sweeps
//! (Cox & Bhattacharjee, ASPLOS 2017, §5.1) — therefore now rests on
//! lock/atomic discipline. This crate verifies that discipline, fully
//! offline (no registry dependencies), in three layers:
//!
//! 1. **[`sched`] + [`sync`] — a mini-loom.** Concurrent crates import
//!    `Mutex`/`AtomicU64` from the [`sync`] facade; with the `model`
//!    feature those resolve to instrumented wrappers whose operations are
//!    schedule points, and [`sched::explore`] replays small 2–3-core
//!    shootdown and shared-LLC scenarios under *every* interleaving up to
//!    a preemption bound, asserting the coherence invariants (no stale
//!    translation after a shootdown acknowledges, no orphan mirror after a
//!    mirrored-set sweep, absorbed counters sum consistently, no
//!    lock-order inversion across LLC shards). Without the feature the
//!    facade is a zero-overhead `std::sync` re-export.
//! 2. **[`lint`] — a token-level workspace lint driver** (`mixtlb-check
//!    --lint`) enforcing project rules that `rustc`/`clippy` cannot see:
//!    no `Ordering::Relaxed` without a written justification, no
//!    `unwrap`/`expect`/`panic!` in non-test library code, every
//!    `TlbDevice` impl overrides `invalidate_sets`, no hard-coded TLB
//!    geometry constants outside `mixtlb-types`, every crate forbids
//!    `unsafe_code`.
//! 3. **[`protocol`] — executable shootdown-protocol scenarios** shared by
//!    the model-check test suites, with seeded bugs (doorbell-before-remap
//!    reordering, partial mirrored-set sweeps) proving the explorer
//!    actually catches the failure modes it claims to.
//!
//! The structural TLB invariants themselves (`check_invariants`) live in
//! `mixtlb-core` next to `MixTlb`, so unit tests and the model checker
//! share one implementation.
//!
//! ## Running the checkers
//!
//! ```text
//! cargo run -p mixtlb-check -- --lint        # workspace lint pass
//! cargo test -p mixtlb-check --features model # bounded model checking
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod handoff;
pub mod lint;
pub mod protocol;
pub mod sched;
pub mod sync;
