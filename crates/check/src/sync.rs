//! The synchronization facade adopted by the concurrent crates.
//!
//! Production crates (`mixtlb-cache`'s sharded LLC, `mixtlb-smp`'s shootdown
//! counters) import their primitives from here instead of `std::sync`:
//!
//! ```ignore
//! use mixtlb_check::sync::{AtomicU64, Mutex, Ordering};
//! ```
//!
//! Without the `model` feature — the production default — every alias is a
//! plain re-export of the `std` type, so adoption is zero-overhead and
//! binary-identical. With `model` enabled (the model-check test suites turn
//! it on through their dev-dependencies), the aliases resolve to the
//! [`instrumented`] wrappers below, whose operations park at schedule
//! points of the bounded interleaving explorer ([`crate::sched::explore`]).
//!
//! The wrappers are *dormant* outside an exploration: when the calling
//! thread is not managed by a running explorer (no
//! [`crate::sched::current`] context), they pass straight through to `std`.
//! That makes a `model`-enabled test binary safe to run ordinary
//! (non-model-check) tests in.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::AtomicU64;
#[cfg(not(feature = "model"))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(feature = "model")]
pub use instrumented::{AtomicU64, Mutex, MutexGuard};

pub use instrumented::{Event, Semaphore};

/// Instrumented drop-in replacements for the `std::sync` primitives the
/// workspace's concurrent code uses, plus an [`Event`] signal for protocol
/// scenarios. Always compiled (so scenario code can name the types
/// feature-independently); only *aliased* as `sync::{Mutex, AtomicU64}`
/// under the `model` feature.
pub mod instrumented {
    use crate::sched::{current, next_object_id, Op};
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering};
    use std::sync::{
        Condvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
    };

    fn relock<T>(e: PoisonError<StdMutexGuard<'_, T>>) -> StdMutexGuard<'_, T> {
        e.into_inner()
    }

    /// A mutex whose acquisition is a schedule point.
    ///
    /// API-compatible with the `std::sync::Mutex` surface the workspace
    /// uses (`new`, `lock`, `into_inner`, `get_mut`). Under an explorer,
    /// `lock` parks at [`Op::Lock`] and is granted only when the model
    /// considers the mutex free, so the real acquisition below never
    /// blocks; acquisition/release are reported for lock-order analysis.
    pub struct Mutex<T> {
        id: u64,
        inner: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new instrumented mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: next_object_id(),
                inner: StdMutex::new(value),
            }
        }

        /// Acquires the mutex (schedule point under an explorer).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match current() {
                Some(ctx) => {
                    ctx.ctl.reach_point(ctx.tid, Op::Lock(self.id));
                    // The controller grants `Lock` only when no managed
                    // thread holds this id, and managed threads are
                    // serialized, so this never blocks.
                    let guard = self.inner.lock().unwrap_or_else(relock);
                    ctx.ctl.acquired(ctx.tid, self.id);
                    Ok(MutexGuard {
                        release: Some((ctx, self.id)),
                        inner: guard,
                    })
                }
                None => match self.inner.lock() {
                    Ok(inner) => Ok(MutexGuard {
                        release: None,
                        inner,
                    }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        release: None,
                        inner: e.into_inner(),
                    })),
                },
            }
        }

        /// Consumes the mutex, returning the underlying data.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }

        /// Returns a mutable reference to the underlying data.
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex").field("id", &self.id).finish()
        }
    }

    /// Guard returned by [`Mutex::lock`]; releases the model's view of the
    /// lock on drop (the real unlock follows when the inner guard drops).
    pub struct MutexGuard<'a, T> {
        release: Option<(crate::sched::ThreadCtx, u64)>,
        inner: StdMutexGuard<'a, T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some((ctx, id)) = self.release.take() {
                // Safe to report before the real unlock: no other managed
                // thread can attempt the real acquisition until the
                // controller reaches quiescence, which requires this
                // thread to park first — long after `inner` dropped.
                ctx.ctl.released(ctx.tid, id);
            }
        }
    }

    /// An atomic `u64` whose loads/stores/RMWs are schedule points.
    ///
    /// Under an explorer all operations execute `SeqCst` (the explorer
    /// checks interleavings under sequential consistency; see the module
    /// docs of [`crate::sched`]); dormant, the caller's ordering is used
    /// unchanged.
    pub struct AtomicU64 {
        id: u64,
        inner: StdAtomicU64,
    }

    impl AtomicU64 {
        /// Creates a new instrumented atomic.
        pub fn new(value: u64) -> AtomicU64 {
            AtomicU64 {
                id: next_object_id(),
                inner: StdAtomicU64::new(value),
            }
        }

        /// Atomic load (schedule point under an explorer).
        pub fn load(&self, order: Ordering) -> u64 {
            match current() {
                Some(ctx) => {
                    ctx.ctl.reach_point(ctx.tid, Op::AtomicLoad(self.id));
                    self.inner.load(Ordering::SeqCst)
                }
                None => self.inner.load(order),
            }
        }

        /// Atomic store (schedule point under an explorer).
        pub fn store(&self, value: u64, order: Ordering) {
            match current() {
                Some(ctx) => {
                    ctx.ctl.reach_point(ctx.tid, Op::AtomicStore(self.id));
                    self.inner.store(value, Ordering::SeqCst);
                }
                None => self.inner.store(value, order),
            }
        }

        /// Atomic fetch-add (schedule point under an explorer).
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            match current() {
                Some(ctx) => {
                    ctx.ctl.reach_point(ctx.tid, Op::AtomicRmw(self.id));
                    self.inner.fetch_add(value, Ordering::SeqCst)
                }
                None => self.inner.fetch_add(value, order),
            }
        }

        /// Atomic fetch-sub (schedule point under an explorer). The
        /// work-stealing deque's owner-side bottom reservation drives
        /// this.
        pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
            match current() {
                Some(ctx) => {
                    ctx.ctl.reach_point(ctx.tid, Op::AtomicRmw(self.id));
                    self.inner.fetch_sub(value, Ordering::SeqCst)
                }
                None => self.inner.fetch_sub(value, order),
            }
        }

        /// Atomic compare-exchange (schedule point under an explorer).
        /// The work-stealing deque's steal claim drives this.
        pub fn compare_exchange(
            &self,
            current_val: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            match current() {
                Some(ctx) => {
                    ctx.ctl.reach_point(ctx.tid, Op::AtomicRmw(self.id));
                    self.inner
                        .compare_exchange(current_val, new, Ordering::SeqCst, Ordering::SeqCst)
                }
                None => self.inner.compare_exchange(current_val, new, success, failure),
            }
        }

        /// Returns a mutable reference to the underlying value.
        pub fn get_mut(&mut self) -> &mut u64 {
            self.inner.get_mut()
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> u64 {
            self.inner.into_inner()
        }
    }

    impl fmt::Debug for AtomicU64 {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("AtomicU64")
                .field("id", &self.id)
                .field("value", &self.inner.load(Ordering::SeqCst))
                .finish()
        }
    }

    /// A one-shot signal (doorbell / acknowledgement line) for shootdown
    /// protocol scenarios. `wait` is a *blocking-capable* schedule point:
    /// under an explorer, a thread parked at [`Op::EventWait`] is disabled
    /// until some thread performs [`Event::set`], which is exactly how the
    /// explorer detects lost-wakeup deadlocks.
    pub struct Event {
        id: u64,
        state: StdMutex<bool>,
        cv: Condvar,
    }

    impl Event {
        /// Creates an unset event.
        pub fn new() -> Event {
            Event {
                id: next_object_id(),
                state: StdMutex::new(false),
                cv: Condvar::new(),
            }
        }

        /// Sets the event, waking all waiters.
        pub fn set(&self) {
            match current() {
                Some(ctx) => {
                    ctx.ctl.reach_point(ctx.tid, Op::EventSet(self.id));
                    // The controller records the set in its model on
                    // grant; mirror it locally for `is_set` reads.
                    *self.state.lock().unwrap_or_else(relock) = true;
                }
                None => {
                    *self.state.lock().unwrap_or_else(relock) = true;
                    self.cv.notify_all();
                }
            }
        }

        /// Blocks until the event is set.
        pub fn wait(&self) {
            match current() {
                Some(ctx) => {
                    // Granted only once the event is set in the model; the
                    // local flag is then already true.
                    ctx.ctl.reach_point(ctx.tid, Op::EventWait(self.id));
                }
                None => {
                    let mut set = self.state.lock().unwrap_or_else(relock);
                    while !*set {
                        set = self.cv.wait(set).unwrap_or_else(relock);
                    }
                }
            }
        }

        /// Non-blocking poll (schedule point under an explorer).
        pub fn is_set(&self) -> bool {
            if let Some(ctx) = current() {
                ctx.ctl.reach_point(ctx.tid, Op::EventPoll(self.id));
            }
            *self.state.lock().unwrap_or_else(relock)
        }
    }

    impl Default for Event {
        fn default() -> Event {
            Event::new()
        }
    }

    /// A counting semaphore for bounded hand-off queues.
    ///
    /// `std::sync` has no semaphore, so this Mutex+Condvar counter *is*
    /// the production implementation (the facade is dormant without an
    /// explorer). Under an explorer, `acquire` parks at
    /// [`Op::SemAcquire`], which stays **disabled** while the model's
    /// permit count is zero — a pipeline built on it never spins during
    /// exploration, and a missing `release` surfaces as a genuine
    /// [`crate::sched::FailureKind::Deadlock`] instead of a step-limit
    /// livelock.
    pub struct Semaphore {
        id: u64,
        permits: StdMutex<u64>,
        cv: Condvar,
    }

    impl Semaphore {
        /// Creates a semaphore holding `permits` permits.
        pub fn new(permits: u64) -> Semaphore {
            Semaphore {
                id: next_object_id(),
                permits: StdMutex::new(permits),
                cv: Condvar::new(),
            }
        }

        /// Acquires one permit, blocking while none are available.
        pub fn acquire(&self) {
            match current() {
                Some(ctx) => {
                    // Register the pre-exploration count on the first
                    // managed touch; the controller then grants
                    // `SemAcquire` only while its modelled count is
                    // positive, so the real decrement below never blocks.
                    ctx.ctl
                        .ensure_sem(self.id, *self.permits.lock().unwrap_or_else(relock));
                    ctx.ctl.reach_point(ctx.tid, Op::SemAcquire(self.id));
                    let mut p = self.permits.lock().unwrap_or_else(relock);
                    debug_assert!(*p > 0, "controller granted acquire at zero permits");
                    *p -= 1;
                }
                None => {
                    let mut p = self.permits.lock().unwrap_or_else(relock);
                    while *p == 0 {
                        p = self.cv.wait(p).unwrap_or_else(relock);
                    }
                    *p -= 1;
                }
            }
        }

        /// Releases one permit, waking one blocked acquirer.
        pub fn release(&self) {
            match current() {
                Some(ctx) => {
                    ctx.ctl
                        .ensure_sem(self.id, *self.permits.lock().unwrap_or_else(relock));
                    ctx.ctl.reach_point(ctx.tid, Op::SemRelease(self.id));
                    *self.permits.lock().unwrap_or_else(relock) += 1;
                }
                None => {
                    *self.permits.lock().unwrap_or_else(relock) += 1;
                    self.cv.notify_one();
                }
            }
        }

        /// Current permit count (racy under concurrency; exact while
        /// quiesced — used by buffer-pool accounting assertions).
        pub fn available(&self) -> u64 {
            *self.permits.lock().unwrap_or_else(relock)
        }
    }

    impl fmt::Debug for Semaphore {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Semaphore")
                .field("id", &self.id)
                .field("permits", &self.available())
                .finish()
        }
    }

    impl fmt::Debug for Event {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Event")
                .field("id", &self.id)
                .field("set", &*self.state.lock().unwrap_or_else(relock))
                .finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Event;

    #[test]
    fn event_set_is_observable_by_polling() {
        // Outside an explorer the facade passes straight through to std:
        // `is_set` must observe `set` without blocking in `wait`.
        let ev = Event::new();
        assert!(!ev.is_set());
        ev.set();
        assert!(ev.is_set());
        ev.wait(); // already set: returns immediately
    }
}
