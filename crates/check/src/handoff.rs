//! A bounded producer→consumer hand-off queue, plus the model-check
//! scenario that explores it.
//!
//! The streaming decode→translate pipeline (`mixtlb-smp`'s `pipeline`
//! module) moves reusable event-chunk buffers between a reader, a pool of
//! decoder workers, and a translating consumer. Those hand-offs need
//! *blocking* bounded queues — the whole point is back-pressure: a fixed
//! buffer pool bounds resident memory no matter how long the corpus is.
//! `std::sync::mpsc` channels are unbounded (or rendezvous) and opaque to
//! the model checker, so the pipeline instead uses this [`BoundedQueue`]:
//! the classic two-semaphore + mutex ring, built entirely on the
//! [`crate::sync`] facade.
//!
//! Under the interleaving explorer every `acquire`/`release`/`lock` is a
//! schedule point with real *enabledness* (a consumer blocked on an empty
//! queue is disabled, not spinning), so [`crate::sched::explore`] can
//! prove the hand-off protocol deadlock-free for a given thread topology —
//! and, just as importantly, prove that the explorer would catch the
//! classic mistake: enqueueing an item without publishing it
//! ([`HandoffBug::MissingPublish`]) strands the consumer at a disabled
//! `SemAcquire` and is reported as a genuine
//! [`crate::sched::FailureKind::Deadlock`].

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sched::Sim;
use crate::sync::{Mutex, Semaphore};

/// A fixed-capacity blocking FIFO: `push` blocks while full, `pop` blocks
/// while empty. Two counting semaphores carry the back-pressure protocol;
/// a mutexed ring holds the elements.
///
/// All operations go through the [`crate::sync`] facade, so a pipeline
/// built on this queue can be explored by the model checker with the
/// `model` feature enabled, and costs one `Mutex` + two `Condvar` waits
/// in production.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    /// Free-slot permits: `push` consumes one, `pop` returns one.
    pub(crate) slots: Semaphore,
    /// Filled-slot permits: `push` publishes one, `pop` consumes one.
    pub(crate) items: Semaphore,
    /// The elements. A plain `VecDeque` under the facade mutex: hand-offs
    /// are per trace *block* (thousands of events), so queue overhead is
    /// nowhere near any hot path.
    pub(crate) ring: Mutex<VecDeque<T>>,
}

fn lock<T>(m: &Mutex<VecDeque<T>>) -> impl std::ops::DerefMut<Target = VecDeque<T>> + '_ {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` elements (min 1).
    pub fn with_capacity(capacity: usize) -> BoundedQueue<T> {
        let capacity = capacity.max(1);
        BoundedQueue {
            slots: Semaphore::new(capacity as u64),
            items: Semaphore::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Enqueues `value`, blocking while the queue is full.
    pub fn push(&self, value: T) {
        self.slots.acquire();
        lock(&self.ring).push_back(value);
        self.items.release();
    }

    /// Dequeues the oldest element, blocking while the queue is empty.
    pub fn pop(&self) -> T {
        self.items.acquire();
        loop {
            if let Some(v) = lock(&self.ring).pop_front() {
                self.slots.release();
                return v;
            }
            // Unreachable under the semaphore invariant (an `items`
            // permit is released only after its element is enqueued);
            // tolerate a spurious miss rather than panic.
            std::thread::yield_now();
        }
    }

    /// Elements currently enqueued (racy under concurrency, exact while
    /// quiesced — used by buffer-pool accounting assertions).
    pub fn len(&self) -> usize {
        lock(&self.ring).len()
    }

    /// `true` when no elements are enqueued (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A deliberately seeded hand-off bug for the explorer's self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoffBug {
    /// The correct protocol: every enqueue publishes an `items` permit,
    /// every consumed buffer is recycled. Must pass all schedules.
    #[default]
    None,
    /// The producer's last enqueue skips the `items` release — the element
    /// sits in the ring but the consumer's `SemAcquire` stays disabled
    /// forever. Every schedule deadlocks.
    MissingPublish,
    /// The consumer processes the first buffer but never returns it to
    /// the free pool. The pool drains out of circulation and the producer
    /// blocks forever on the empty free queue. Every schedule deadlocks.
    LeakedBuffer,
}

/// The pipeline hand-off scenario: one producer "decoding" blocks into a
/// recycled pool of buffers, one consumer "translating" them, two
/// [`BoundedQueue`]s (ready + free) carrying the hand-off, exactly the
/// topology `mixtlb-smp`'s streaming pipeline uses (scaled down to keep
/// the schedule space tractable).
///
/// Invariants asserted after every schedule:
///
/// * the consumer saw every block, in order, with the payload its buffer
///   held at publish time (no torn or recycled-too-early buffer);
/// * every buffer returned to the free pool (no leak, pool accounting
///   exact).
#[derive(Debug, Clone, Copy)]
pub struct HandoffScenario {
    /// Which mistake (if any) to seed.
    pub bug: HandoffBug,
}

/// Buffers in the pool. One forces full recycling: block 1 cannot decode
/// until block 0's buffer came back.
const DEPTH: usize = 1;
/// Blocks pushed through the pipeline.
const BLOCKS: u64 = 2;

impl HandoffScenario {
    /// A scenario with the given seeded bug.
    pub fn with_bug(bug: HandoffBug) -> HandoffScenario {
        HandoffScenario { bug }
    }

    /// Registers the producer/consumer threads and the final validator on
    /// `sim`. Called once per explored schedule, so all state is fresh.
    pub fn install(&self, sim: &mut Sim) {
        let bug = self.bug;

        // Shared state. Construction runs on the controller thread (no
        // managed context), so the facade is dormant here and costs no
        // schedule points.
        let free: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::with_capacity(DEPTH));
        let ready: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::with_capacity(DEPTH));
        for buf in 0..DEPTH as u64 {
            free.push(buf);
        }
        // One payload word per pool buffer: the producer stamps the block
        // sequence number, the consumer checks it — a recycled-too-early
        // buffer (or a publish of the wrong buffer) stamps over a payload
        // the consumer has not read yet.
        let payload: Arc<Vec<crate::sync::instrumented::AtomicU64>> = Arc::new(
            (0..DEPTH)
                .map(|_| crate::sync::instrumented::AtomicU64::new(u64::MAX))
                .collect(),
        );
        let consumed = Arc::new(crate::sync::instrumented::AtomicU64::new(0));

        {
            let (free, ready, payload) =
                (Arc::clone(&free), Arc::clone(&ready), Arc::clone(&payload));
            sim.thread("decoder", move || {
                for seq in 0..BLOCKS {
                    let buf = free.pop();
                    payload[buf as usize].store(seq, crate::sync::Ordering::SeqCst);
                    if bug == HandoffBug::MissingPublish && seq == BLOCKS - 1 {
                        // BUG: enqueue without publishing the items permit.
                        lock(&ready.ring).push_back(buf);
                    } else {
                        ready.push(buf);
                    }
                }
            });
        }
        {
            let (free, ready, payload, consumed) = (
                Arc::clone(&free),
                Arc::clone(&ready),
                Arc::clone(&payload),
                Arc::clone(&consumed),
            );
            sim.thread("translator", move || {
                for seq in 0..BLOCKS {
                    let buf = ready.pop();
                    let got = payload[buf as usize].load(crate::sync::Ordering::SeqCst);
                    assert_eq!(got, seq, "buffer {buf} delivered a torn/stale payload");
                    consumed.fetch_add(1, crate::sync::Ordering::SeqCst);
                    if !(bug == HandoffBug::LeakedBuffer && seq == 0) {
                        free.push(buf);
                    }
                }
            });
        }

        let free_v = Arc::clone(&free);
        let ready_v = Arc::clone(&ready);
        sim.finally(move || {
            assert_eq!(
                consumed.load(crate::sync::Ordering::SeqCst),
                BLOCKS,
                "consumer must see every block"
            );
            assert!(ready_v.is_empty(), "no unconsumed block may remain");
            assert_eq!(
                free_v.len(),
                DEPTH,
                "every pool buffer must return to the free queue"
            );
        });
    }

    /// Explores the scenario under the given bounds.
    pub fn explore(&self, cfg: &crate::sched::Config) -> crate::sched::Report {
        crate::sched::explore(cfg, |sim| self.install(sim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_passes_values_fifo() {
        let q: BoundedQueue<u32> = BoundedQueue::with_capacity(2);
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), 1);
        assert_eq!(q.pop(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_blocks_and_wakes_across_threads() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::with_capacity(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += q2.pop();
            }
            sum
        });
        for i in 0..100u64 {
            q.push(i); // capacity 1: every push waits for the pop
        }
        assert_eq!(h.join().unwrap_or(0), (0..100).sum());
    }
}
