//! Crate-level call graph and workspace reference counts.
//!
//! Nodes are every parsed function (any file kind — binaries and tests
//! count as callers so library code they exercise stays live). Edges are
//! resolved by simple callee name: token `name` directly followed by `(`
//! inside a caller's body links to every function named `name` anywhere
//! in the workspace. Like the symbol table this is an over-approximation
//! — with no type inference, `a.flush()` edges to *every* `flush` — which
//! biases the dead-code rule toward false negatives instead of false
//! positives.
//!
//! [`count_references`] is the companion metric for non-function symbols:
//! how many identifier tokens across the whole workspace name a symbol,
//! excluding its own declaration tokens.

use std::collections::{HashMap, HashSet};

use super::lexer::TokKind;
use super::outline::ParsedFile;

/// One function node.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnNode {
    /// Index of the declaring file.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub(crate) struct CallGraph {
    /// All function nodes.
    pub nodes: Vec<FnNode>,
    /// Caller → callee node-index edges (deduplicated).
    pub edges: HashSet<(usize, usize)>,
    /// Incoming-edge count per node.
    pub in_degree: Vec<usize>,
}

impl CallGraph {
    /// Builds the graph over all parsed files.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut graph = CallGraph::default();
        // Name → candidate callee nodes.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (fj, f) in file.fns.iter().enumerate() {
                let idx = graph.nodes.len();
                graph.nodes.push(FnNode { file: fi, fn_idx: fj });
                by_name.entry(f.name.as_str()).or_default().push(idx);
            }
        }
        graph.in_degree = vec![0; graph.nodes.len()];
        // Edges: scan each body for `name (` call sites.
        let mut node_of = HashMap::new();
        for (idx, node) in graph.nodes.iter().enumerate() {
            node_of.insert((node.file, node.fn_idx), idx);
        }
        for (fi, file) in files.iter().enumerate() {
            for (fj, f) in file.fns.iter().enumerate() {
                let Some((from, to)) = f.body else { continue };
                let Some(&caller) = node_of.get(&(fi, fj)) else { continue };
                let toks = &file.toks;
                for i in from..to.min(toks.len()) {
                    if toks[i].kind != TokKind::Ident {
                        continue;
                    }
                    let is_call = toks.get(i + 1).is_some_and(|t| t.is("("));
                    let is_decl = i > 0 && toks[i - 1].is_ident("fn");
                    if !is_call || is_decl {
                        continue;
                    }
                    let Some(callees) = by_name.get(toks[i].text.as_str()) else {
                        continue;
                    };
                    for &callee in callees {
                        if callee != caller && graph.edges.insert((caller, callee)) {
                            graph.in_degree[callee] += 1;
                        }
                    }
                }
            }
        }
        graph
    }
}

/// Keywords that can precede an identifier in its own declaration.
const DECL_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "union", "trait", "mod", "const", "static", "type",
];

/// Counts, per identifier, how many tokens across all files *reference*
/// it — i.e. are not the name token of a declaration (`fn name`,
/// `struct name`, `static mut NAME`, `macro_rules! name`).
pub(crate) fn count_references(files: &[ParsedFile]) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for file in files {
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let prev2 = i.checked_sub(2).map(|p| toks[p].text.as_str());
            let is_decl = match prev {
                Some(p) if DECL_KEYWORDS.contains(&p) => true,
                Some("mut") if prev2 == Some("static") => true,
                Some("!") if prev2 == Some("macro_rules") => true,
                _ => false,
            };
            if !is_decl {
                *counts.entry(t.text.clone()).or_default() += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::FileKind;
    use std::path::PathBuf;

    fn parse(path: &str, src: &str) -> ParsedFile {
        ParsedFile::parse(&PathBuf::from(path), FileKind::Lib, src)
    }

    #[test]
    fn edges_cross_files_by_name() {
        let a = parse("crates/a/src/lib.rs", "pub fn used() {}\npub fn lonely() {}\n");
        let b = parse("crates/b/src/lib.rs", "pub fn driver() { used(); }\n");
        let g = CallGraph::build(&[a, b]);
        assert_eq!(g.nodes.len(), 3);
        // `used` has one caller, `lonely` none.
        let deg: Vec<usize> = g.in_degree.clone();
        assert_eq!(deg.iter().sum::<usize>(), 1);
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn declarations_are_not_references() {
        let f = parse(
            "crates/a/src/lib.rs",
            "pub fn lonely() {}\npub fn used() {}\nfn main2() { used(); }\n",
        );
        let counts = count_references(&[f]);
        assert!(!counts.contains_key("lonely"));
        assert_eq!(counts.get("used"), Some(&1));
    }
}
