//! Value-range & known-bits abstract interpretation.
//!
//! The nine structural rules track names, locks, and calls but never
//! *values* — which is exactly how the pre-PR-8 `Asid::new(id as u16 + 1)`
//! overflow shipped. This module adds a small abstract domain and a
//! flow-sensitive evaluator over the outline parser's token stream, and
//! three value rules on top of it:
//!
//! * `bit-pack-overflow` — shift-or packing chains whose fields overlap,
//!   escape their slot, or exceed the carrier width;
//! * `tag-range` — values flowing into constructors of width-annotated
//!   tag types (`// bits: N` on the declaration) that may exceed the
//!   declared width;
//! * `index-bound` — indices into fixed-capacity storage (`[T; N]`
//!   fields/locals, `vec![x; N]` locals) not provably within capacity.
//!
//! # Domain
//!
//! [`Val`] is an interval plus a known-bits mask: `Rng { lo, hi, bits }`
//! where `bits` over-approximates the bits that may be set (exact for
//! constants, `(1 << k) - 1` after `& mask`, shifted along with shifts).
//! `Top` is "any value". Everything unknown — fields, unannotated calls,
//! non-const shifts — evaluates to `Top`, and rules stay silent on `Top`
//! except where the whole point is provability (slot membership of a
//! non-top packing field, index bounds against a known capacity). This
//! is the same bias as the structural rules: a finding must be worth
//! reading, so definite ranges come only from literals, casts, masks,
//! modulo, `assert!` narrowing, annotations, and computed summaries.
//!
//! # Interprocedural summaries
//!
//! Return ranges are computed bottom-up over the SCC condensation of the
//! call graph (same engine as the lockset rules): each component is
//! iterated to a small fixpoint with widening (ranges that keep growing
//! jump to `Top`), and `// bits: N` on a `fn` overrides its computed
//! summary. Parameter ranges flow top-down in one pass: every call
//! site's argument values are joined per callee parameter, and trusted
//! only for non-`pub`, non-trait-impl functions (whose call sites are
//! all visible to the analyzer).

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use super::callgraph::CallGraph;
use super::dataflow::{condense, successors};
use super::lexer::{skip_generics, skip_group, Tok, TokKind};
use super::outline::{DeclKind, ParsedFile, Vis};
use super::rules::RuleFinding;
use crate::lint::FileKind;

/// Compound assignment operators the statement walker models.
const ASSIGN_OPS: [&str; 10] = ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="];

/// Magnitude guard: ranges beyond ±2^100 collapse to `Top` so interval
/// arithmetic can never overflow `i128`.
const LIM: i128 = 1 << 100;

/// Abstract value: unknown, or an interval with a known-bits mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Val {
    /// Any value.
    Top,
    /// `lo..=hi` with `bits` over-approximating the possibly-set bits
    /// (meaningful for non-negative ranges; all-ones when `lo < 0`).
    Rng { lo: i128, hi: i128, bits: u128 },
}

/// Smallest all-ones mask covering every value in `0..=hi`.
fn bits_below(hi: i128) -> u128 {
    if hi <= 0 {
        0
    } else {
        let w = 128 - (hi as u128).leading_zeros();
        if w >= 128 { u128::MAX } else { (1u128 << w) - 1 }
    }
}

/// Bit length of a mask (position one past the highest set bit).
fn bit_len(bits: u128) -> u32 {
    128 - bits.leading_zeros()
}

impl Val {
    /// The constant `n` (exact bits).
    pub fn cst(n: i128) -> Val {
        Val::rng(n, n)
    }

    /// The interval `lo..=hi` with a conservative bits mask.
    pub fn rng(lo: i128, hi: i128) -> Val {
        if lo > hi || lo <= -LIM || hi >= LIM {
            return Val::Top;
        }
        let bits = if lo < 0 {
            u128::MAX
        } else if lo == hi {
            lo as u128
        } else {
            bits_below(hi)
        };
        Val::Rng { lo, hi, bits }
    }

    /// The interval `lo..=hi` with an explicit (tighter) bits mask.
    fn rng_bits(lo: i128, hi: i128, bits: u128) -> Val {
        match Val::rng(lo, hi) {
            Val::Rng { lo, hi, bits: b } => Val::Rng { lo, hi, bits: b & bits },
            Val::Top => Val::Top,
        }
    }

    /// The full range of an unsigned `width`-bit integer.
    fn unsigned(width: u32) -> Val {
        if width >= 100 {
            Val::Top
        } else {
            Val::rng_bits(0, (1i128 << width) - 1, (1u128 << width) - 1)
        }
    }

    /// Least upper bound.
    pub fn join(self, o: Val) -> Val {
        match (self, o) {
            (Val::Rng { lo: a, hi: b, bits: x }, Val::Rng { lo: c, hi: d, bits: y }) => {
                Val::rng_bits(a.min(c), b.max(d), x | y)
            }
            _ => Val::Top,
        }
    }

    /// Widening: keep `old` if `new` fits inside it, else give up. Used
    /// in the per-SCC fixpoint so recursive summaries terminate.
    fn widen(self, new: Val) -> Val {
        match (self, new) {
            (Val::Rng { lo: a, hi: b, .. }, Val::Rng { lo: c, hi: d, .. })
                if a <= c && d <= b =>
            {
                self
            }
            _ if self == new => self,
            _ => Val::Top,
        }
    }

    fn add(self, o: Val) -> Val {
        match (self, o) {
            (Val::Rng { lo: a, hi: b, .. }, Val::Rng { lo: c, hi: d, .. }) => {
                Val::rng(a + c, b + d)
            }
            _ => Val::Top,
        }
    }

    fn sub(self, o: Val) -> Val {
        match (self, o) {
            (Val::Rng { lo: a, hi: b, .. }, Val::Rng { lo: c, hi: d, .. }) => {
                Val::rng(a - d, b - c)
            }
            _ => Val::Top,
        }
    }

    fn mul(self, o: Val) -> Val {
        match (self, o) {
            (Val::Rng { lo: a, hi: b, .. }, Val::Rng { lo: c, hi: d, .. }) => {
                let ps = [a.checked_mul(c), a.checked_mul(d), b.checked_mul(c), b.checked_mul(d)];
                let (mut lo, mut hi) = (i128::MAX, i128::MIN);
                for p in ps {
                    match p {
                        Some(p) => {
                            lo = lo.min(p);
                            hi = hi.max(p);
                        }
                        None => return Val::Top,
                    }
                }
                Val::rng(lo, hi)
            }
            _ => Val::Top,
        }
    }

    fn div(self, o: Val) -> Val {
        match (self, o) {
            (Val::Rng { lo: a, hi: b, .. }, Val::Rng { lo: c, hi: d, .. })
                if a >= 0 && c > 0 =>
            {
                Val::rng(a / d, b / c)
            }
            _ => Val::Top,
        }
    }

    /// `self % o` — the key range producer: `x % c` with unknown `x`
    /// still lands in `0..c` when `x` is non-negative.
    fn rem(self, o: Val) -> Val {
        match o {
            Val::Rng { lo: c, hi: d, .. } if c > 0 => match self {
                Val::Rng { lo: a, hi: b, .. } if a >= 0 => Val::rng(0, (d - 1).min(b)),
                // Unknown or possibly-negative dividend: Rust `%` keeps
                // the dividend's sign, so the result is within ±(d-1).
                _ => Val::rng(-(d - 1), d - 1),
            },
            _ => Val::Top,
        }
    }

    /// Bitwise AND — masking with a non-negative constant bounds even a
    /// `Top` (or negative) left side: `x & 0xFF` is always `0..=255`.
    fn and(self, o: Val) -> Val {
        let mask = |v: Val| match v {
            Val::Rng { lo, bits, .. } if lo >= 0 => Some(bits),
            _ => None,
        };
        let (ma, mb) = (mask(self), mask(o));
        if ma.is_none() && mb.is_none() {
            return Val::Top;
        }
        let bits = ma.unwrap_or(u128::MAX) & mb.unwrap_or(u128::MAX);
        if bits >= LIM as u128 {
            return Val::Top;
        }
        let mut hi = bits as i128;
        if let Val::Rng { lo, hi: h, .. } = self {
            if lo >= 0 {
                hi = hi.min(h);
            }
        }
        if let Val::Rng { lo, hi: h, .. } = o {
            if lo >= 0 {
                hi = hi.min(h);
            }
        }
        Val::rng_bits(0, hi, bits)
    }

    fn or(self, o: Val) -> Val {
        match (self, o) {
            (Val::Rng { lo: a, bits: x, .. }, Val::Rng { lo: c, bits: y, .. })
                if a >= 0 && c >= 0 =>
            {
                let bits = x | y;
                if bits >= LIM as u128 {
                    Val::Top
                } else {
                    Val::rng_bits(a.max(c), bits as i128, bits)
                }
            }
            _ => Val::Top,
        }
    }

    fn xor(self, o: Val) -> Val {
        match (self, o) {
            (Val::Rng { lo: a, bits: x, .. }, Val::Rng { lo: c, bits: y, .. })
                if a >= 0 && c >= 0 =>
            {
                let bits = x | y;
                if bits >= LIM as u128 {
                    Val::Top
                } else {
                    Val::rng_bits(0, bits as i128, bits)
                }
            }
            _ => Val::Top,
        }
    }

    fn shl(self, k: u32) -> Val {
        match self {
            Val::Rng { lo, hi, bits } if lo >= 0 && k < 100 => {
                match (lo.checked_shl(k), hi.checked_shl(k), bits.checked_shl(k)) {
                    (Some(l), Some(h), Some(b)) => Val::rng_bits(l, h, b),
                    _ => Val::Top,
                }
            }
            _ => Val::Top,
        }
    }

    fn shr(self, k: u32) -> Val {
        match self {
            Val::Rng { lo, hi, .. } if lo >= 0 && k < 128 => Val::rng(lo >> k, hi >> k),
            _ => Val::Top,
        }
    }

    fn neg(self) -> Val {
        match self {
            Val::Rng { lo, hi, .. } => Val::rng(-hi, -lo),
            Val::Top => Val::Top,
        }
    }

    /// `as uN` — values that fit pass through; anything else (possible
    /// wraparound, or an unknown) lands in the full unsigned range.
    fn cast_unsigned(self, width: u32) -> Val {
        if width >= 100 {
            return match self {
                Val::Rng { lo, .. } if lo >= 0 => self,
                _ => Val::Top,
            };
        }
        let max = (1i128 << width) - 1;
        match self {
            Val::Rng { lo, hi, .. } if lo >= 0 && hi <= max => self,
            _ => Val::unsigned(width),
        }
    }

    /// `as iN` — pass through when the value provably fits, else `Top`
    /// (a signed wrap has no useful bits mask).
    fn cast_signed(self, width: u32) -> Val {
        if width >= 100 {
            return self;
        }
        let (min, max) = (-(1i128 << (width - 1)), (1i128 << (width - 1)) - 1);
        match self {
            Val::Rng { lo, hi, .. } if lo >= min && hi <= max => self,
            _ => Val::Top,
        }
    }

    /// Meet with an upper bound (from `assert!(x < e)` narrowing). The
    /// unknown side is assumed non-negative — a wrong assumption can only
    /// suppress a finding, never invent one.
    fn clamp_hi(self, bound: i128) -> Val {
        match self {
            Val::Rng { lo, hi, bits } => Val::rng_bits(lo.min(bound), hi.min(bound), bits),
            Val::Top => Val::rng(0, bound),
        }
    }

    /// Meet with a lower bound (from `assert!(x >= e)` narrowing).
    fn clamp_lo(self, bound: i128) -> Val {
        match self {
            Val::Rng { lo, hi, .. } if hi >= bound => Val::rng(lo.max(bound), hi),
            Val::Rng { .. } => self,
            Val::Top => Val::Top,
        }
    }
}

/// Parses an integer literal token (`0x1F`, `4_096u64`, `0b11`), or
/// `None` for floats and malformed text.
fn parse_int(text: &str) -> Option<i128> {
    let s: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(r) = s.strip_prefix("0x") {
        (r, 16)
    } else if let Some(r) = s.strip_prefix("0b") {
        (r, 2)
    } else if let Some(r) = s.strip_prefix("0o") {
        (r, 8)
    } else {
        (s.as_str(), 10)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    if num.is_empty() {
        return None;
    }
    const SUFFIXES: [&str; 12] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    if !suffix.is_empty() && !SUFFIXES.contains(&suffix) {
        return None; // float (`0.95` → suffix ".95") or garbage
    }
    i128::from_str_radix(num, radix).ok()
}

/// Width in bits of a primitive integer type name (`usize` is modelled
/// as 64 — every supported target is 64-bit).
fn type_width(name: &str) -> Option<(u32, bool)> {
    Some(match name {
        "u8" => (8, false),
        "u16" => (16, false),
        "u32" => (32, false),
        "u64" | "usize" => (64, false),
        "u128" => (128, false),
        "i8" => (8, true),
        "i16" => (16, true),
        "i32" => (32, true),
        "i64" | "isize" => (64, true),
        "i128" => (128, true),
        _ => return None,
    })
}

/// `// bits: N` widths harvested from annotations, split by what the
/// annotation attaches to.
#[derive(Debug, Default)]
pub(crate) struct Widths {
    /// Type name → declared bit width (structs and enums).
    pub types: HashMap<String, u32>,
    /// Function name → declared return-value bit width.
    pub fns: HashMap<String, u32>,
}

/// Attaches each file's `// bits: N` annotations to the nearest
/// declaration at or within two lines below the annotation (trailing
/// same-line comments and the doc-comment-then-annotation idiom both
/// resolve; see [`ParsedFile::bits_for_line`]).
fn collect_widths(files: &[ParsedFile]) -> Widths {
    let mut w = Widths::default();
    for file in files {
        if file.bit_widths.is_empty() {
            continue;
        }
        for item in &file.items {
            if matches!(item.kind, DeclKind::Struct | DeclKind::Enum) {
                if let Some(n) = file.bits_for_line(item.line) {
                    w.types.insert(item.name.clone(), n);
                }
            }
        }
        for f in &file.fns {
            if let Some(n) = file.bits_for_line(f.line) {
                w.fns.insert(f.name.clone(), n);
            }
        }
    }
    w
}

/// `[T; N]` capacity from a concatenated type string (`[u64;4]`,
/// `[PageSize;SIZES]`), resolving a const name through the const table.
fn array_cap(ty: &str, consts: &HashMap<String, Val>) -> Option<u128> {
    let inner = ty.strip_prefix('[')?.strip_suffix(']')?;
    let count = inner.rsplit(';').next()?;
    if let Some(n) = parse_int(count) {
        return u128::try_from(n).ok();
    }
    let name = count.rsplit("::").next()?;
    match consts.get(name) {
        Some(Val::Rng { lo, hi, .. }) if lo == hi && *lo >= 0 => Some(*lo as u128),
        _ => None,
    }
}

/// Which value rule a walker pass is firing for (`None` in the summary
/// and call-collection passes, which only compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    Summary,
    CollectCalls,
    Pack,
    Tag,
    Index,
}

/// Read-only tables shared by every walker pass.
struct Tables<'a> {
    consts: &'a HashMap<String, Val>,
    widths: &'a Widths,
    /// Struct-field name → fixed array capacity (workspace-global; the
    /// entry is dropped when two structs disagree on the size).
    field_caps: &'a HashMap<String, u128>,
    /// Callee simple name → joined return range.
    ret_by_name: &'a HashMap<String, Val>,
    /// Callee simple name → joined per-parameter argument ranges.
    param_ranges: &'a HashMap<String, Vec<Val>>,
}

/// One evaluated (sub)expression.
#[derive(Debug, Clone, Copy)]
struct Ev {
    v: Val,
    /// Index one past the last consumed token.
    j: usize,
    /// `Some((base, k))` when the expression is exactly `base << k` with
    /// a constant shift — the unit of a packing chain.
    shift: Option<(Val, u32)>,
    /// `true` when a `u128`/`i128` cast or literal suffix appeared — the
    /// packing carrier is then 128 bits wide, not 64.
    wide: bool,
    /// Root identifier of an lvalue path (`name`, `self.field` → field),
    /// for capacity lookups at an indexing site.
    root: Option<usize>,
}

impl Ev {
    fn new(v: Val, j: usize) -> Ev {
        Ev { v, j, shift: None, wide: false, root: None }
    }
}

/// Flow-sensitive walker over one function body.
struct Walker<'a> {
    file: &'a ParsedFile,
    t: &'a Tables<'a>,
    pass: Pass,
    env: HashMap<String, Val>,
    /// Local name → fixed capacity (from `[x; N]` / `vec![x; N]` / a
    /// `[T; N]` type annotation).
    caps: HashMap<String, u128>,
    loop_depth: u32,
    /// Values reaching `return` / the tail expression (summary pass).
    returns: Vec<Val>,
    /// Observed `(callee, arg values)` pairs (call-collection pass).
    calls: Vec<(String, Vec<Val>)>,
    findings: Vec<RuleFinding>,
    /// Dedup guard: loop bodies are walked twice.
    fired: HashSet<(u32, String)>,
}

impl<'a> Walker<'a> {
    fn new(file: &'a ParsedFile, t: &'a Tables<'a>, pass: Pass) -> Walker<'a> {
        Walker {
            file,
            t,
            pass,
            env: HashMap::new(),
            caps: HashMap::new(),
            loop_depth: 0,
            returns: Vec::new(),
            calls: Vec::new(),
            findings: Vec::new(),
            fired: HashSet::new(),
        }
    }

    // The returned slice borrows the *parsed file* (lifetime `'a`), not
    // `self`, so evaluation can keep reading tokens across `&mut self`
    // calls.
    fn toks(&self) -> &'a [Tok] {
        &self.file.toks
    }

    fn fire(&mut self, rule: &'static str, line: u32, message: String) {
        if self.fired.insert((line, message.clone())) {
            self.findings.push(RuleFinding { rule, line, message });
        }
    }

    /// `env = join(env, before)` restricted to `before`'s keys — block
    /// and loop effects are merged conservatively, block-local `let`s
    /// go out of scope.
    fn merge_scope(&mut self, before: &HashMap<String, Val>) {
        let mut merged = HashMap::with_capacity(before.len());
        for (k, vb) in before {
            let v = self.env.get(k).copied().unwrap_or(*vb);
            merged.insert(k.clone(), v.join(*vb));
        }
        self.env = merged;
    }

    /// Walks a nested `{ … }` group (at `open`) with join semantics;
    /// returns the index past the closing brace.
    fn walk_block(&mut self, open: usize, tail: bool) -> usize {
        let end = skip_group(self.toks(), open);
        let before = self.env.clone();
        self.walk_stmts(open + 1, end.saturating_sub(1), tail);
        self.merge_scope(&before);
        end
    }

    /// Walks a loop body twice (second pass over the joined environment
    /// approximates the loop fixpoint); returns the index past `}`.
    fn walk_loop(&mut self, open: usize) -> usize {
        let end = skip_group(self.toks(), open);
        let before = self.env.clone();
        self.loop_depth += 1;
        self.walk_stmts(open + 1, end.saturating_sub(1), false);
        self.merge_scope(&before);
        let joined = self.env.clone();
        self.walk_stmts(open + 1, end.saturating_sub(1), false);
        self.loop_depth -= 1;
        self.merge_scope(&joined);
        end
    }

    /// Scans from `i` to the end of the current statement (a `;` at
    /// depth 0, or `hi`), walking any `{ … }` groups met on the way so
    /// closure bodies and struct-literal fields are not skipped.
    fn finish_stmt(&mut self, mut i: usize, hi: usize) -> usize {
        while i < hi {
            match self.toks()[i].text.as_str() {
                ";" => return i + 1,
                "{" => i = self.walk_block(i, false),
                "(" | "[" => i = skip_group(self.toks(), i),
                _ => i += 1,
            }
        }
        hi
    }

    /// Index of the first `{` at depth 0 in `i..hi` (loop/if headers).
    fn find_block(&self, mut i: usize, hi: usize) -> usize {
        while i < hi {
            match self.toks()[i].text.as_str() {
                "{" => return i,
                "(" | "[" => i = skip_group(self.toks(), i),
                ";" => return hi,
                _ => i += 1,
            }
        }
        hi
    }

    /// Statement-linear walk of `from..to`; `tail` marks the range as
    /// the function's (transitive) tail position for summary collection.
    fn walk_stmts(&mut self, from: usize, to: usize, tail: bool) {
        let to = to.min(self.toks().len());
        let mut i = from;
        while i < to {
            let start = i;
            let tk = &self.toks()[i];
            let next = match tk.text.as_str() {
                "{" => {
                    let end = skip_group(self.toks(), i);
                    let child_tail = tail
                        && (end >= to || self.toks().get(end).is_some_and(|t| t.is_ident("else")));
                    self.walk_block(i, child_tail)
                }
                "let" => self.walk_let(i, to),
                "return" => {
                    let j = if self.toks().get(i + 1).is_some_and(|t| t.is(";") || t.is("}")) {
                        i + 1
                    } else {
                        let e = self.eval(i + 1, to);
                        if self.pass == Pass::Summary {
                            self.returns.push(e.v);
                        }
                        e.j
                    };
                    self.finish_stmt(j, to)
                }
                "for" => self.walk_for(i, to),
                "while" => {
                    if !self.toks().get(i + 1).is_some_and(|t| t.is_ident("let")) {
                        let _ = self.eval(i + 1, to);
                    }
                    let g = self.find_block(i + 1, to);
                    if g < to { self.walk_loop(g) } else { to }
                }
                "loop" => {
                    let g = self.find_block(i + 1, to);
                    if g < to { self.walk_loop(g) } else { to }
                }
                "if" => {
                    let mut narrowed = None;
                    if !self.toks().get(i + 1).is_some_and(|t| t.is_ident("let")) {
                        narrowed = self.narrow_cond(i + 1, to);
                        let _ = self.eval(i + 1, to);
                    }
                    let g = self.find_block(i + 1, to);
                    if g < to {
                        let end = skip_group(self.toks(), g);
                        let child_tail = tail
                            && (end >= to
                                || self.toks().get(end).is_some_and(|t| t.is_ident("else")));
                        // The condition constrains the then-branch (the
                        // checked-constructor idiom `if raw < CAP {
                        // Some(T(raw)) }`); afterwards the branch may not
                        // have run, so join back with the pre-`if` value.
                        if let Some((name, v)) = narrowed {
                            let before = self.env.get(&name).copied().unwrap_or(Val::Top);
                            self.env.insert(name.clone(), v);
                            let r = self.walk_block(g, child_tail);
                            let after = self.env.get(&name).copied().unwrap_or(Val::Top);
                            self.env.insert(name, before.join(after));
                            r
                        } else {
                            self.walk_block(g, child_tail)
                        }
                    } else {
                        to
                    }
                }
                "else" => i + 1,
                "match" => {
                    let (v, end) = self.walk_match(i, to);
                    if self.pass == Pass::Summary && tail && end >= to {
                        self.returns.push(v);
                    }
                    end
                }
                "assert" | "debug_assert" | "assert_eq" | "debug_assert_eq" => {
                    let j = self.walk_assert(i, to);
                    self.finish_stmt(j, to)
                }
                _ if tk.kind == TokKind::Ident
                    && self.toks().get(i + 1).is_some_and(|t| {
                        t.is("=") || ASSIGN_OPS.iter().any(|op| t.is(op))
                    }) =>
                {
                    self.walk_assign(i, to)
                }
                _ if tk.kind == TokKind::Ident
                    && self.toks().get(i + 1).is_some_and(|t| t.is(":")) =>
                {
                    // Struct-literal field (`name: expr,`) inside a block
                    // walked by `finish_stmt` — evaluate the field expr.
                    let e = self.eval(i + 2, to);
                    let mut j = e.j;
                    if self.toks().get(j).is_some_and(|t| t.is(",")) {
                        j += 1;
                    }
                    j
                }
                _ => {
                    let e = self.eval(i, to);
                    if self.pass == Pass::Summary && tail && e.j >= to {
                        self.returns.push(e.v);
                    }
                    // `lvalue = RHS` / `lvalue |= RHS` where the lvalue is
                    // a field or indexing expression: the environment has
                    // nothing to update, but the RHS must still evaluate
                    // so checks inside it fire.
                    let j = if self.toks().get(e.j).is_some_and(|t| {
                        t.is("=") || ASSIGN_OPS.iter().any(|op| t.is(op))
                    }) {
                        self.eval(e.j + 1, to).j
                    } else {
                        e.j
                    };
                    self.finish_stmt(j, to)
                }
            };
            i = next.max(start + 1);
        }
    }

    /// `let [mut] PAT [: TY] = EXPR;` — binds plain-identifier patterns,
    /// records fixed capacities, and always evaluates the initializer.
    fn walk_let(&mut self, i: usize, to: usize) -> usize {
        let mut p = i + 1;
        if self.toks().get(p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        let plain = self.toks().get(p).is_some_and(|t| {
            t.kind == TokKind::Ident
                && self
                    .toks()
                    .get(p + 1)
                    .is_some_and(|n| n.is(":") || n.is("=") || n.is(";"))
        });
        let name = plain.then(|| self.toks()[p].text.clone());
        let mut q = p + if plain { 1 } else { 0 };
        // Type annotation: record `[T; N]` capacity, then advance to `=`.
        if plain && self.toks().get(q).is_some_and(|t| t.is(":")) {
            if self.toks().get(q + 1).is_some_and(|t| t.is("[")) {
                if let Some(cap) = self.group_repeat_count(q + 1) {
                    if let Some(n) = &name {
                        self.caps.insert(n.clone(), cap);
                    }
                }
            }
            q += 1;
            while q < to {
                match self.toks()[q].text.as_str() {
                    "=" | ";" => break,
                    "(" | "[" | "{" => q = skip_group(self.toks(), q),
                    "<" => q = skip_generics(self.toks(), q),
                    _ => q += 1,
                }
            }
        }
        // Find `=` (skipping a non-plain pattern's groups on the way).
        while q < to && !self.toks()[q].is("=") && !self.toks()[q].is(";") {
            match self.toks()[q].text.as_str() {
                "(" | "[" | "{" => q = skip_group(self.toks(), q),
                "<" => q = skip_generics(self.toks(), q),
                _ => q += 1,
            }
        }
        if q >= to || self.toks()[q].is(";") {
            return self.finish_stmt(q, to);
        }
        let rhs = q + 1;
        if let Some(cap) = self.init_capacity(rhs) {
            if let Some(n) = &name {
                self.caps.insert(n.clone(), cap);
            }
        }
        let e = self.eval(rhs, to);
        if let Some(n) = name {
            self.env.insert(n, e.v);
        }
        self.finish_stmt(e.j, to)
    }

    /// Constant repeat count of `[x; N]` (group at `open`).
    fn group_repeat_count(&mut self, open: usize) -> Option<u128> {
        let end = skip_group(self.toks(), open);
        let mut depth = 0i64;
        for k in open..end.saturating_sub(1) {
            match self.toks()[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 1 => {
                    let e = self.eval(k + 1, end - 1);
                    return match e.v {
                        Val::Rng { lo, hi, .. } if lo == hi && lo >= 0 => Some(lo as u128),
                        _ => None,
                    };
                }
                _ => {}
            }
        }
        None
    }

    /// Fixed capacity of a `let` initializer: `[x; N]` or `vec![x; N]`.
    fn init_capacity(&mut self, i: usize) -> Option<u128> {
        let toks = self.toks();
        if toks.get(i).is_some_and(|t| t.is("[")) {
            return self.group_repeat_count(i);
        }
        if toks.get(i).is_some_and(|t| t.is_ident("vec"))
            && toks.get(i + 1).is_some_and(|t| t.is("!"))
            && toks.get(i + 2).is_some_and(|t| t.is("["))
        {
            return self.group_repeat_count(i + 2);
        }
        None
    }

    /// `NAME op= EXPR;` — updates the environment; compound updates
    /// inside a loop go straight to `Top` (unbounded iteration).
    fn walk_assign(&mut self, i: usize, to: usize) -> usize {
        let name = self.toks()[i].text.clone();
        let op = self.toks()[i + 1].text.clone();
        let e = self.eval(i + 2, to);
        let old = self.env.get(&name).copied().unwrap_or(Val::Top);
        let new = match op.as_str() {
            "=" => e.v,
            _ if self.loop_depth > 0 => Val::Top,
            "+=" => old.add(e.v),
            "-=" => old.sub(e.v),
            "*=" => old.mul(e.v),
            "/=" => old.div(e.v),
            "%=" => old.rem(e.v),
            "&=" => old.and(e.v),
            "|=" => old.or(e.v),
            "^=" => old.xor(e.v),
            "<<=" | ">>=" => match e.v {
                Val::Rng { lo, hi, .. } if lo == hi && (0..100).contains(&lo) => {
                    let k = lo as u32;
                    if op == "<<=" { old.shl(k) } else { old.shr(k) }
                }
                _ => Val::Top,
            },
            _ => Val::Top,
        };
        self.env.insert(name, new);
        self.finish_stmt(e.j, to)
    }

    /// `assert!(x < e)`-family narrowing (plus plain evaluation of the
    /// macro arguments so checks inside them still fire).
    fn walk_assert(&mut self, i: usize, _to: usize) -> usize {
        let toks = self.toks();
        let eq_form = toks[i].text.ends_with("_eq") || toks[i].text.ends_with("assert_eq");
        if !toks.get(i + 1).is_some_and(|t| t.is("!"))
            || !toks.get(i + 2).is_some_and(|t| t.is("("))
        {
            return i + 1;
        }
        let open = i + 2;
        let end = skip_group(toks, open);
        let inner_end = end.saturating_sub(1);
        // `assert!(IDENT cmp EXPR, …)` / `assert_eq!(IDENT, EXPR, …)`.
        let subject = toks.get(open + 1).filter(|t| t.kind == TokKind::Ident).cloned();
        if let Some(subj) = subject {
            let cmp_at = open + 2;
            let narrowed = if eq_form {
                if toks.get(cmp_at).is_some_and(|t| t.is(",")) {
                    let e = self.eval(cmp_at + 1, inner_end);
                    match e.v {
                        Val::Rng { .. } => Some(e.v),
                        Val::Top => None,
                    }
                } else {
                    None
                }
            } else {
                let op = toks.get(cmp_at).map(|t| t.text.clone()).unwrap_or_default();
                if matches!(op.as_str(), "<" | "<=" | ">" | ">=") {
                    let e = self.eval(cmp_at + 1, inner_end);
                    let old = self.env.get(&subj.text).copied().unwrap_or(Val::Top);
                    match (op.as_str(), e.v) {
                        ("<", Val::Rng { hi, .. }) => Some(old.clamp_hi(hi - 1)),
                        ("<=", Val::Rng { hi, .. }) => Some(old.clamp_hi(hi)),
                        (">", Val::Rng { lo, .. }) => Some(old.clamp_lo(lo + 1)),
                        (">=", Val::Rng { lo, .. }) => Some(old.clamp_lo(lo)),
                        _ => None,
                    }
                } else {
                    None
                }
            };
            if let Some(v) = narrowed {
                self.env.insert(subj.text, v);
                return end;
            }
        }
        // No narrowing pattern: still evaluate the arguments.
        self.eval_group_args(open);
        end
    }

    /// `IDENT cmp EXPR` at `i` (an `if` condition): the narrowed value
    /// IDENT holds in the then-branch, or `None` when the condition
    /// isn't a simple comparison on a plain identifier.
    fn narrow_cond(&mut self, i: usize, to: usize) -> Option<(String, Val)> {
        let toks = self.toks();
        let subj = toks.get(i).filter(|t| t.kind == TokKind::Ident)?.text.clone();
        let op = toks.get(i + 1)?.text.clone();
        if !matches!(op.as_str(), "<" | "<=" | ">" | ">=") {
            return None;
        }
        // Below the comparison level, so the bound expression stops at
        // `&&`/`{` on its own.
        let e = self.eval_bitor(i + 2, to);
        let old = self.env.get(&subj).copied().unwrap_or(Val::Top);
        let v = match (op.as_str(), e.v) {
            ("<", Val::Rng { hi, .. }) => old.clamp_hi(hi - 1),
            ("<=", Val::Rng { hi, .. }) => old.clamp_hi(hi),
            (">", Val::Rng { lo, .. }) => old.clamp_lo(lo + 1),
            (">=", Val::Rng { lo, .. }) => old.clamp_lo(lo),
            _ => return None,
        };
        Some((subj, v))
    }

    /// `for PAT in A..B { … }` — binds a plain-identifier pattern to the
    /// iteration range when both endpoints evaluate.
    fn walk_for(&mut self, i: usize, to: usize) -> usize {
        let toks = self.toks();
        let plain = toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_ident("in"));
        if plain {
            let name = toks[i + 1].text.clone();
            // Evaluate below the range level so `A..B` is visible here.
            let a = self.eval_bitor(i + 3, to);
            let bound = match self.toks().get(a.j).map(|t| t.text.clone()) {
                Some(op) if op == ".." || op == "..=" => {
                    let b = self.eval_bitor(a.j + 1, to);
                    match (a.v, b.v) {
                        (Val::Rng { lo, .. }, Val::Rng { hi, .. }) => {
                            let hi = if op == ".." { hi - 1 } else { hi };
                            Val::rng(lo, hi)
                        }
                        _ => Val::Top,
                    }
                }
                _ => Val::Top,
            };
            self.env.insert(name, bound);
        }
        let g = self.find_block(i + 1, to);
        if g < to { self.walk_loop(g) } else { to }
    }

    /// `match SCRUT { arms }` — evaluates every arm expression, walks
    /// block arms, and returns the join of arm values.
    fn walk_match(&mut self, i: usize, to: usize) -> (Val, usize) {
        let scrut = self.eval(i + 1, to);
        let g = self.find_block(scrut.j, to);
        if g >= to {
            return (Val::Top, to);
        }
        let end = skip_group(self.toks(), g);
        let inner_end = end.saturating_sub(1);
        let mut joined: Option<Val> = None;
        let mut k = g + 1;
        while k < inner_end {
            // Skip the pattern (and any guard) up to `=>`.
            let mut found = false;
            while k < inner_end {
                match self.toks()[k].text.as_str() {
                    "=>" => {
                        found = true;
                        k += 1;
                        break;
                    }
                    "(" | "[" | "{" => k = skip_group(self.toks(), k),
                    _ => k += 1,
                }
            }
            if !found {
                break;
            }
            let v = if self.toks().get(k).is_some_and(|t| t.is("{")) {
                k = self.walk_block(k, false);
                Val::Top
            } else {
                let e = self.eval(k, inner_end);
                k = e.j;
                e.v
            };
            joined = Some(match joined {
                Some(j) => j.join(v),
                None => v,
            });
            if self.toks().get(k).is_some_and(|t| t.is(",")) {
                k += 1;
            }
        }
        (joined.unwrap_or(Val::Top), end)
    }

    // ---- expression evaluation (precedence climbing) ----

    fn eval(&mut self, i: usize, hi: usize) -> Ev {
        self.eval_cmp(i, hi)
    }

    fn eval_cmp(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_range(i, hi);
        while e.j < hi {
            let op = self.toks()[e.j].text.clone();
            if !matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=") {
                break;
            }
            // `<` here could open generics in a type position; the
            // walker only evaluates expressions, where it is comparison.
            let r = self.eval_range(e.j + 1, hi);
            e = Ev::new(Val::rng(0, 1), r.j);
        }
        e
    }

    fn eval_range(&mut self, i: usize, hi: usize) -> Ev {
        let e = self.eval_bitor(i, hi);
        // `a..b` as a value is opaque; both sides still evaluate.
        if e.j < hi && (self.toks()[e.j].is("..") || self.toks()[e.j].is("..=")) {
            let r = self.eval_bitor(e.j + 1, hi);
            return Ev::new(Val::Top, r.j);
        }
        e
    }

    fn eval_bitor(&mut self, i: usize, hi: usize) -> Ev {
        let first = self.eval_bitxor(i, hi);
        if !(first.j < hi && self.toks()[first.j].is("|")) {
            return first;
        }
        let line = self.toks()[i].line;
        let mut terms = vec![first];
        let mut e = first;
        while e.j < hi && self.toks()[e.j].is("|") {
            let t = self.eval_bitxor(e.j + 1, hi);
            terms.push(t);
            e = t;
        }
        if self.pass == Pass::Pack {
            self.check_packing(&terms, line);
        }
        let mut v = terms[0].v;
        let mut wide = false;
        for t in &terms {
            wide |= t.wide;
        }
        for t in &terms[1..] {
            v = v.or(t.v);
        }
        Ev { v, j: e.j, shift: None, wide, root: None }
    }

    fn eval_bitxor(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_bitand(i, hi);
        while e.j < hi && self.toks()[e.j].is("^") {
            let r = self.eval_bitand(e.j + 1, hi);
            e = Ev { v: e.v.xor(r.v), j: r.j, shift: None, wide: e.wide | r.wide, root: None };
        }
        e
    }

    fn eval_bitand(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_shift(i, hi);
        while e.j < hi && self.toks()[e.j].is("&") {
            let r = self.eval_shift(e.j + 1, hi);
            e = Ev { v: e.v.and(r.v), j: r.j, shift: None, wide: e.wide | r.wide, root: None };
        }
        e
    }

    fn eval_shift(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_add(i, hi);
        while e.j < hi {
            let op = self.toks()[e.j].text.clone();
            if op != "<<" && op != ">>" {
                break;
            }
            let base = e.v;
            let had_shift = e.shift.is_some();
            let r = self.eval_add(e.j + 1, hi);
            let k = match r.v {
                Val::Rng { lo, hi: h, .. } if lo == h && (0..100).contains(&lo) => Some(lo as u32),
                _ => None,
            };
            let v = match (op.as_str(), k) {
                ("<<", Some(k)) => base.shl(k),
                (">>", Some(k)) => base.shr(k),
                _ => Val::Top,
            };
            let shift = match (op.as_str(), k, had_shift) {
                ("<<", Some(k), false) => Some((base, k)),
                _ => None,
            };
            e = Ev { v, j: r.j, shift, wide: e.wide | r.wide, root: None };
        }
        e
    }

    fn eval_add(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_mul(i, hi);
        while e.j < hi {
            let op = self.toks()[e.j].text.clone();
            if op != "+" && op != "-" {
                break;
            }
            let r = self.eval_mul(e.j + 1, hi);
            let v = if op == "+" { e.v.add(r.v) } else { e.v.sub(r.v) };
            e = Ev { v, j: r.j, shift: None, wide: e.wide | r.wide, root: None };
        }
        e
    }

    fn eval_mul(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_cast(i, hi);
        while e.j < hi {
            let op = self.toks()[e.j].text.clone();
            if op != "*" && op != "/" && op != "%" {
                break;
            }
            let r = self.eval_cast(e.j + 1, hi);
            let v = match op.as_str() {
                "*" => e.v.mul(r.v),
                "/" => e.v.div(r.v),
                _ => e.v.rem(r.v),
            };
            e = Ev { v, j: r.j, shift: None, wide: e.wide | r.wide, root: None };
        }
        e
    }

    fn eval_cast(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_unary(i, hi);
        while e.j < hi && self.toks()[e.j].is_ident("as") {
            let ty = self.toks().get(e.j + 1).map(|t| t.text.clone()).unwrap_or_default();
            let (v, wide) = match type_width(&ty) {
                Some((w, false)) => (e.v.cast_unsigned(w), w == 128),
                Some((w, true)) => (e.v.cast_signed(w), w == 128),
                None => (Val::Top, false),
            };
            e = Ev { v, j: e.j + 2, shift: None, wide: e.wide | wide, root: None };
        }
        e
    }

    fn eval_unary(&mut self, i: usize, hi: usize) -> Ev {
        if i >= hi {
            return Ev::new(Val::Top, i.max(hi));
        }
        match self.toks()[i].text.as_str() {
            "-" => {
                let e = self.eval_unary(i + 1, hi);
                Ev { v: e.v.neg(), j: e.j, shift: None, wide: e.wide, root: None }
            }
            "!" => {
                let e = self.eval_unary(i + 1, hi);
                Ev { v: Val::Top, j: e.j, shift: None, wide: e.wide, root: None }
            }
            "&" | "&&" | "*" => {
                let mut e = self.eval_unary(
                    i + 1 + usize::from(self.toks().get(i + 1).is_some_and(|t| t.is_ident("mut"))),
                    hi,
                );
                e.shift = None;
                e
            }
            _ => self.eval_postfix(i, hi),
        }
    }

    fn eval_postfix(&mut self, i: usize, hi: usize) -> Ev {
        let mut e = self.eval_primary(i, hi);
        while e.j < hi {
            match self.toks()[e.j].text.as_str() {
                "." => {
                    let Some(m) = self.toks().get(e.j + 1) else { break };
                    if m.kind != TokKind::Ident && m.kind != TokKind::Lit {
                        break;
                    }
                    let name = m.text.clone();
                    let mut k = e.j + 2;
                    // Turbofish on the method.
                    if self.toks().get(k).is_some_and(|t| t.is("::"))
                        && self.toks().get(k + 1).is_some_and(|t| t.is("<"))
                    {
                        k = skip_generics(self.toks(), k + 1);
                    }
                    if self.toks().get(k).is_some_and(|t| t.is("(")) {
                        let args = self.eval_group_args(k);
                        let end = skip_group(self.toks(), k);
                        let v = self.method_value(&name, e.v, &args);
                        if self.pass == Pass::CollectCalls {
                            self.calls.push((name, args.iter().map(|a| a.v).collect()));
                        }
                        e = Ev { v, j: end, shift: None, wide: e.wide, root: None };
                    } else {
                        // Field access: value unknown, but remember the
                        // field name as the indexing root.
                        let root = (m.kind == TokKind::Ident).then_some(e.j + 1);
                        e = Ev { v: Val::Top, j: e.j + 2, shift: None, wide: false, root };
                    }
                }
                "[" => {
                    let end = skip_group(self.toks(), e.j);
                    let line = self.toks()[e.j].line;
                    // Slicing (`a[..n]`, `a[a..b]`) is not an index.
                    let mut slicing = false;
                    let mut depth = 0i64;
                    for k in e.j..end {
                        match self.toks()[k].text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ".." | "..=" if depth == 1 => slicing = true,
                            _ => {}
                        }
                    }
                    let idx = self.eval(e.j + 1, end.saturating_sub(1));
                    if self.pass == Pass::Index && !slicing {
                        let cap = e
                            .root
                            .map(|r| self.toks()[r].text.as_str())
                            .and_then(|name| {
                                self.caps
                                    .get(name)
                                    .copied()
                                    .or_else(|| self.t.field_caps.get(name).copied())
                            });
                        if let Some(cap) = cap {
                            self.check_index(cap, idx.v, line);
                        }
                    }
                    e = Ev { v: Val::Top, j: end, shift: None, wide: false, root: None };
                }
                "?" => {
                    e.j += 1;
                    e.shift = None;
                }
                _ => break,
            }
        }
        e
    }

    /// Evaluates a `( … )` / `[ … ]` argument list at `open`, one
    /// comma-separated expression at a time.
    fn eval_group_args(&mut self, open: usize) -> Vec<Ev> {
        let end = skip_group(self.toks(), open);
        let inner_end = end.saturating_sub(1);
        let mut args = Vec::new();
        let mut k = open + 1;
        while k < inner_end {
            let e = self.eval(k, inner_end);
            args.push(e);
            if self.toks().get(e.j).is_some_and(|t| t.is(",")) {
                k = e.j + 1;
            } else if e.j > k {
                // Evaluation stalled short of the next comma (closure
                // body, struct literal, …): walk `{ … }` groups met on
                // the way (so checks inside closures still fire) and
                // resync to the next `,` at depth 0.
                let mut r = e.j;
                let mut depth = 0i64;
                while r < inner_end {
                    match self.toks()[r].text.as_str() {
                        "{" if depth == 0 => {
                            r = self.walk_block(r, false);
                            continue;
                        }
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    r += 1;
                }
                if r >= inner_end {
                    break;
                }
                k = r + 1;
            } else {
                break;
            }
        }
        args
    }

    /// Result range of a method call.
    fn method_value(&mut self, name: &str, recv: Val, args: &[Ev]) -> Val {
        match name {
            // Transparent pass-throughs.
            "unwrap" | "expect" | "clone" | "copied" | "to_owned" => recv,
            "unwrap_or" | "unwrap_or_default" | "unwrap_or_else" => Val::Top,
            "min" => match (recv, args.first().map(|a| a.v)) {
                (_, Some(Val::Rng { hi, .. })) => recv.clamp_hi(hi),
                _ => Val::Top,
            },
            "max" => match (recv, args.first().map(|a| a.v)) {
                (Val::Rng { .. }, Some(Val::Rng { lo, .. })) => recv.clamp_lo(lo),
                _ => Val::Top,
            },
            "clamp" => match (args.first().map(|a| a.v), args.get(1).map(|a| a.v)) {
                (Some(Val::Rng { lo, .. }), Some(Val::Rng { hi, .. })) => {
                    recv.clamp_hi(hi).clamp_lo(lo)
                }
                _ => Val::Top,
            },
            "rem_euclid" | "wrapping_rem" => match args.first().map(|a| a.v) {
                Some(Val::Rng { hi, .. }) if hi > 0 => Val::rng(0, hi - 1),
                _ => Val::Top,
            },
            _ => self.t.ret_by_name.get(name).copied().unwrap_or(Val::Top),
        }
    }

    fn eval_primary(&mut self, i: usize, hi: usize) -> Ev {
        if i >= hi {
            return Ev::new(Val::Top, hi);
        }
        let tk = &self.toks()[i];
        match tk.kind {
            TokKind::Lit => {
                let wide = tk.text.contains("u128") || tk.text.contains("i128");
                let v = parse_int(&tk.text).map_or(Val::Top, Val::cst);
                Ev { v, j: i + 1, shift: None, wide, root: None }
            }
            TokKind::Punct => match tk.text.as_str() {
                "(" => {
                    let end = skip_group(self.toks(), i);
                    let mut e = self.eval(i + 1, end.saturating_sub(1));
                    // Preserve a shift marker through parentheses only if
                    // the parens hold exactly the shift expression.
                    e.j = end;
                    e.root = None;
                    e
                }
                "[" => {
                    let _ = self.eval_group_args(i);
                    Ev::new(Val::Top, skip_group(self.toks(), i))
                }
                _ => Ev::new(Val::Top, i + 1),
            },
            TokKind::Ident => self.eval_path(i, hi),
        }
    }

    /// Identifier-rooted primary: a path, call, macro, `match`
    /// expression, or plain variable/const reference.
    fn eval_path(&mut self, i: usize, hi: usize) -> Ev {
        let toks = self.toks();
        let first = toks[i].text.as_str();
        match first {
            "match" => {
                let (v, end) = self.walk_match(i, hi);
                return Ev::new(v, end);
            }
            // `if` as an expression: its blocks are walked by the caller's
            // statement machinery; the value is unknown here.
            "if" => {
                return Ev::new(Val::Top, i + 1);
            }
            "true" | "false" => {
                return Ev::new(Val::rng(0, 1), i + 1);
            }
            "self" => {
                return Ev::new(Val::Top, i + 1);
            }
            _ => {}
        }
        // Collect the `A::B::c` path (skipping turbofish generics).
        let mut segs = vec![i];
        let mut j = i + 1;
        while j + 1 < hi && toks[j].is("::") {
            if toks[j + 1].is("<") {
                j = skip_generics(toks, j + 1);
                continue;
            }
            if toks[j + 1].kind != TokKind::Ident {
                break;
            }
            segs.push(j + 1);
            j += 2;
        }
        let last_idx = *segs.last().unwrap_or(&i);
        let last = toks[last_idx].text.clone();
        let line = toks[i].line;
        // Macro invocation: evaluate the arguments, value unknown.
        if toks.get(j).is_some_and(|t| t.is("!")) {
            if let Some(g) = toks.get(j + 1) {
                if matches!(g.text.as_str(), "(" | "[" | "{") {
                    let _ = self.eval_group_args(j + 1);
                    return Ev::new(Val::Top, skip_group(toks, j + 1));
                }
            }
            return Ev::new(Val::Top, j + 1);
        }
        if toks.get(j).is_some_and(|t| t.is("(")) {
            // Call. `uN::from(x)` casts; `Type::new(x)` on an annotated
            // type is a tag-range checkpoint; otherwise the name summary.
            let args = self.eval_group_args(j);
            let end = skip_group(toks, j);
            if self.pass == Pass::CollectCalls {
                self.calls.push((last.clone(), args.iter().map(|a| a.v).collect()));
            }
            if segs.len() == 2 && last == "from" {
                if let Some((w, signed)) = type_width(&toks[segs[0]].text) {
                    let arg = args.first().map(|a| a.v).unwrap_or(Val::Top);
                    let v = if signed { arg.cast_signed(w) } else { arg.cast_unsigned(w) };
                    let wide = w == 128 || args.iter().any(|a| a.wide);
                    return Ev { v, j: end, shift: None, wide, root: None };
                }
            }
            let type_seg = segs
                .iter()
                .rev()
                .nth(1)
                .map(|&s| toks[s].text.clone())
                .filter(|n| self.t.widths.types.contains_key(n));
            let bare_ctor = segs.len() == 1 && self.t.widths.types.contains_key(&last);
            if self.pass == Pass::Tag {
                if let Some(ty) = type_seg.as_ref().filter(|_| last == "new") {
                    let w = self.t.widths.types[ty];
                    self.check_tag(ty, w, args.first().map(|a| a.v), line);
                } else if bare_ctor {
                    let w = self.t.widths.types[&last];
                    self.check_tag(&last, w, args.first().map(|a| a.v), line);
                }
            }
            // A constructed tag value fits its declared width.
            let v = match type_seg.as_ref() {
                Some(ty) => Val::unsigned(self.t.widths.types[ty]),
                None if bare_ctor => Val::unsigned(self.t.widths.types[&last]),
                None => self.t.ret_by_name.get(&last).copied().unwrap_or(Val::Top),
            };
            return Ev::new(v, end);
        }
        // Plain reference: local, then const table.
        if segs.len() == 1 {
            if let Some(v) = self.env.get(&last) {
                return Ev { v: *v, j, shift: None, wide: false, root: Some(i) };
            }
        }
        if let Some(v) = self.t.consts.get(&last) {
            return Ev { v: *v, j, shift: None, wide: false, root: Some(last_idx) };
        }
        Ev { v: Val::Top, j, shift: None, wide: false, root: Some(last_idx) }
    }

    // ---- the three value rules ----

    /// `bit-pack-overflow` on an or-chain of evaluated terms.
    fn check_packing(&mut self, terms: &[Ev], line: u32) {
        // Packing shape: at least two distinct shift positions (an
        // unshifted term sits at position 0). Plain flag unions don't
        // qualify.
        let fields: Vec<(u32, Val, Val)> = terms
            .iter()
            .map(|t| match t.shift {
                Some((base, k)) => (k, base, t.v),
                None => (0, t.v, t.v),
            })
            .collect();
        let mut shifts: Vec<u32> = fields.iter().map(|(k, _, _)| *k).collect();
        shifts.sort_unstable();
        shifts.dedup();
        if shifts.len() < 2 {
            return;
        }
        let carrier: u32 = if terms.iter().any(|t| t.wide) { 128 } else { 64 };
        // Overlap: two fields with intersecting known-bits masks.
        for (a, (ka, _, va)) in fields.iter().enumerate() {
            for (kb, _, vb) in fields.iter().skip(a + 1) {
                if let (Val::Rng { bits: x, lo: la, .. }, Val::Rng { bits: y, lo: lb, .. }) =
                    (va, vb)
                {
                    if *la >= 0 && *lb >= 0 && x & y != 0 {
                        self.fire(
                            "bit-pack-overflow",
                            line,
                            format!(
                                "packed fields at shifts {ka} and {kb} have overlapping bit \
                                 ranges — or-ing them corrupts both; mask each field to its \
                                 slot before packing"
                            ),
                        );
                    }
                }
            }
        }
        // Slot membership: each field must fit below the next shift.
        for (k, base, _) in &fields {
            let next = shifts.iter().find(|s| **s > *k).copied();
            match (next, base) {
                (Some(next), Val::Rng { lo, hi: _, bits }) => {
                    let width = next - k;
                    if *lo < 0 || bit_len(*bits) > width {
                        self.fire(
                            "bit-pack-overflow",
                            line,
                            format!(
                                "field at shift {k} may reach bit {} but its slot is only \
                                 {width} bits wide (next field at shift {next}) — mask or \
                                 narrow the field before packing",
                                bit_len(*bits).saturating_sub(1),
                            ),
                        );
                    }
                }
                (Some(next), Val::Top) => {
                    let width = next - k;
                    self.fire(
                        "bit-pack-overflow",
                        line,
                        format!(
                            "field at shift {k} is not provably within its {width}-bit slot \
                             (next field at shift {next}) — mask it, or bound it with an \
                             assert or `// bits: N` annotation on the producing fn"
                        ),
                    );
                }
                (None, Val::Rng { lo, hi: _, bits }) => {
                    // Top slot: only the carrier bounds it. A full-width
                    // range (a type-seeded `u64` parameter, say) carries
                    // no more information than `Top` and gets the same
                    // open-ended-payload allowance.
                    if *lo >= 0 && bit_len(*bits) < carrier && k + bit_len(*bits) > carrier {
                        self.fire(
                            "bit-pack-overflow",
                            line,
                            format!(
                                "field at shift {k} may reach bit {} — past the {carrier}-bit \
                                 carrier",
                                k + bit_len(*bits) - 1
                            ),
                        );
                    }
                }
                // A Top field in the open-ended top slot is the normal
                // "rest of the word" payload — allowed.
                (None, Val::Top) => {}
            }
        }
    }

    /// `tag-range` at a width-annotated constructor call.
    fn check_tag(&mut self, ty: &str, width: u32, arg: Option<Val>, line: u32) {
        let Some(arg) = arg else { return };
        let max = if width >= 100 { return } else { (1i128 << width) - 1 };
        match arg {
            Val::Rng { lo, hi, .. } if hi > max => {
                self.fire(
                    "tag-range",
                    line,
                    format!(
                        "value in {lo}..={hi} flows into `{ty}` (declared `// bits: {width}`, \
                         max {max}) — mask it, or use the checked/wrapping constructor"
                    ),
                );
            }
            Val::Rng { lo, .. } if lo < 0 => {
                self.fire(
                    "tag-range",
                    line,
                    format!(
                        "possibly-negative value flows into `{ty}` (declared \
                         `// bits: {width}`)"
                    ),
                );
            }
            _ => {}
        }
    }

    /// `index-bound` at an indexing site with a known fixed capacity.
    /// Only the upper bound matters: indices are `usize` by type, so a
    /// possibly-negative interval just reflects the sign-agnostic `%`.
    fn check_index(&mut self, cap: u128, idx: Val, line: u32) {
        match idx {
            Val::Top => {
                self.fire(
                    "index-bound",
                    line,
                    format!(
                        "index into fixed {cap}-slot storage is not provably in bounds — \
                         mask it (`& {:#x}`), bound it with an assert, or use `.get()`",
                        cap.saturating_sub(1)
                    ),
                );
            }
            Val::Rng { lo, hi, .. } if hi >= cap as i128 => {
                self.fire(
                    "index-bound",
                    line,
                    format!(
                        "index in {lo}..={hi} may escape fixed {cap}-slot storage \
                         (valid indices 0..={})",
                        cap.saturating_sub(1)
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Workspace-wide `const NAME: TY = EXPR;` table, iterated to a small
/// fixpoint so consts defined in terms of other consts resolve. Two
/// consts sharing a name join (conservative for proofs, never a source
/// of false findings).
fn collect_consts(files: &[ParsedFile], t: &Tables<'_>) -> HashMap<String, Val> {
    let mut consts: HashMap<String, Val> = HashMap::new();
    for _round in 0..4 {
        let mut next: HashMap<String, Val> = HashMap::new();
        for file in files {
            let toks = &file.toks;
            let mut i = 0;
            while i + 3 < toks.len() {
                if !(toks[i].is_ident("const")
                    && toks[i + 1].kind == TokKind::Ident
                    && toks[i + 2].is(":"))
                {
                    i += 1;
                    continue;
                }
                let name = toks[i + 1].text.clone();
                // Find `=` past the type, bounded by `;`.
                let mut q = i + 3;
                while q < toks.len() && !toks[q].is("=") && !toks[q].is(";") {
                    match toks[q].text.as_str() {
                        "(" | "[" | "{" => q = skip_group(toks, q),
                        "<" => q = skip_generics(toks, q),
                        _ => q += 1,
                    }
                }
                if q < toks.len() && toks[q].is("=") {
                    // Bound the initializer at its `;`.
                    let mut end = q + 1;
                    while end < toks.len() && !toks[end].is(";") {
                        match toks[end].text.as_str() {
                            "(" | "[" | "{" => end = skip_group(toks, end),
                            _ => end += 1,
                        }
                    }
                    let tables = Tables { consts: &consts, ..*t };
                    let mut w = Walker::new(file, &tables, Pass::Summary);
                    let v = w.eval(q + 1, end).v;
                    next.entry(name)
                        .and_modify(|old| *old = old.join(v))
                        .or_insert(v);
                    i = end;
                    continue;
                }
                i = q;
            }
        }
        if next == consts {
            break;
        }
        consts = next;
    }
    consts
}

/// `[T; N]`-typed struct fields across the workspace: field name →
/// capacity. The map is keyed by bare field name (the walker has no
/// receiver types), so a name is dropped the moment two structs
/// disagree — including when one of them declares the field with a
/// non-array type (a `Box<[T]>` of unknown length must not inherit an
/// unrelated struct's fixed capacity).
fn collect_field_caps(
    files: &[ParsedFile],
    consts: &HashMap<String, Val>,
) -> HashMap<String, u128> {
    let mut caps: HashMap<String, Option<u128>> = HashMap::new();
    for file in files {
        for s in &file.structs {
            for (fname, fty) in &s.fields {
                let cap = array_cap(fty, consts);
                caps.entry(fname.clone())
                    .and_modify(|c| {
                        if *c != cap {
                            *c = None;
                        }
                    })
                    .or_insert(cap);
            }
        }
    }
    caps.into_iter().filter_map(|(k, v)| v.map(|c| (k, c))).collect()
}

/// Return-range summaries, bottom-up over the call-graph condensation.
/// Returns the by-name joined map plus the count of functions with a
/// non-`Top` summary.
fn summarize(
    files: &[ParsedFile],
    graph: &CallGraph,
    consts: &HashMap<String, Val>,
    widths: &Widths,
    field_caps: &HashMap<String, u128>,
) -> (HashMap<String, Val>, usize) {
    let succ = successors(graph);
    let cond = condense(graph.nodes.len(), &succ);
    let mut node_ret: Vec<Val> = vec![Val::Top; graph.nodes.len()];
    // During the bottom-up pass only unique names are resolvable (an
    // ambiguous name may have a not-yet-summarized definition).
    let mut name_count: HashMap<&str, usize> = HashMap::new();
    for node in &graph.nodes {
        let name = files[node.file].fns[node.fn_idx].name.as_str();
        *name_count.entry(name).or_default() += 1;
    }
    let empty_params = HashMap::new();
    let mut ret_by_name: HashMap<String, Val> = HashMap::new();
    // Annotated fns: the declaration is the contract.
    for node in &graph.nodes {
        let f = &files[node.file].fns[node.fn_idx];
        if let Some(&w) = widths.fns.get(&f.name) {
            ret_by_name.insert(f.name.clone(), Val::unsigned(w));
        }
    }
    // `cond.comps` is emitted callee-first.
    for comp in &cond.comps {
        for round in 0..3 {
            let mut changed = false;
            for &v in comp {
                let node = graph.nodes[v];
                let f = &files[node.file].fns[node.fn_idx];
                let computed = if let Some(&w) = widths.fns.get(&f.name) {
                    Val::unsigned(w)
                } else if let Some((from, to)) = f.body {
                    let tables = Tables {
                        consts,
                        widths,
                        field_caps,
                        ret_by_name: &ret_by_name,
                        param_ranges: &empty_params,
                    };
                    let mut w = Walker::new(&files[node.file], &tables, Pass::Summary);
                    seed_param_types(&mut w, f);
                    w.walk_stmts(from, to, true);
                    w.returns
                        .iter()
                        .copied()
                        .reduce(Val::join)
                        .unwrap_or(Val::Top)
                } else {
                    Val::Top
                };
                let new = if round == 2 { node_ret[v].widen(computed) } else { computed };
                if new != node_ret[v] {
                    node_ret[v] = new;
                    changed = true;
                    if name_count[f.name.as_str()] == 1 {
                        ret_by_name.insert(f.name.clone(), new);
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    // Final by-name map: join over all same-named definitions (all
    // summarized by now); annotations stay authoritative per node.
    let mut by_name: HashMap<String, Val> = HashMap::new();
    let mut summarized = 0usize;
    for (v, node) in graph.nodes.iter().enumerate() {
        let f = &files[node.file].fns[node.fn_idx];
        if node_ret[v] != Val::Top {
            summarized += 1;
        }
        by_name
            .entry(f.name.clone())
            .and_modify(|old| *old = old.join(node_ret[v]))
            .or_insert(node_ret[v]);
    }
    (by_name, summarized)
}

/// One top-down pass joining every call site's argument values per
/// callee name. Trusted (applied as a parameter environment) only for
/// non-`pub`, non-trait-impl functions, whose call sites are all
/// visible; test bodies participate so a test-only caller can't
/// invalidate the joined range.
fn param_ranges(files: &[ParsedFile], t: &Tables<'_>) -> HashMap<String, Vec<Val>> {
    let mut ranges: HashMap<String, Vec<Val>> = HashMap::new();
    for file in files {
        for f in &file.fns {
            let Some((from, to)) = f.body else { continue };
            let mut w = Walker::new(file, t, Pass::CollectCalls);
            seed_param_types(&mut w, f);
            w.walk_stmts(from, to, false);
            for (callee, args) in w.calls {
                let entry = ranges.entry(callee).or_default();
                for (idx, v) in args.into_iter().enumerate() {
                    if idx < entry.len() {
                        entry[idx] = entry[idx].join(v);
                    } else {
                        entry.push(v);
                    }
                }
            }
        }
    }
    ranges
}

/// Per-rule timing plus everything the driver reports.
pub(crate) struct ValueResult {
    /// `(file index, finding)` pairs across the three value rules.
    pub findings: Vec<(usize, RuleFinding)>,
    /// Functions whose return summary is tighter than `Top`.
    pub summarized_fns: usize,
    /// Shared abstract-interpretation phase (consts, widths, summaries,
    /// parameter ranges), in nanoseconds.
    pub absint_nanos: u128,
    /// Per-rule walk timings: `(rule, nanos)`.
    pub rule_nanos: Vec<(&'static str, u128)>,
}

/// Runs the three value rules over every library file.
pub(crate) fn value_rules(files: &[ParsedFile], graph: &CallGraph) -> ValueResult {
    let shared = Instant::now();
    let widths = collect_widths(files);
    let empty_consts = HashMap::new();
    let empty_caps = HashMap::new();
    let empty_ret = HashMap::new();
    let empty_params = HashMap::new();
    let boot = Tables {
        consts: &empty_consts,
        widths: &widths,
        field_caps: &empty_caps,
        ret_by_name: &empty_ret,
        param_ranges: &empty_params,
    };
    let consts = collect_consts(files, &boot);
    let field_caps = collect_field_caps(files, &consts);
    let (ret_by_name, summarized_fns) = summarize(files, graph, &consts, &widths, &field_caps);
    let collect_tables = Tables {
        consts: &consts,
        widths: &widths,
        field_caps: &field_caps,
        ret_by_name: &ret_by_name,
        param_ranges: &empty_params,
    };
    let params = param_ranges(files, &collect_tables);
    let tables = Tables {
        consts: &consts,
        widths: &widths,
        field_caps: &field_caps,
        ret_by_name: &ret_by_name,
        param_ranges: &params,
    };
    let absint_nanos = shared.elapsed().as_nanos();

    let mut findings = Vec::new();
    let mut rule_nanos = Vec::new();
    for (rule, pass) in [
        ("bit-pack-overflow", Pass::Pack),
        ("tag-range", Pass::Tag),
        ("index-bound", Pass::Index),
    ] {
        let t0 = Instant::now();
        for (fi, file) in files.iter().enumerate() {
            if file.kind != FileKind::Lib {
                continue;
            }
            for f in &file.fns {
                if f.is_test {
                    continue;
                }
                let Some((from, to)) = f.body else { continue };
                let mut w = Walker::new(file, &tables, pass);
                seed_param_types(&mut w, f);
                seed_params(&mut w, f);
                w.walk_stmts(from, to, false);
                findings.extend(w.findings.into_iter().map(|rf| (fi, rf)));
            }
        }
        rule_nanos.push((rule, t0.elapsed().as_nanos()));
    }
    ValueResult { findings, summarized_fns, absint_nanos, rule_nanos }
}

/// Seeds a walker's environment from *declared* parameter types: an
/// unsigned-integer parameter is `[0, 2^w - 1]` by construction, so
/// `%`/`as`-chains over it stay sign-correct (`index % 4095` on a
/// `usize` cannot go negative). Declared types hold for every caller,
/// so all passes apply them; signed and non-scalar types stay `Top`.
fn seed_param_types(w: &mut Walker<'_>, f: &super::outline::FnDecl) {
    for (pat, ty) in &f.params {
        let name = pat
            .strip_prefix("mut")
            .filter(|r| !r.is_empty())
            .unwrap_or(pat);
        if !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        if let Some((width, false)) = type_width(ty) {
            w.env.insert(name.to_owned(), Val::unsigned(width));
        }
    }
}

/// Seeds a check walker's environment with the joined call-site
/// argument ranges — only for functions whose call sites are all
/// visible to the analyzer.
fn seed_params(w: &mut Walker<'_>, f: &super::outline::FnDecl) {
    if f.vis == Vis::Pub || f.in_trait_impl {
        return;
    }
    let params = w.t.param_ranges;
    let Some(ranges) = params.get(&f.name) else { return };
    for (idx, (pat, _ty)) in f.params.iter().enumerate() {
        let name = pat
            .strip_prefix("mut")
            .filter(|r| !r.is_empty())
            .unwrap_or(pat);
        if !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        // An uninformative (`Top`) joined range must not clobber the
        // declared-type seed already in the environment.
        if let Some(v) = ranges.get(idx).filter(|v| **v != Val::Top) {
            w.env.insert(name.to_owned(), *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    use super::*;
    use crate::lint::FileKind;

    fn run(srcs: &[&str]) -> Vec<RuleFinding> {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                ParsedFile::parse(
                    Path::new(&format!("crates/x{i}/src/lib.rs")),
                    FileKind::Lib,
                    s,
                )
            })
            .collect();
        let graph = CallGraph::build(&files);
        value_rules(&files, &graph)
            .findings
            .into_iter()
            .map(|(_, rf)| rf)
            .collect()
    }

    fn rules(findings: &[RuleFinding]) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    #[test]
    fn domain_ops() {
        let m = Val::Top.and(Val::cst(0xFF));
        assert_eq!(m, Val::Rng { lo: 0, hi: 255, bits: 255 });
        assert_eq!(m.shl(4), Val::Rng { lo: 0, hi: 0xFF0, bits: 0xFF0 });
        assert_eq!(Val::Top.rem(Val::cst(100)), Val::rng(-99, 99));
        assert_eq!(Val::rng(0, 7).join(Val::rng(4, 20)), Val::rng(0, 20));
        assert_eq!(Val::rng(0, 7).widen(Val::rng(0, 8)), Val::Top);
        assert_eq!(Val::rng(0, 9).widen(Val::rng(1, 8)), Val::rng(0, 9));
        assert_eq!(Val::cst(300).cast_unsigned(8), Val::unsigned(8));
        assert_eq!(Val::cst(200).cast_unsigned(8), Val::cst(200));
    }

    #[test]
    fn parse_int_forms() {
        assert_eq!(parse_int("42"), Some(42));
        assert_eq!(parse_int("0x1F"), Some(31));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("4_096u64"), Some(4096));
        assert_eq!(parse_int("0.95"), None);
    }

    #[test]
    fn tag_range_flags_wide_value_and_accepts_masked() {
        let f = run(&["// bits: 12\n\
                       pub struct Asid(u16);\n\
                       pub fn bad(id: usize) { let _ = Asid((id as u16 + 1) as u16); }\n\
                       pub fn good(id: usize) { let _ = Asid((id & 0xFFF) as u16); }\n"]);
        assert_eq!(rules(&f), ["tag-range"]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn pack_overlap_and_slot() {
        let f = run(&["pub fn bad(a: u64, b: u64) -> u64 { (a & 0xFF) | ((b & 0xFF) << 4) }\n\
                       pub fn slot(x: u64, y: u64) -> u64 { ((y & 0x1FF)) | ((x % 100) << 8) }\n\
                       pub fn ok(a: u64, b: u64) -> u64 { (a & 0xF) | ((b & 0xFF) << 4) }\n"]);
        let packs: Vec<&RuleFinding> =
            f.iter().filter(|x| x.rule == "bit-pack-overflow").collect();
        assert!(packs.iter().any(|x| x.line == 1), "{f:?}");
        assert!(packs.iter().any(|x| x.line == 2), "{f:?}");
        assert!(!packs.iter().any(|x| x.line == 3), "{f:?}");
    }

    #[test]
    fn assert_narrowing_proves_packing() {
        let f = run(&["const PAGE_SHIFT: u32 = 12;\n\
                       pub fn pack(page: u64, offset: u64) -> u64 {\n\
                           assert!(offset < (1 << PAGE_SHIFT));\n\
                           (page << PAGE_SHIFT) | offset\n\
                       }\n"]);
        assert!(rules(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn summary_flows_through_calls() {
        let f = run(&["fn kind_code() -> u64 { 3 }\n\
                       pub fn pack(off: u64) -> u64 { (off << 2) | kind_code() }\n\
                       fn wide_code() -> u64 { 9 }\n\
                       pub fn bad(off: u64) -> u64 { (off << 2) | wide_code() }\n"]);
        // The 4-bit constant 9 under a 2-bit slot trips both the slot
        // check and (against the type-seeded `off << 2` mask) the
        // overlap check — but only on the `wide_code` line.
        let packs: Vec<&RuleFinding> =
            f.iter().filter(|x| x.rule == "bit-pack-overflow").collect();
        assert!(!packs.is_empty(), "{f:?}");
        assert!(packs.iter().all(|x| x.line == 4), "{f:?}");
    }

    #[test]
    fn fn_bits_annotation_overrides_opaque_body() {
        let f = run(&["// bits: 2\n\
                       pub fn encode(x: u64) -> u64 { opaque(x) }\n\
                       fn opaque(x: u64) -> u64 { x }\n\
                       pub fn pack(off: u64) -> u64 { (off << 2) | encode(off) }\n"]);
        assert!(rules(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn checked_constructor_and_wrapping_index_are_clean() {
        // `try_new`'s if-condition narrows the type-seeded `[0, 65535]`
        // parameter; `for_index`'s `%` stays non-negative because the
        // `usize` parameter is seeded unsigned.
        let f = run(&["// bits: 12\n\
                       pub struct Asid(u16);\n\
                       pub fn try_new(raw: u16) -> Option<Asid> {\n\
                           if raw < 4096 { Some(Asid(raw)) } else { None }\n\
                       }\n\
                       pub fn for_index(index: usize) -> Asid {\n\
                           Asid((index % 4095) as u16 + 1)\n\
                       }\n"]);
        assert!(rules(&f).is_empty(), "{f:?}");
    }

    #[test]
    fn index_bound_on_fixed_storage() {
        let f = run(&["pub fn bad(i: usize) -> u64 { let a = [0u64; 4]; a[i] }\n\
                       pub fn ok(i: usize) -> u64 { let a = [0u64; 4]; a[i & 3] }\n\
                       pub fn also_ok(i: usize) -> u64 { let a = [0u64; 4]; a[i % 4] }\n"]);
        let idx: Vec<&RuleFinding> = f.iter().filter(|x| x.rule == "index-bound").collect();
        assert_eq!(idx.len(), 1, "{f:?}");
        assert_eq!(idx[0].line, 1);
    }

    #[test]
    fn index_bound_via_field_capacity() {
        let f = run(&["pub struct S { slots: [u64; 8] }\n\
                       impl S {\n\
                           pub fn bad(&self, i: usize) -> u64 { self.slots[i] }\n\
                           pub fn ok(&self, i: usize) -> u64 { self.slots[i & 7] }\n\
                       }\n"]);
        let idx: Vec<&RuleFinding> = f.iter().filter(|x| x.rule == "index-bound").collect();
        assert_eq!(idx.len(), 1, "{f:?}");
        assert_eq!(idx[0].line, 3);
    }

    #[test]
    fn param_ranges_reach_private_helpers() {
        let f = run(&["// bits: 12\n\
                       pub struct Tag(u16);\n\
                       fn make(v: u64) -> u64 { let t = Tag(v as u16); 0 }\n\
                       pub fn caller() -> u64 { make(70_000) }\n"]);
        let tags: Vec<&RuleFinding> = f.iter().filter(|x| x.rule == "tag-range").collect();
        assert_eq!(tags.len(), 1, "{f:?}");
        assert_eq!(tags[0].line, 3);
    }

    #[test]
    fn loops_widen_instead_of_underestimating() {
        // `x` grows without bound in the loop: a naive linear walk would
        // keep its initial `0..=0` and wrongly prove the index safe; the
        // loop join must widen it to `Top` so the index is flagged.
        let f = run(&["pub fn grow(n: u64) -> u64 {\n\
                           let mut x = 0usize;\n\
                           for _i in 0..n { x += 1; }\n\
                           let a = [0u64; 4];\n\
                           a[x]\n\
                       }\n"]);
        let idx: Vec<&RuleFinding> = f.iter().filter(|x| x.rule == "index-bound").collect();
        assert_eq!(idx.len(), 1, "{f:?}");
        assert_eq!(idx[0].line, 5);
    }

    #[test]
    fn pre_pr8_asid_overflow_shape_is_flagged() {
        // The exact shipped bug: `Asid::new(id as u16 + 1)` wraps past
        // the 12-bit capacity for id ≥ 4095.
        let f = run(&["// bits: 12\n\
                       pub struct Asid(u16);\n\
                       impl Asid { pub fn new(raw: u16) -> Asid { Asid(raw) } }\n\
                       pub fn intern(id: usize) -> Asid { Asid::new(id as u16 + 1) }\n"]);
        let tags: Vec<&RuleFinding> = f.iter().filter(|x| x.rule == "tag-range").collect();
        assert!(tags.iter().any(|t| t.line == 4), "{f:?}");
    }
}
