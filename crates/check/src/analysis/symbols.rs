//! Workspace symbol table.
//!
//! Collects every module-level declaration from library files into one
//! table keyed by simple name, together with the crate each symbol lives
//! in. The table powers the cross-crate dead-code rule (reference counts
//! resolve against it) and gives `--analyze` its summary statistics.
//!
//! Resolution is deliberately name-based: the analyzer has no type
//! inference, so two symbols sharing a simple name alias each other and a
//! reference to either keeps both alive. That over-approximation is the
//! right bias for an advisory dead-code rule — it can miss dead symbols,
//! but what it reports really is unreferenced by simple-name match
//! anywhere in the workspace.

use std::collections::HashMap;
use std::path::Path;

use super::outline::{DeclKind, ParsedFile, Vis};
use crate::lint::FileKind;

/// Name of the crate (workspace member directory) a path belongs to.
///
/// `crates/core/src/mix.rs` → `core`; `compat/rand/src/lib.rs` →
/// `compat/rand`; anything else → its first path component.
pub(crate) fn crate_of(path: &Path) -> String {
    let comps: Vec<&str> = path
        .iter()
        .filter_map(|c| c.to_str())
        .collect();
    match comps.as_slice() {
        ["crates", name, ..] => (*name).to_owned(),
        ["compat", name, ..] => format!("compat/{name}"),
        [first, ..] => (*first).to_owned(),
        [] => String::new(),
    }
}

/// One module-level symbol in the workspace table.
#[derive(Debug, Clone)]
pub(crate) struct Symbol {
    /// Simple name.
    pub name: String,
    /// Declaration kind.
    pub kind: DeclKind,
    /// Visibility at the declaration.
    pub vis: Vis,
    /// Owning crate (see [`crate_of`]).
    pub crate_name: String,
    /// Index of the declaring file in the analyzed file list.
    pub file: usize,
    /// 1-based declaration line.
    pub line: u32,
}

/// Symbol table over all parsed library files.
#[derive(Debug, Default)]
pub(crate) struct SymbolTable {
    /// All symbols, in file order.
    pub syms: Vec<Symbol>,
    /// Simple name → indices into `syms`.
    pub by_name: HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table from parsed files. Only library files contribute
    /// symbols (binaries own their items; tests are scaffolding), and
    /// `#[cfg(test)]` declarations are skipped.
    pub fn build(files: &[ParsedFile]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (fi, file) in files.iter().enumerate() {
            if file.kind != FileKind::Lib {
                continue;
            }
            let crate_name = crate_of(&file.path);
            for item in &file.items {
                if item.is_test {
                    continue;
                }
                let idx = table.syms.len();
                table.syms.push(Symbol {
                    name: item.name.clone(),
                    kind: item.kind,
                    vis: item.vis,
                    crate_name: crate_name.clone(),
                    file: fi,
                    line: item.line,
                });
                table.by_name.entry(item.name.clone()).or_default().push(idx);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn crate_names() {
        assert_eq!(crate_of(Path::new("crates/core/src/mix.rs")), "core");
        assert_eq!(crate_of(Path::new("compat/rand/src/lib.rs")), "compat/rand");
        assert_eq!(crate_of(Path::new("xtask/src/main.rs")), "xtask");
    }

    #[test]
    fn builds_from_lib_files_only() {
        let lib = ParsedFile::parse(
            &PathBuf::from("crates/a/src/lib.rs"),
            FileKind::Lib,
            "pub struct Live;\n#[cfg(test)]\nmod tests { pub fn t() {} }\n",
        );
        let bin = ParsedFile::parse(
            &PathBuf::from("crates/a/src/main.rs"),
            FileKind::Bin,
            "pub fn binside() {}\n",
        );
        let table = SymbolTable::build(&[lib, bin]);
        let names: Vec<&str> = table.syms.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["Live"]);
        assert_eq!(table.syms[0].crate_name, "a");
        assert!(table.by_name.contains_key("Live"));
    }
}
