//! Item/expression outline parser.
//!
//! A deliberately partial Rust parser: enough structure for the semantic
//! rules — item declarations with visibility, function signatures with
//! typed parameter lists, brace-matched body token ranges, and the
//! impl/trait/module context each function lives in — without attempting
//! expression trees. Function bodies stay flat token ranges; the rules
//! walk them with operator/operand scans (see [`super::rules`]).
//!
//! The parser is resilient by construction: anything it does not
//! recognize it skips token-by-token, so exotic syntax degrades to
//! "no structure extracted here" instead of a parse error — the right
//! failure mode for an advisory analyzer.

use std::path::{Path, PathBuf};

use super::lexer::{skip_generics, skip_group, tokenize, Tok, TokKind};
use crate::lint::{mask_code, FileKind};

/// Item visibility (only the analyzer-relevant distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Vis {
    /// `pub` — visible outside the crate.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — crate-internal.
    Crate,
    /// No modifier.
    Private,
}

/// Kinds of module-level declarations tracked by the symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeclKind {
    /// Free function at module level.
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `trait`.
    Trait,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
}

/// A module-level declaration (symbol-table candidate).
#[derive(Debug, Clone)]
pub(crate) struct ItemDecl {
    /// Declaration kind.
    pub kind: DeclKind,
    /// Simple name.
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// 1-based line of the declaring keyword.
    pub line: u32,
    /// `true` when declared under `#[cfg(test)]` (or `#[test]`).
    pub is_test: bool,
    /// Concatenated type text for `const`/`static` items (empty for other
    /// kinds) — lets the concurrency rules spot `static FLAG: AtomicU64`.
    pub ty: String,
}

/// How a function takes `self` (drives the shared-access classification
/// of the lockset rule: `&self` methods are the concurrently-callable
/// surface of a shared type, `&mut self` implies exclusive access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SelfKind {
    /// Free function — no `self` receiver.
    None,
    /// `&self` (possibly `&'a self`).
    Ref,
    /// `&mut self`.
    RefMut,
    /// `self` / `mut self` by value.
    Owned,
}

/// A `struct` declaration with its parsed field list (named-field structs
/// only; tuple structs contribute an empty list).
#[derive(Debug, Clone)]
pub(crate) struct StructDecl {
    /// Simple name.
    pub name: String,
    /// `(field name, concatenated type text)` per named field.
    pub fields: Vec<(String, String)>,
    /// `true` under `#[cfg(test)]`.
    pub is_test: bool,
}

/// A function (free, inherent method, trait method, or trait-impl method).
#[derive(Debug, Clone)]
pub(crate) struct FnDecl {
    /// Simple name.
    pub name: String,
    /// Qualified display name: `Type::name` inside impls, `name` at
    /// module level, prefixed by nested module names.
    pub qual: String,
    /// Visibility of the `fn` itself.
    pub vis: Vis,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `(pattern, type-text)` for each non-`self` parameter.
    pub params: Vec<(String, String)>,
    /// How the function takes `self`.
    pub self_kind: SelfKind,
    /// Concatenated return-type text (empty for `()` returns).
    pub ret: String,
    /// Token range of the body, *excluding* the outer braces; `None` for
    /// bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// `true` for methods inside `impl Trait for Type` blocks.
    pub in_trait_impl: bool,
    /// `true` under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
    /// `true` when annotated `#[cold]` — the hot-path rule trusts the
    /// same hint the compiler uses and does not descend into these.
    pub is_cold: bool,
}

/// One parsed file: tokens plus the extracted outline.
#[derive(Debug)]
pub(crate) struct ParsedFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Build classification (decides which rules run).
    pub kind: FileKind,
    /// The full token stream of the comment/string-masked source.
    pub toks: Vec<Tok>,
    /// Every function with a parsed signature.
    pub fns: Vec<FnDecl>,
    /// Module-level declarations.
    pub items: Vec<ItemDecl>,
    /// Named-field struct declarations with their field lists.
    pub structs: Vec<StructDecl>,
    /// `// bits: N` width annotations, as `(1-based line, N)` pairs.
    /// Collected from the *raw* source before comment masking (the lexer
    /// never sees comments), sorted by line. An annotation names the
    /// declared bit width of the declaration on its own line or the next
    /// non-annotation line below it (see [`ParsedFile::bits_for_line`]).
    pub bit_widths: Vec<(u32, u32)>,
}

impl ParsedFile {
    /// Parses one file's source.
    pub fn parse(path: &Path, kind: FileKind, source: &str) -> ParsedFile {
        let toks = tokenize(&mask_code(source));
        let mut out = ParsedFile {
            path: path.to_path_buf(),
            kind,
            toks,
            fns: Vec::new(),
            items: Vec::new(),
            structs: Vec::new(),
            bit_widths: bit_width_annotations(source),
        };
        let end = out.toks.len();
        let mut p = Parser {
            file: &mut out,
            ctx: Ctx {
                type_name: None,
                in_trait_impl: false,
                in_test: false,
                modules: Vec::new(),
            },
        };
        p.items(0, end);
        out
    }

    /// The declared bit width covering `line`: an annotation on the line
    /// itself (trailing `// bits: N`) or on one of up to two consecutive
    /// annotation/comment lines immediately above (the doc-comment-plus-
    /// annotation idiom). `None` when no annotation governs the line.
    pub fn bits_for_line(&self, line: u32) -> Option<u32> {
        self.bit_widths
            .iter()
            .rev()
            .find(|(l, _)| *l <= line && line - *l <= 2)
            .map(|(_, n)| *n)
    }
}

/// Scans *raw* (unmasked) source for `// bits: N` annotations. The lexer
/// works on comment-masked text, so widths must be harvested before
/// masking; only the comment shape `// bits: N` (any leading `/`s and
/// spacing, an optional trailing remark after the number) is recognized.
fn bit_width_annotations(source: &str) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let Some(comment_at) = raw_line.find("//") else { continue };
        let comment = raw_line[comment_at..].trim_start_matches('/').trim_start();
        let Some(rest) = comment.strip_prefix("bits:") else { continue };
        let rest = rest.trim_start();
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(n) = digits.parse::<u32>() {
            if (1..=128).contains(&n) {
                out.push((idx as u32 + 1, n));
            }
        }
    }
    out
}

#[derive(Clone)]
struct Ctx {
    /// Enclosing impl/trait type name, if any.
    type_name: Option<String>,
    in_trait_impl: bool,
    in_test: bool,
    modules: Vec<String>,
}

struct Parser<'f> {
    file: &'f mut ParsedFile,
    ctx: Ctx,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.file.toks.get(i)
    }

    /// Parses the item sequence in `[from, to)`.
    fn items(&mut self, from: usize, to: usize) {
        let mut i = from;
        let mut vis = Vis::Private;
        let mut attr_test = false;
        let mut attr_cold = false;
        while i < to {
            let Some(t) = self.tok(i) else { break };
            let text = t.text.clone();
            match (t.kind, text.as_str()) {
                (TokKind::Punct, "#") => {
                    // Attribute: `#[…]` or `#![…]`; detect test markers.
                    let mut j = i + 1;
                    if self.tok(j).is_some_and(|t| t.is("!")) {
                        j += 1;
                    }
                    if self.tok(j).is_some_and(|t| t.is("[")) {
                        let end = skip_group(&self.file.toks, j);
                        let body: Vec<&str> = self.file.toks[j..end]
                            .iter()
                            .map(|t| t.text.as_str())
                            .collect();
                        if body.windows(4).any(|w| w == ["cfg", "(", "test", ")"])
                            || body.get(1).copied() == Some("test")
                        {
                            attr_test = true;
                        }
                        if body.get(1).copied() == Some("cold") {
                            attr_cold = true;
                        }
                        i = end;
                    } else {
                        i = j;
                    }
                }
                (TokKind::Ident, "pub") => {
                    vis = Vis::Pub;
                    i += 1;
                    if self.tok(i).is_some_and(|t| t.is("(")) {
                        vis = Vis::Crate;
                        i = skip_group(&self.file.toks, i);
                    }
                }
                // Modifier keywords that may precede `fn`.
                (TokKind::Ident, "const" | "static")
                    if !self.tok(i + 1).is_some_and(|t| t.is_ident("fn")) =>
                {
                    let kind = if text == "const" {
                        DeclKind::Const
                    } else {
                        DeclKind::Static
                    };
                    // `const NAME: T = …;` (skip `mut` for statics).
                    let mut j = i + 1;
                    if self.tok(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    if let Some(name) = self.tok(j).filter(|t| t.kind == TokKind::Ident) {
                        if name.text != "_" {
                            let ty = if self.tok(j + 1).is_some_and(|t| t.is(":")) {
                                self.type_text(j + 2, to, &["=", ";"])
                            } else {
                                String::new()
                            };
                            let decl = ItemDecl {
                                kind,
                                name: name.text.clone(),
                                vis,
                                line: name.line,
                                is_test: self.ctx.in_test || attr_test,
                                ty,
                            };
                            self.push_item(decl);
                        }
                    }
                    i = self.skip_to_semi(j, to);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Ident, "unsafe" | "async" | "extern" | "default") => i += 1,
                (TokKind::Ident, "fn") => {
                    i = self.function(i, to, vis, attr_test, attr_cold);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Ident, "struct" | "enum" | "union" | "trait") => {
                    i = self.type_like(i, to, &text, vis, attr_test);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Ident, "impl") => {
                    i = self.impl_block(i, to, attr_test);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Ident, "mod") => {
                    i = self.module(i, to, attr_test);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Ident, "type") => {
                    if let Some(name) = self.tok(i + 1).filter(|t| t.kind == TokKind::Ident) {
                        let decl = ItemDecl {
                            kind: DeclKind::TypeAlias,
                            name: name.text.clone(),
                            vis,
                            line: name.line,
                            is_test: self.ctx.in_test || attr_test,
                            ty: String::new(),
                        };
                        self.push_item(decl);
                    }
                    i = self.skip_to_semi(i + 1, to);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Ident, "use") => {
                    i = self.skip_to_semi(i + 1, to);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Ident, "macro_rules") => {
                    // `macro_rules! name { … }`
                    let mut j = i + 1;
                    while j < to && !self.tok(j).is_some_and(|t| t.is("{")) {
                        j += 1;
                    }
                    i = skip_group(&self.file.toks, j);
                    (vis, attr_test, attr_cold) = (Vis::Private, false, false);
                }
                (TokKind::Punct, "{") => {
                    // Stray block (e.g. inside macro bodies): skip whole.
                    i = skip_group(&self.file.toks, i);
                }
                _ => {
                    i += 1;
                    (vis, attr_test) = (vis, attr_test);
                }
            }
        }
    }

    fn push_item(&mut self, decl: ItemDecl) {
        // Only module-level declarations (not trait members) feed the
        // symbol table; trait bodies set `type_name`.
        if self.ctx.type_name.is_none() {
            self.file.items.push(decl);
        }
    }

    fn skip_to_semi(&self, mut i: usize, to: usize) -> usize {
        while i < to {
            match self.tok(i) {
                Some(t) if t.is(";") => return i + 1,
                Some(t) if t.is("{") => return skip_group(&self.file.toks, i),
                Some(t) if t.is("(") || t.is("[") => i = skip_group(&self.file.toks, i),
                Some(_) => i += 1,
                None => break,
            }
        }
        to
    }

    /// Collects concatenated type text from `from` until a depth-0 stop
    /// token (or `to`), descending into generics/groups verbatim.
    fn type_text(&self, from: usize, to: usize, stops: &[&str]) -> String {
        let toks = &self.file.toks;
        let mut out = String::new();
        let mut i = from;
        while i < to.min(toks.len()) {
            let t = &toks[i];
            if stops.contains(&t.text.as_str()) {
                break;
            }
            if t.is("<") {
                let close = skip_generics(toks, i);
                for t in &toks[i..close.min(toks.len())] {
                    out.push_str(&t.text);
                }
                i = close;
                continue;
            }
            if t.is("(") || t.is("[") || t.is("{") {
                let close = skip_group(toks, i);
                for t in &toks[i..close.min(toks.len())] {
                    out.push_str(&t.text);
                }
                i = close;
                continue;
            }
            out.push_str(&t.text);
            i += 1;
        }
        out
    }

    /// Parses `fn name …` starting at the `fn` keyword; returns the index
    /// past the item.
    fn function(
        &mut self,
        at: usize,
        to: usize,
        vis: Vis,
        attr_test: bool,
        attr_cold: bool,
    ) -> usize {
        let toks_len = self.file.toks.len();
        let Some(name_tok) = self.tok(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut i = at + 2;
        if self.tok(i).is_some_and(|t| t.is("<")) {
            i = skip_generics(&self.file.toks, i);
        }
        // Parameter list.
        let mut params = Vec::new();
        let mut self_kind = SelfKind::None;
        if self.tok(i).is_some_and(|t| t.is("(")) {
            let close = skip_group(&self.file.toks, i);
            params = self.params(i + 1, close.saturating_sub(1));
            self_kind = self.self_kind(i + 1, close.saturating_sub(1));
            i = close;
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        let mut body = None;
        let mut ret = String::new();
        while i < to.min(toks_len) {
            match self.tok(i) {
                Some(t) if t.is(";") => {
                    i += 1;
                    break;
                }
                Some(t) if t.is("{") => {
                    let close = skip_group(&self.file.toks, i);
                    body = Some((i + 1, close.saturating_sub(1)));
                    i = close;
                    break;
                }
                Some(t) if t.is("->") => {
                    ret = self.type_text(i + 1, to, &["where", "{", ";"]);
                    i += 1;
                }
                Some(t) if t.is("<") => i = skip_generics(&self.file.toks, i),
                Some(t) if t.is("(") || t.is("[") => i = skip_group(&self.file.toks, i),
                Some(_) => i += 1,
                None => break,
            }
        }
        let qual = match &self.ctx.type_name {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        let qual = if self.ctx.modules.is_empty() {
            qual
        } else {
            format!("{}::{qual}", self.ctx.modules.join("::"))
        };
        let is_test = self.ctx.in_test || attr_test;
        if self.ctx.type_name.is_none() {
            self.file.items.push(ItemDecl {
                kind: DeclKind::Fn,
                name: name.clone(),
                vis,
                line,
                is_test,
                ty: String::new(),
            });
        }
        self.file.fns.push(FnDecl {
            name,
            qual,
            vis,
            line,
            params,
            self_kind,
            ret,
            body,
            in_trait_impl: self.ctx.in_trait_impl,
            is_test,
            is_cold: attr_cold,
        });
        i
    }

    /// Classifies the `self` receiver of a parameter-list token range.
    fn self_kind(&self, from: usize, to: usize) -> SelfKind {
        let toks = &self.file.toks;
        // The receiver, when present, is the first parameter: scan up to
        // the first depth-0 `,` or `:` for a bare `self` token.
        let mut i = from;
        let mut amp = false;
        let mut is_mut = false;
        let mut after_tick = false;
        while i < to.min(toks.len()) {
            let t = &toks[i];
            if t.is(",") || t.is(":") {
                break;
            }
            if t.is("&") {
                amp = true;
            } else if t.is("'") {
                after_tick = true; // lifetime: `&'a self`
                i += 1;
                continue;
            } else if t.is_ident("mut") {
                is_mut = true;
            } else if t.is_ident("self") {
                return match (amp, is_mut) {
                    (true, true) => SelfKind::RefMut,
                    (true, false) => SelfKind::Ref,
                    (false, _) => SelfKind::Owned,
                };
            } else if t.kind == TokKind::Ident && !after_tick {
                // A non-lifetime identifier before any `self`: free fn.
                break;
            }
            after_tick = false;
            i += 1;
        }
        SelfKind::None
    }

    /// Parses a parameter list token range into `(pattern, type)` pairs.
    fn params(&self, from: usize, to: usize) -> Vec<(String, String)> {
        let toks = &self.file.toks;
        let mut out = Vec::new();
        let mut i = from;
        while i < to {
            // One parameter: pattern tokens until a depth-0 `:`, then type
            // tokens until a depth-0 `,`.
            let mut pat = Vec::new();
            while i < to && !toks[i].is(":") && !toks[i].is(",") {
                if toks[i].is("(") || toks[i].is("[") {
                    i = skip_group(toks, i);
                    pat.clear(); // tuple patterns: not a simple name
                    continue;
                }
                pat.push(toks[i].text.clone());
                i += 1;
            }
            if i >= to || toks[i].is(",") {
                i += 1;
                continue; // `self`, `&mut self`, …
            }
            i += 1; // past ':'
            let mut ty = String::new();
            while i < to && !toks[i].is(",") {
                if toks[i].is("<") {
                    let close = skip_generics(toks, i);
                    for t in &toks[i..close.min(to)] {
                        ty.push_str(&t.text);
                    }
                    i = close;
                    continue;
                }
                if toks[i].is("(") || toks[i].is("[") {
                    let close = skip_group(toks, i);
                    for t in &toks[i..close.min(to)] {
                        ty.push_str(&t.text);
                    }
                    i = close;
                    continue;
                }
                ty.push_str(&toks[i].text);
                i += 1;
            }
            i += 1; // past ','
            let name = pat
                .iter()
                .rev()
                .find(|p| {
                    p.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
                        && !matches!(p.as_str(), "mut" | "ref")
                })
                .cloned();
            if let Some(name) = name {
                out.push((name, ty));
            }
        }
        out
    }

    /// Parses `struct`/`enum`/`union`/`trait` starting at the keyword.
    fn type_like(&mut self, at: usize, to: usize, kw: &str, vis: Vis, attr_test: bool) -> usize {
        let Some(name_tok) = self.tok(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let kind = match kw {
            "struct" | "union" => DeclKind::Struct,
            "enum" => DeclKind::Enum,
            _ => DeclKind::Trait,
        };
        self.push_item(ItemDecl {
            kind,
            name: name.clone(),
            vis,
            line,
            is_test: self.ctx.in_test || attr_test,
            ty: String::new(),
        });
        let mut i = at + 2;
        if self.tok(i).is_some_and(|t| t.is("<")) {
            i = skip_generics(&self.file.toks, i);
        }
        // Find the body `{` (or `;` / `(` for unit & tuple structs).
        while i < to {
            match self.tok(i) {
                Some(t) if t.is(";") => return i + 1,
                Some(t) if t.is("(") => {
                    i = skip_group(&self.file.toks, i);
                }
                Some(t) if t.is("{") => {
                    let close = skip_group(&self.file.toks, i);
                    if kind == DeclKind::Trait {
                        // Default/required methods live here.
                        let saved = self.ctx.clone();
                        self.ctx.type_name = Some(name);
                        self.ctx.in_test |= attr_test;
                        self.items(i + 1, close.saturating_sub(1));
                        self.ctx = saved;
                    } else if kw == "struct" {
                        let fields = self.struct_fields(i + 1, close.saturating_sub(1));
                        self.file.structs.push(StructDecl {
                            name,
                            fields,
                            is_test: self.ctx.in_test || attr_test,
                        });
                    }
                    return close;
                }
                Some(_) => i += 1,
                None => break,
            }
        }
        to
    }

    /// Parses a named-field struct body into `(name, type-text)` pairs.
    fn struct_fields(&self, from: usize, to: usize) -> Vec<(String, String)> {
        let toks = &self.file.toks;
        let mut out = Vec::new();
        let mut i = from;
        while i < to.min(toks.len()) {
            let t = &toks[i];
            // Skip attributes and visibility modifiers before the name.
            if t.is("#") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is("[")) {
                    j = skip_group(toks, j);
                }
                i = j;
                continue;
            }
            if t.is_ident("pub") {
                i += 1;
                if toks.get(i).is_some_and(|t| t.is("(")) {
                    i = skip_group(toks, i);
                }
                continue;
            }
            if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is(":")) {
                let name = t.text.clone();
                let ty = self.type_text(i + 2, to, &[","]);
                out.push((name, ty));
                // Advance past the field's type to the `,` (or end).
                i += 2;
                while i < to.min(toks.len()) && !toks[i].is(",") {
                    if toks[i].is("<") {
                        i = skip_generics(toks, i);
                    } else if toks[i].is("(") || toks[i].is("[") || toks[i].is("{") {
                        i = skip_group(toks, i);
                    } else {
                        i += 1;
                    }
                }
                i += 1;
                continue;
            }
            i += 1;
        }
        out
    }

    /// Parses an `impl` block starting at the keyword.
    fn impl_block(&mut self, at: usize, to: usize, attr_test: bool) -> usize {
        let toks_len = self.file.toks.len();
        let mut i = at + 1;
        if self.tok(i).is_some_and(|t| t.is("<")) {
            i = skip_generics(&self.file.toks, i);
        }
        // Header path segments until `{`; remember whether ` for ` occurs
        // and the last path segment seen before the brace (the type).
        let mut is_trait_impl = false;
        let mut last_segment = None;
        while i < to.min(toks_len) {
            match self.tok(i) {
                Some(t) if t.is("{") => break,
                Some(t) if t.is(";") => return i + 1,
                Some(t) if t.is("<") => {
                    i = skip_generics(&self.file.toks, i);
                    continue;
                }
                Some(t) if t.is("(") => {
                    i = skip_group(&self.file.toks, i);
                    continue;
                }
                Some(t) if t.is_ident("for") => {
                    is_trait_impl = true;
                    last_segment = None;
                    i += 1;
                }
                Some(t) if t.kind == TokKind::Ident && t.text != "where" && t.text != "dyn" => {
                    last_segment = Some(t.text.clone());
                    i += 1;
                }
                Some(_) => i += 1,
                None => break,
            }
        }
        if !self.tok(i).is_some_and(|t| t.is("{")) {
            return i;
        }
        let close = skip_group(&self.file.toks, i);
        let saved = self.ctx.clone();
        self.ctx.type_name = last_segment.or(Some("impl".to_owned()));
        self.ctx.in_trait_impl = is_trait_impl;
        self.ctx.in_test |= attr_test;
        self.items(i + 1, close.saturating_sub(1));
        self.ctx = saved;
        close
    }

    /// Parses `mod name { … }` / `mod name;`.
    fn module(&mut self, at: usize, to: usize, attr_test: bool) -> usize {
        let Some(name_tok) = self.tok(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        let mut i = at + 2;
        if self.tok(i).is_some_and(|t| t.is(";")) {
            return i + 1;
        }
        while i < to && !self.tok(i).is_some_and(|t| t.is("{")) {
            i += 1;
        }
        if i >= to {
            return to;
        }
        let close = skip_group(&self.file.toks, i);
        let saved = self.ctx.clone();
        let test_mod = attr_test || name == "tests" || name == "test";
        self.ctx.modules.push(name);
        self.ctx.in_test |= test_mod;
        self.items(i + 1, close.saturating_sub(1));
        self.ctx = saved;
        close
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(Path::new("crates/x/src/demo.rs"), FileKind::Lib, src)
    }

    #[test]
    fn extracts_free_and_method_fns() {
        let f = parse(
            "pub fn walk(pt: &mut PageTable, va: VirtAddr) -> u64 { va.raw() }\n\
             impl MixTlb {\n  fn set_of(&self, vpn: Vpn) -> usize { 0 }\n}\n\
             impl TlbDevice for MixTlb {\n  fn flush(&mut self) {}\n}\n",
        );
        let quals: Vec<&str> = f.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["walk", "MixTlb::set_of", "MixTlb::flush"]);
        assert_eq!(f.fns[0].vis, Vis::Pub);
        assert_eq!(
            f.fns[0].params,
            [
                ("pt".to_owned(), "&mutPageTable".to_owned()),
                ("va".to_owned(), "VirtAddr".to_owned()),
            ]
        );
        assert!(f.fns[2].in_trait_impl);
        assert!(f.fns[0].body.is_some());
    }

    #[test]
    fn marks_test_code() {
        let f = parse(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\n",
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
        assert_eq!(f.fns[1].qual, "tests::t");
    }

    #[test]
    fn collects_module_level_items() {
        let f = parse(
            "pub struct A(u64);\npub(crate) enum B { X }\nconst C: u64 = 3;\n\
             pub trait T { fn m(&self); }\npub type D = u64;\nstatic S: u64 = 0;\n",
        );
        let names: Vec<(&str, DeclKind, Vis)> = f
            .items
            .iter()
            .map(|i| (i.name.as_str(), i.kind, i.vis))
            .collect();
        assert_eq!(
            names,
            [
                ("A", DeclKind::Struct, Vis::Pub),
                ("B", DeclKind::Enum, Vis::Crate),
                ("C", DeclKind::Const, Vis::Private),
                ("T", DeclKind::Trait, Vis::Pub),
                ("D", DeclKind::TypeAlias, Vis::Pub),
                ("S", DeclKind::Static, Vis::Private),
            ]
        );
        // The trait method is parsed as a fn but not a module-level item.
        assert!(f.fns.iter().any(|x| x.qual == "T::m" && x.body.is_none()));
    }

    #[test]
    fn const_fn_is_a_fn() {
        let f = parse("pub const fn shift(self) -> u32 { 12 }\n");
        assert_eq!(f.items.len(), 1);
        assert_eq!(f.items[0].kind, DeclKind::Fn);
        assert_eq!(f.fns[0].name, "shift");
    }

    #[test]
    fn generics_in_signatures_do_not_derail() {
        let f = parse(
            "pub fn collect<T: Into<Vec<u8>>>(xs: Vec<T>, n: usize) -> Vec<u8> { xs.pop() }\n\
             fn after() {}\n",
        );
        let names: Vec<&str> = f.fns.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["collect", "after"]);
        assert_eq!(f.fns[0].params.len(), 2);
    }

    #[test]
    fn classifies_self_receivers() {
        let f = parse(
            "impl S {\n\
               fn a(&self) {}\n\
               fn b(&mut self, x: u64) {}\n\
               fn c(self) {}\n\
               fn d(&'a self) {}\n\
               fn e(x: u64) {}\n\
             }\n",
        );
        let kinds: Vec<SelfKind> = f.fns.iter().map(|x| x.self_kind).collect();
        assert_eq!(
            kinds,
            [
                SelfKind::Ref,
                SelfKind::RefMut,
                SelfKind::Owned,
                SelfKind::Ref,
                SelfKind::None,
            ]
        );
    }

    #[test]
    fn captures_return_types_and_cold_attr() {
        let f = parse(
            "fn guard(&self) -> MutexGuard<'_, u64> { self.m.lock() }\n\
             #[cold]\nfn fault(n: u64) -> io::Error { panic!() }\n\
             fn plain() {}\n",
        );
        assert!(f.fns[0].ret.contains("Guard"), "{}", f.fns[0].ret);
        assert!(!f.fns[0].is_cold);
        assert_eq!(f.fns[1].ret, "io::Error");
        assert!(f.fns[1].is_cold, "#[cold] must be captured");
        assert!(f.fns[2].ret.is_empty());
        assert!(!f.fns[2].is_cold, "#[cold] must not leak to the next fn");
    }

    #[test]
    fn captures_struct_fields_and_static_types() {
        let f = parse(
            "pub struct Shard {\n\
               #[doc(hidden)]\n\
               pub m: Mutex<u64>,\n\
               hits: u64,\n\
               map: HashMap<Vpn, Translation>,\n\
             }\n\
             static EPOCH: AtomicU64 = AtomicU64::new(0);\n\
             const LIMIT: usize = 8;\n",
        );
        assert_eq!(f.structs.len(), 1);
        let fields: Vec<(&str, &str)> = f.structs[0]
            .fields
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .collect();
        assert_eq!(
            fields,
            [
                ("m", "Mutex<u64>"),
                ("hits", "u64"),
                ("map", "HashMap<Vpn,Translation>"),
            ]
        );
        let epoch = f.items.iter().find(|i| i.name == "EPOCH").expect("EPOCH");
        assert_eq!(epoch.ty, "AtomicU64");
        let limit = f.items.iter().find(|i| i.name == "LIMIT").expect("LIMIT");
        assert_eq!(limit.ty, "usize");
    }
}
