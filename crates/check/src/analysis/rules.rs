//! Per-function semantic rules.
//!
//! All four file-local rules share one body-scanning toolkit built on the
//! outline parser's token ranges:
//!
//! * **`addr-arith`** — address-arithmetic taint. `.raw()` called on an
//!   address-typed value (a parameter typed `Vpn`/`Pfn`/`VirtAddr`/
//!   `PhysAddr`, a field named like one, or a local bound from such a
//!   call) yields a *raw* untyped integer; shifting, masking or dividing
//!   that integer re-implements page geometry by hand. The typed helpers
//!   in `mixtlb-types` (`table_index`, `page_number`, `align_down_pages`,
//!   `index_bits`, `chunk_index`, `pte_address`, `line_index`) exist so
//!   geometry lives in one audited place; this rule points violators at
//!   them. Taint is *escape-based*: values that stay inside typed
//!   accessors never taint, so `vpn.table_index(level) & mask` on the
//!   resulting plain index is fine — only the raw address bits are hot.
//! * **`truncating-cast`** — `as u8`/`as u16`/`as u32` applied to a
//!   raw-tainted expression silently drops high address bits; the fix is
//!   `u32::try_from(..)` (or staying in the typed domain).
//! * **`pagesize-match`** — a `match` whose arms name `PageSize`
//!   variants must not have a `_` wildcard arm: adding a fourth page
//!   size must break the build at every site that dispatches on size,
//!   not silently fall into a default.
//! * **`bare-unwrap`** — `.unwrap()` in non-test library code. Unlike
//!   the lint pass's `panic` rule this one accepts no inline marker: the
//!   committed baseline is its only suppression path, so every accepted
//!   unwrap is centrally visible (use `.expect("why")` or a real error
//!   path instead).
//!
//! Rules are syntactic and advisory by design — no type inference, no
//! data-flow joins — and they bias toward false negatives: a finding
//! should always be worth reading.

use std::collections::HashSet;

use super::lexer::{skip_group, Tok, TokKind};
use super::outline::{FnDecl, ParsedFile};
use crate::lint::FileKind;

/// A rule hit inside one file (path added by the driver).
#[derive(Debug, Clone)]
pub(crate) struct RuleFinding {
    /// Rule identifier.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Explanation and suggested fix.
    pub message: String,
}

/// Address types whose parameters seed taint.
const ADDR_TYPES: [&str; 4] = ["Vpn", "Pfn", "VirtAddr", "PhysAddr"];
/// Field/variable names treated as address-typed by convention.
const ADDR_FIELDS: [&str; 6] = ["vpn", "pfn", "va", "pa", "gpa", "gva"];
/// Binary operators that re-implement geometry when fed raw bits.
const ARITH_OPS: [&str; 12] = [
    "<<", ">>", "&", "|", "/", "%", "<<=", ">>=", "&=", "|=", "/=", "%=",
];
/// Truncating cast targets.
const NARROW: [&str; 3] = ["u8", "u16", "u32"];
/// `PageSize` idents that mark a size-dispatching match arm.
const PAGESIZE_IDENTS: [&str; 4] = ["PageSize", "Size4K", "Size2M", "Size1G"];

/// Runs every file-local rule over one parsed library file.
pub(crate) fn file_rules(file: &ParsedFile) -> Vec<RuleFinding> {
    let mut out = Vec::new();
    if file.kind != FileKind::Lib {
        return out;
    }
    let in_types = file.path.iter().any(|c| c == "types");
    for f in &file.fns {
        if f.is_test {
            continue;
        }
        let Some((from, to)) = f.body else { continue };
        if !in_types {
            taint_rules(file, f, from, to, &mut out);
        }
        pagesize_match(&file.toks, from, to, &mut out);
        bare_unwrap(&file.toks, from, to, &mut out);
    }
    out.sort_by_key(|f| f.line);
    out
}

// ---------------------------------------------------------------------------
// addr-arith + truncating-cast (shared taint machinery)
// ---------------------------------------------------------------------------

/// Runs the two raw-taint rules over one function body.
fn taint_rules(
    file: &ParsedFile,
    f: &FnDecl,
    from: usize,
    to: usize,
    out: &mut Vec<RuleFinding>,
) {
    let toks = &file.toks;
    let to = to.min(toks.len());
    // Seed: parameters with address types.
    let mut addr_names: HashSet<&str> = f
        .params
        .iter()
        .filter(|(_, ty)| ADDR_TYPES.iter().any(|t| ty.contains(t)))
        .map(|(name, _)| name.as_str())
        .collect();
    addr_names.extend(ADDR_FIELDS);
    // Raw-tainted locals: `let x = <expr containing a tainted .raw()>;`.
    let mut raw_names: HashSet<String> = HashSet::new();
    let mut i = from;
    while i < to {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name = toks.get(j).filter(|t| t.kind == TokKind::Ident).cloned();
            if let Some(name) = name {
                if toks.get(j + 1).is_some_and(|t| t.is("=")) {
                    let end = init_end(toks, j + 2, to);
                    if has_raw_taint(toks, j + 2, end, &addr_names, &raw_names) {
                        raw_names.insert(name.text);
                    }
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    // Closure parameter bars: `|x| …` — the opening `|` follows a
    // non-expression token, and its closer is the next top-level `|`.
    // Both are delimiters, not binary ORs, and must not be flagged
    // (`.and_then(|h| h.translate(va.raw()))` pipes are not masks).
    let mut closure_bars: HashSet<usize> = HashSet::new();
    let mut j = from;
    while j < to {
        if toks[j].is("|") && !closure_bars.contains(&j) && (j == 0 || !toks[j - 1].ends_expr())
        {
            closure_bars.insert(j);
            let mut k = j + 1;
            while k < to && !toks[k].is("|") {
                if toks[k].is("(") || toks[k].is("[") || toks[k].is("{") {
                    k = skip_group(toks, k);
                } else {
                    k += 1;
                }
            }
            closure_bars.insert(k);
        }
        j += 1;
    }
    // addr-arith: a raw-tainted operand next to a geometry operator.
    for j in from..to {
        if !(toks[j].kind == TokKind::Punct && ARITH_OPS.contains(&toks[j].text.as_str())) {
            continue;
        }
        // Binary position only: the previous token must end an expression
        // (rules out `&x` references and generic brackets).
        if j == 0 || !toks[j - 1].ends_expr() || closure_bars.contains(&j) {
            continue;
        }
        let ls = primary_start(toks, from, j);
        let re = primary_end(toks, j + 1, to);
        let tainted = has_raw_taint(toks, ls, j, &addr_names, &raw_names)
            || has_raw_taint(toks, j + 1, re, &addr_names, &raw_names);
        if tainted {
            out.push(RuleFinding {
                rule: "addr-arith",
                line: toks[j].line,
                message: format!(
                    "raw address bits fed to `{}` in `{}` — route the geometry \
                     through a typed `mixtlb-types` helper (`table_index`, \
                     `page_number`, `align_down_pages`, `index_bits`, \
                     `chunk_index`, `pte_address`, `line_index`) instead of \
                     open-coding shifts/masks on `.raw()` values",
                    toks[j].text, f.qual
                ),
            });
        }
    }
    // truncating-cast: `<raw-tainted> as u8|u16|u32`.
    for j in from..to {
        if !toks[j].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(j + 1).filter(|t| NARROW.contains(&t.text.as_str()))
        else {
            continue;
        };
        let ls = primary_start(toks, from, j);
        if has_raw_taint(toks, ls, j, &addr_names, &raw_names) {
            out.push(RuleFinding {
                rule: "truncating-cast",
                line: toks[j].line,
                message: format!(
                    "`as {}` truncates a raw address value in `{}` — use \
                     `{}::try_from(..)` (or keep the value in its typed \
                     accessor domain) so overflow is a checked error, not \
                     silent bit loss",
                    target.text, f.qual, target.text
                ),
            });
        }
    }
}

/// End (exclusive) of a `let` initializer starting at `i`: the `;` at
/// nesting depth 0, groups skipped.
fn init_end(toks: &[Tok], mut i: usize, to: usize) -> usize {
    while i < to {
        match toks[i].text.as_str() {
            ";" => return i,
            "(" | "[" | "{" => i = skip_group(toks, i),
            _ => i += 1,
        }
    }
    to
}

/// Does `[from, to)` contain a raw-taint source: `.raw()` on an
/// address-typed receiver, or a raw-tainted local name?
fn has_raw_taint(
    toks: &[Tok],
    from: usize,
    to: usize,
    addr_names: &HashSet<&str>,
    raw_names: &HashSet<String>,
) -> bool {
    let to = to.min(toks.len());
    for i in from..to {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if raw_names.contains(&toks[i].text) {
            return true;
        }
        let is_raw_call = toks[i].text == "raw"
            && i > 0
            && toks[i - 1].is(".")
            && toks.get(i + 1).is_some_and(|t| t.is("("))
            && toks.get(i + 2).is_some_and(|t| t.is(")"));
        if is_raw_call && receiver_is_addr(toks, from, i - 1, addr_names) {
            return true;
        }
    }
    false
}

/// Walks the receiver chain leftward from the `.` at `dot` and reports
/// whether any chain identifier is address-typed/-named.
fn receiver_is_addr(toks: &[Tok], floor: usize, dot: usize, addr_names: &HashSet<&str>) -> bool {
    let start = primary_start(toks, floor, dot);
    toks[start..dot]
        .iter()
        .any(|t| t.kind == TokKind::Ident && addr_names.contains(t.text.as_str()))
}

/// Start index of the primary expression ending just before `end`
/// (postfix chains of idents/literals, `.`/`::` separators, and balanced
/// groups). Tolerant: stops at anything unrecognized.
fn primary_start(toks: &[Tok], floor: usize, end: usize) -> usize {
    let mut i = end;
    loop {
        // Postfix groups: `f(x)`, `xs[i]`, `(a + b)`.
        while i > floor && (toks[i - 1].is(")") || toks[i - 1].is("]")) {
            i = open_backward(toks, floor, i - 1);
        }
        if i > floor && matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Lit) {
            i -= 1;
        } else {
            return i;
        }
        if i > floor && (toks[i - 1].is(".") || toks[i - 1].is("::")) {
            i -= 1;
        } else {
            return i;
        }
    }
}

/// Index of the opening delimiter matching the closer at `close`.
fn open_backward(toks: &[Tok], floor: usize, close: usize) -> usize {
    let mut depth = 0i64;
    let mut i = close;
    loop {
        match toks[i].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == floor {
            return i;
        }
        i -= 1;
    }
}

/// End (exclusive) of the primary expression starting at `start`
/// (prefix operators, then an atom with its postfix chain).
fn primary_end(toks: &[Tok], start: usize, ceil: usize) -> usize {
    let mut i = start;
    while i < ceil
        && (toks[i].is("&") || toks[i].is("*") || toks[i].is("-") || toks[i].is("!")
            || toks[i].is_ident("mut"))
    {
        i += 1;
    }
    loop {
        if i >= ceil {
            return i;
        }
        // Atom.
        if toks[i].is("(") || toks[i].is("[") {
            i = skip_group(toks, i);
        } else if matches!(toks[i].kind, TokKind::Ident | TokKind::Lit) {
            i += 1;
        } else {
            return i;
        }
        // Postfix: calls, indexing, `?`, then `.`/`::` continuation.
        loop {
            if i < ceil && (toks[i].is("(") || toks[i].is("[")) {
                i = skip_group(toks, i);
            } else if i < ceil && toks[i].is("?") {
                i += 1;
            } else {
                break;
            }
        }
        if i < ceil && (toks[i].is(".") || toks[i].is("::")) {
            i += 1;
        } else {
            return i;
        }
    }
}

// ---------------------------------------------------------------------------
// pagesize-match
// ---------------------------------------------------------------------------

/// Flags `match` statements that dispatch on `PageSize` variants but keep
/// a `_` wildcard arm.
fn pagesize_match(toks: &[Tok], from: usize, to: usize, out: &mut Vec<RuleFinding>) {
    let to = to.min(toks.len());
    let mut i = from;
    while i < to {
        if !toks[i].is_ident("match") {
            i += 1;
            continue;
        }
        // Scrutinee runs to the first top-level `{` (struct literals are
        // not legal in match scrutinees without parens, so this is safe).
        let mut j = i + 1;
        while j < to && !toks[j].is("{") {
            if toks[j].is("(") || toks[j].is("[") {
                j = skip_group(toks, j);
            } else {
                j += 1;
            }
        }
        if j >= to {
            break;
        }
        let close = skip_group(toks, j).saturating_sub(1);
        let mut names_pagesize = false;
        let mut wildcard_line: Option<u32> = None;
        // Arms: pattern up to a top-level `=>`, body `{…}` or up to `,`.
        let mut k = j + 1;
        while k < close {
            let pat_start = k;
            while k < close && !toks[k].is("=>") {
                if toks[k].is("(") || toks[k].is("[") || toks[k].is("{") {
                    k = skip_group(toks, k);
                } else {
                    k += 1;
                }
            }
            if k >= close {
                break;
            }
            let pat = &toks[pat_start..k];
            if pat.iter().any(|t| {
                t.kind == TokKind::Ident && PAGESIZE_IDENTS.contains(&t.text.as_str())
            }) {
                names_pagesize = true;
            }
            let is_wild = pat.first().is_some_and(|t| t.is_ident("_"))
                && (pat.len() == 1 || pat.get(1).is_some_and(|t| t.is_ident("if")));
            if is_wild {
                wildcard_line = wildcard_line.or(pat.first().map(|t| t.line));
            }
            // Skip the arm body.
            k += 1; // past `=>`
            if k < close && toks[k].is("{") {
                k = skip_group(toks, k);
            } else {
                while k < close && !toks[k].is(",") {
                    if toks[k].is("(") || toks[k].is("[") || toks[k].is("{") {
                        k = skip_group(toks, k);
                    } else {
                        k += 1;
                    }
                }
            }
            if k < close && toks[k].is(",") {
                k += 1;
            }
        }
        if names_pagesize {
            if let Some(line) = wildcard_line {
                out.push(RuleFinding {
                    rule: "pagesize-match",
                    line,
                    message: "`match` over `PageSize` hides sizes behind a `_` \
                              wildcard arm — list every variant so adding a \
                              page size breaks the build at each dispatch \
                              site instead of silently defaulting"
                        .to_owned(),
                });
            }
        }
        i = close + 1;
    }
}

// ---------------------------------------------------------------------------
// bare-unwrap
// ---------------------------------------------------------------------------

/// Flags `.unwrap()` in non-test library bodies.
fn bare_unwrap(toks: &[Tok], from: usize, to: usize, out: &mut Vec<RuleFinding>) {
    let to = to.min(toks.len());
    for i in from..to {
        let hit = toks[i].is(".")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|t| t.is("("))
            && toks.get(i + 3).is_some_and(|t| t.is(")"));
        if hit {
            let line = toks[i + 1].line;
            out.push(RuleFinding {
                rule: "bare-unwrap",
                line,
                message: "`.unwrap()` in library code — use `.expect(\"why it \
                          cannot fail\")` or propagate the error; there is no \
                          inline suppression for this rule, only the committed \
                          baseline"
                    .to_owned(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::{Path, PathBuf};

    fn findings(src: &str) -> Vec<RuleFinding> {
        let f = ParsedFile::parse(&PathBuf::from("crates/x/src/demo.rs"), FileKind::Lib, src);
        file_rules(&f)
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn raw_shift_on_typed_param_is_flagged() {
        let r = rules_of("fn set_of(vpn: Vpn) -> usize { (vpn.raw() >> 9) as usize }\n");
        assert_eq!(r, ["addr-arith"]);
    }

    #[test]
    fn taint_flows_through_lets() {
        let r = rules_of(
            "fn f(va: VirtAddr) -> u64 { let bits = va.raw(); bits & 0x1FF }\n",
        );
        assert_eq!(r, ["addr-arith"]);
    }

    #[test]
    fn typed_helper_results_are_clean() {
        let r = rules_of(
            "fn set_of(&self, vpn: Vpn) -> usize { (vpn.table_index(0)) & (self.sets - 1) }\n",
        );
        assert!(r.is_empty());
    }

    #[test]
    fn field_named_receivers_taint() {
        let r = rules_of("fn f(&self) -> u64 { self.vpn.raw() << 9 }\n");
        assert_eq!(r, ["addr-arith"]);
    }

    #[test]
    fn non_addr_raw_is_clean() {
        let r = rules_of("fn f(asid: Asid) -> u16 { asid.raw() & 0xFF }\n");
        assert!(r.is_empty());
    }

    #[test]
    fn truncating_cast_on_raw_value() {
        let r = rules_of("fn f(pfn: Pfn) -> u32 { pfn.raw() as u32 }\n");
        assert_eq!(r, ["truncating-cast"]);
        let clean = rules_of("fn f(n: usize) -> u32 { n as u32 }\n");
        assert!(clean.is_empty());
    }

    #[test]
    fn pagesize_wildcard_is_flagged() {
        let dirty = rules_of(
            "fn pages(s: PageSize) -> u64 {\n  match s {\n    PageSize::Size4K => 1,\n    _ => 512,\n  }\n}\n",
        );
        assert_eq!(dirty, ["pagesize-match"]);
        let clean = rules_of(
            "fn pages(s: PageSize) -> u64 {\n  match s {\n    PageSize::Size4K => 1,\n    PageSize::Size2M => 512,\n    PageSize::Size1G => 262144,\n  }\n}\n",
        );
        assert!(clean.is_empty());
        let unrelated = rules_of(
            "fn f(x: Option<u64>) -> u64 { match x { Some(v) => v, _ => 0 } }\n",
        );
        assert!(unrelated.is_empty());
    }

    #[test]
    fn bare_unwrap_in_lib_only() {
        let r = rules_of("fn f(x: Option<u64>) -> u64 { x.unwrap() }\n");
        assert_eq!(r, ["bare-unwrap"]);
        let test_code = rules_of(
            "#[cfg(test)]\nmod tests {\n  fn t() { let x: Option<u64> = None; x.unwrap(); }\n}\n",
        );
        assert!(test_code.is_empty());
        let f = ParsedFile::parse(
            Path::new("crates/x/src/main.rs"),
            FileKind::Bin,
            "fn main() { std::env::args().next().unwrap(); }\n",
        );
        assert!(file_rules(&f).is_empty());
    }

    #[test]
    fn types_crate_is_exempt_from_taint_rules() {
        let f = ParsedFile::parse(
            Path::new("crates/types/src/page.rs"),
            FileKind::Lib,
            "fn table_index(vpn: Vpn, level: u8) -> usize { (vpn.raw() >> (9 * level)) as usize }\n",
        );
        assert!(file_rules(&f).is_empty());
    }

    #[test]
    fn closure_pipes_are_not_masks() {
        let r = rules_of(
            "fn f(gpa: PhysAddr) -> Option<u64> { lookup(gpa).and_then(|h| translate(gpa.raw())) }\n",
        );
        assert!(r.is_empty(), "closure bars flagged as OR: {r:?}");
        // A real binary OR on the raw value still fires.
        let dirty = rules_of("fn g(pa: PhysAddr) -> u64 { pa.raw() | 1 }\n");
        assert_eq!(dirty.len(), 1);
    }

    #[test]
    fn references_do_not_count_as_binary_masks() {
        // `&self.vpn` is a borrow, not a mask: previous token `(` does not
        // end an expression, so the `&` is unary and clean.
        let r = rules_of("fn f(&self) -> u64 { g(&self.vpn) }\n");
        assert!(r.is_empty());
    }
}
