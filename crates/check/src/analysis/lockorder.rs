//! Static lock-acquisition-order extraction.
//!
//! PR 1's dynamic model checker catches lock-order inversions only along
//! interleavings it explores; this pass extracts the *static* acquisition
//! order so the whole workspace is covered without running anything. For
//! each non-test library function it records every `X.lock()` /
//! `X.read()` / `X.write()` call (zero-argument — the `std::sync` guard
//! acquisitions), normalizes the receiver path (`self.` stripped, index
//! expressions collapsed to `[]`), and emits an ordered edge `a → b`
//! whenever `b` is acquired after `a` inside one body. Cycles in the
//! resulting graph — found with the same DFS the dynamic checker uses
//! ([`crate::sched::find_cycle`]) — are potential ABBA deadlocks.
//!
//! Two deliberate exclusions keep the graph honest:
//!
//! * **Same-name pairs are skipped.** Acquiring `shards[i]` then
//!   `shards[j]` in a loop produces two sites with one normalized name;
//!   a self-edge would flag every sharded structure as a deadlock with
//!   itself, which the *dynamic* checker (which sees real object
//!   identities) is the right tool to judge.
//! * **`crates/check` itself is skipped.** Its protocol/scenario modules
//!   deliberately construct adversarial lock orders inside closures so
//!   the model checker has something to catch; feeding the checker's own
//!   test vectors back into the static pass would report its fixtures.

use std::collections::{HashMap, HashSet};

use super::outline::ParsedFile;
use super::symbols::crate_of;
use crate::lint::FileKind;
use crate::sched::find_cycle;

/// One static acquisition site.
#[derive(Debug, Clone)]
pub(crate) struct Acquisition {
    /// Normalized receiver path (e.g. `shards[]`, `inner.stats`).
    pub lock: String,
    /// 1-based source line.
    pub line: u32,
}

/// One ordered acquisition edge with provenance.
#[derive(Debug, Clone)]
pub(crate) struct LockEdge {
    /// Lock held first.
    pub first: String,
    /// Lock acquired second (while `first` may still be held).
    pub second: String,
    /// Qualified function name the pair was seen in.
    pub in_fn: String,
    /// File index of that function.
    pub file: usize,
    /// Line of the second acquisition.
    pub line: u32,
}

/// The extracted lock-order graph.
#[derive(Debug, Default)]
pub(crate) struct LockOrderGraph {
    /// Distinct normalized lock names, in first-seen order.
    pub locks: Vec<String>,
    /// All ordered edges, with provenance.
    pub edges: Vec<LockEdge>,
    /// A cycle through lock names, if the edge set has one.
    pub cycle: Option<Vec<String>>,
}

impl LockOrderGraph {
    /// Extracts the graph from parsed files (library code only, skipping
    /// `crates/check` — see the module docs for why).
    pub fn extract(files: &[ParsedFile]) -> LockOrderGraph {
        let mut graph = LockOrderGraph::default();
        let mut intern: HashMap<String, u64> = HashMap::new();
        let mut id_edges: HashSet<(u64, u64)> = HashSet::new();
        for (fi, file) in files.iter().enumerate() {
            if file.kind != FileKind::Lib || crate_of(&file.path) == "check" {
                continue;
            }
            for f in &file.fns {
                if f.is_test {
                    continue;
                }
                let Some((from, to)) = f.body else { continue };
                let acqs = acquisitions(file, from, to);
                for (a_idx, a) in acqs.iter().enumerate() {
                    for b in &acqs[a_idx + 1..] {
                        if a.lock == b.lock {
                            continue;
                        }
                        for name in [&a.lock, &b.lock] {
                            if !intern.contains_key(name) {
                                let id = intern.len() as u64;
                                intern.insert(name.clone(), id);
                                graph.locks.push(name.clone());
                            }
                        }
                        id_edges.insert((intern[&a.lock], intern[&b.lock]));
                        graph.edges.push(LockEdge {
                            first: a.lock.clone(),
                            second: b.lock.clone(),
                            in_fn: f.qual.clone(),
                            file: fi,
                            line: b.line,
                        });
                    }
                }
            }
        }
        graph.cycle = find_cycle(&id_edges).map(|ids| {
            ids.iter()
                .map(|id| graph.locks[*id as usize].clone())
                .collect()
        });
        graph
    }
}

/// Guard-returning zero-argument acquisition methods.
pub(crate) const ACQUIRE: [&str; 3] = ["lock", "read", "write"];

/// Scans a body token range for acquisition sites, in source order.
fn acquisitions(file: &ParsedFile, from: usize, to: usize) -> Vec<Acquisition> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let hi = to.min(toks.len());
    for i in from..hi {
        // Pattern: `.` <acquire> `(` `)`.
        let ok = toks[i].is(".")
            && toks.get(i + 1).is_some_and(|t| ACQUIRE.contains(&t.text.as_str()))
            && toks.get(i + 2).is_some_and(|t| t.is("("))
            && toks.get(i + 3).is_some_and(|t| t.is(")"));
        if !ok {
            continue;
        }
        if let Some(lock) = receiver_path(file, from, i) {
            out.push(Acquisition {
                lock,
                line: toks[i + 1].line,
            });
        }
    }
    out
}

/// Walks left from the `.` at `dot` to build the normalized receiver
/// path. Returns `None` when no identifier anchors the receiver (e.g. a
/// parenthesized temporary — too dynamic to name statically). Shared with
/// the lockset and atomic-ordering rules, which name locks and atomics
/// the same way.
pub(crate) fn receiver_path(file: &ParsedFile, floor: usize, dot: usize) -> Option<String> {
    let toks = &file.toks;
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot;
    while i > floor {
        let prev = &toks[i - 1];
        match prev.text.as_str() {
            "]" => {
                // Index expression: scan back to its `[`, normalize to `[]`.
                let mut depth = 0i64;
                let mut j = i - 1;
                loop {
                    match toks[j].text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == floor {
                        break;
                    }
                    j -= 1;
                }
                parts.push("[]".to_owned());
                i = j;
            }
            "." | "::" => {
                parts.push(prev.text.clone());
                i -= 1;
            }
            _ if prev.kind == super::lexer::TokKind::Ident => {
                parts.push(prev.text.clone());
                i -= 1;
            }
            _ => break,
        }
    }
    parts.reverse();
    // Must start with an identifier; drop a leading `self.`.
    if parts.first().map(String::as_str) == Some("self") {
        parts.drain(..(2.min(parts.len())));
    }
    if parts.is_empty() || parts[0] == "." || parts[0] == "::" {
        return None;
    }
    let joined: String = parts.concat();
    let trimmed = joined.trim_matches('.').to_owned();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&PathBuf::from("crates/x/src/demo.rs"), FileKind::Lib, src)
    }

    #[test]
    fn extracts_ordered_pairs_and_normalizes() {
        let f = parse(
            "fn f(&self) {\n  let a = self.alpha.lock();\n  let b = self.beta[i].lock();\n}\n",
        );
        let g = LockOrderGraph::extract(&[f]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].first, "alpha");
        assert_eq!(g.edges[0].second, "beta[]");
        assert!(g.cycle.is_none());
    }

    #[test]
    fn same_name_pairs_are_skipped() {
        let f = parse(
            "fn sweep(&self) {\n  for s in &self.shards { s.lock().flush(); }\n  \
             for s in &self.shards { s.lock().flush(); }\n}\n",
        );
        let g = LockOrderGraph::extract(&[f]);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn abba_cycle_is_found() {
        let f = parse(
            "fn ab(&self) { let _a = self.a.lock(); let _b = self.b.lock(); }\n\
             fn ba(&self) { let _b = self.b.lock(); let _a = self.a.lock(); }\n",
        );
        let g = LockOrderGraph::extract(&[f]);
        let cycle = g.cycle.as_deref();
        assert!(cycle.is_some_and(|c| c.contains(&"a".to_owned()) && c.contains(&"b".to_owned())));
    }

    #[test]
    fn rwlock_read_write_count() {
        let f = parse(
            "fn f(&self) { let r = self.table.read(); let w = self.stats.write(); }\n",
        );
        let g = LockOrderGraph::extract(&[f]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].first, "table");
    }
}
