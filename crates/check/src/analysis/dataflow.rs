//! Interprocedural dataflow scaffolding plus the `hot-path` rule.
//!
//! Three reusable pieces for the concurrency rules ([`super::lockset`],
//! [`super::atomics`]):
//!
//! * **SCC condensation** ([`condense`]) — iterative Tarjan over the
//!   call graph, yielding components in bottom-up order (callees before
//!   callers for caller→callee edges). Summary propagation runs one
//!   direction over the component DAG with a fixpoint loop *inside*
//!   each component, which terminates because every transfer function
//!   is monotone over a finite lattice.
//! * **Lock-set lattice** ([`LockSet`], [`LockNames`]) — the Eraser
//!   lattice: sets of interned lock names under intersection, packed
//!   into a 64-bit bitset. `FULL` (all ones) is the lattice top used to
//!   seed intersections.
//! * **`hot-path`** ([`hot_path`]) — walks the call graph *down* from
//!   the batched-translation entry points and the smp replay inner
//!   loop, flagging heap allocation, `clone()`, and formatting
//!   machinery in anything reachable. Resolution is name-based and
//!   over-approximate, so traversal is cut at constructor-shaped sinks
//!   (`new`, `default`, …) — every workspace `new` would otherwise be
//!   "hot" via `Vec::new` false edges — trading false negatives inside
//!   constructors for a signal that stays actionable.

use std::collections::HashMap;

use super::callgraph::CallGraph;
use super::lexer::{Tok, TokKind};
use super::outline::ParsedFile;
use super::rules::RuleFinding;
use super::symbols::crate_of;
use crate::lint::FileKind;

// ---------------------------------------------------------------------
// SCC condensation
// ---------------------------------------------------------------------

/// Strongly-connected-component condensation of a directed graph.
#[derive(Debug)]
pub(crate) struct Condensation {
    /// Node index → component id.
    pub comp_of: Vec<usize>,
    /// Component id → member node indices. Component ids are assigned in
    /// Tarjan emission order, which is **bottom-up**: for an edge
    /// `u → v` in different components, `comp_of[v] < comp_of[u]`.
    pub comps: Vec<Vec<usize>>,
}

/// Computes the SCC condensation of the graph with `n` nodes and
/// successor lists `succ` (iterative Tarjan; no recursion so fixture
/// pathologies cannot blow the stack).
pub(crate) fn condense(n: usize, succ: &[Vec<usize>]) -> Condensation {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp_of = vec![UNSEEN; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSEEN {
            continue;
        }
        index[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start);
        on_stack[start] = true;
        call.push((start, 0));
        while let Some((v, pos)) = call.last_mut() {
            let v = *v;
            if *pos < succ[v].len() {
                let w = succ[v][*pos];
                *pos += 1;
                if index[w] == UNSEEN {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some((p, _)) = call.last() {
                    low[*p] = low[*p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp_of[w] = comps.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    Condensation { comp_of, comps }
}

/// Successor adjacency lists from the call graph's edge set,
/// index-sorted for deterministic traversal.
pub(crate) fn successors(graph: &CallGraph) -> Vec<Vec<usize>> {
    let mut succ = vec![Vec::new(); graph.nodes.len()];
    for &(a, b) in &graph.edges {
        succ[a].push(b);
    }
    for s in &mut succ {
        s.sort_unstable();
    }
    succ
}

// ---------------------------------------------------------------------
// Lock-set lattice
// ---------------------------------------------------------------------

/// A set of interned locks as a 64-bit bitset. `Default` is the empty
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct LockSet(pub u64);

impl LockSet {
    /// The empty set (lattice bottom).
    pub const EMPTY: LockSet = LockSet(0);
    /// All locks (lattice top — seed value for intersections).
    pub const FULL: LockSet = LockSet(u64::MAX);

    /// Set union.
    pub fn union(self, o: LockSet) -> LockSet {
        LockSet(self.0 | o.0)
    }

    /// Set intersection.
    pub fn inter(self, o: LockSet) -> LockSet {
        LockSet(self.0 & o.0)
    }

    /// This set plus one lock bit.
    pub fn with(self, bit: u32) -> LockSet {
        LockSet(self.0 | (1u64 << bit))
    }

    /// `true` when no lock is held.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Lock-name interner, capped at 64 distinct locks (the bitset width).
/// Locks past the cap are untracked: [`LockNames::bit`] returns `None`
/// and scanners treat the acquisition as a no-op. That direction can
/// only *add* findings on pathological lock populations; it never
/// silently protects a racy write.
#[derive(Debug, Default)]
pub(crate) struct LockNames {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl LockNames {
    /// Interns `name`, returning its bit (or `None` past the cap).
    pub fn bit(&mut self, name: &str) -> Option<u32> {
        if let Some(&b) = self.by_name.get(name) {
            return Some(b);
        }
        if self.names.len() >= 64 {
            return None;
        }
        let b = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), b);
        Some(b)
    }

    /// Renders a set as `{a, b}` for messages (deterministic: interning
    /// order is source order).
    pub fn render(&self, set: LockSet) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for (i, n) in self.names.iter().enumerate() {
            if set.0 & (1u64 << i) != 0 {
                parts.push(n);
            }
        }
        if parts.is_empty() {
            "{}".to_owned()
        } else {
            format!("{{{}}}", parts.join(", "))
        }
    }
}

// ---------------------------------------------------------------------
// hot-path rule
// ---------------------------------------------------------------------

/// Root functions by simple name: the batched translation entry points
/// plus the streaming pipeline's per-block stage loops (reader, decoder,
/// in-order consumer, work-stealing distributor, and the synchronous
/// single-thread shape) — each runs once per trace block for the whole
/// corpus, so steady-state allocation there is a leak multiplied by
/// corpus length.
const HOT_ROOT_NAMES: [&str; 7] = [
    "translate_batch",
    "lookup_batch",
    "feed_blocks",
    "decode_blocks",
    "consume_in_order",
    "distribute_chunks",
    "stream_sync",
];
/// Root functions by qualified name: the smp replay inner loops — the
/// per-core cadence loop and the work-stealing steal/execute loops of
/// both the finite-trace replay and the streaming pipeline.
const HOT_ROOT_QUALS: [&str; 4] = [
    "SmpCore::run",
    "SmpCore::step",
    "WsWorker::run",
    "StreamWorker::run",
];

/// Callee names the downward walk does not enter. Name-based resolution
/// links `Vec::new(…)`/`X::from(…)`/`….clone()` call tokens to every
/// workspace fn with that name; constructors and conversion fns are
/// exactly where allocation is *expected*, so entering them would flag
/// the whole workspace. Their call sites in hot code are still flagged
/// by the token patterns below where they matter (`Box::new`, `clone`).
const COLD_SINKS: [&str; 7] = ["new", "default", "from", "clone", "fmt", "drop", "with_capacity"];

/// One flagged token pattern: what it looks like and what to say.
struct HotSite {
    line: u32,
    what: &'static str,
    category: &'static str,
}

/// Runs the hot-path reachability lint. Returns findings plus the
/// number of hot-reachable functions (for `--stats`).
pub(crate) fn hot_path(
    files: &[ParsedFile],
    graph: &CallGraph,
) -> (Vec<(usize, RuleFinding)>, usize) {
    let succ = successors(graph);
    let n = graph.nodes.len();
    // Which nodes participate at all: non-test library fns outside the
    // analyzer's own crate.
    let eligible: Vec<bool> = graph
        .nodes
        .iter()
        .map(|node| {
            let file = &files[node.file];
            let f = &file.fns[node.fn_idx];
            file.kind == FileKind::Lib && !f.is_test && crate_of(&file.path) != "check"
        })
        .collect();
    // BFS down from the roots, recording one predecessor per node so the
    // finding message can show a concrete call path.
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut reached = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if !eligible[ni] {
            continue;
        }
        let f = &files[node.file].fns[node.fn_idx];
        if HOT_ROOT_NAMES.contains(&f.name.as_str()) || HOT_ROOT_QUALS.contains(&f.qual.as_str())
        {
            reached[ni] = true;
            queue.push_back(ni);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &w in &succ[v] {
            if reached[w] || !eligible[w] {
                continue;
            }
            let node = &graph.nodes[w];
            let f = &files[node.file].fns[node.fn_idx];
            if COLD_SINKS.contains(&f.name.as_str()) || (f.in_trait_impl && f.name == "fmt") {
                continue;
            }
            // `#[cold]` is the compiler's own unlikely-path hint; trust
            // it — error constructors and fault paths live there.
            if f.is_cold {
                continue;
            }
            reached[w] = true;
            pred[w] = Some(v);
            queue.push_back(w);
        }
    }
    let reachable = reached.iter().filter(|r| **r).count();

    let mut out = Vec::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if !reached[ni] {
            continue;
        }
        let file = &files[node.file];
        let f = &file.fns[node.fn_idx];
        let Some((from, to)) = f.body else { continue };
        let path = call_path(files, graph, &pred, ni);
        for site in scan_hot_sites(&file.toks, from, to) {
            out.push((
                node.file,
                RuleFinding {
                    rule: "hot-path",
                    line: site.line,
                    message: format!(
                        "{} `{}` in `{}`, which is reachable from a hot \
                         root ({}) — the batched translation and replay \
                         loops must stay free of per-event allocation and \
                         formatting; hoist the buffer to the caller, \
                         pre-size it at construction, or move this work \
                         off the hot path",
                        site.category, site.what, f.qual, path
                    ),
                },
            ));
        }
    }
    (out, reachable)
}

/// Renders the BFS predecessor chain `root -> … -> node` (capped; the
/// middle elides when long).
fn call_path(
    files: &[ParsedFile],
    graph: &CallGraph,
    pred: &[Option<usize>],
    mut ni: usize,
) -> String {
    let mut names = Vec::new();
    loop {
        let node = &graph.nodes[ni];
        names.push(files[node.file].fns[node.fn_idx].qual.clone());
        match pred[ni] {
            Some(p) => ni = p,
            None => break,
        }
    }
    names.reverse();
    if names.len() > 5 {
        let tail = names.split_off(names.len() - 2);
        names.truncate(2);
        names.push("…".to_owned());
        names.extend(tail);
    }
    names.join(" -> ")
}

/// Paired `Type::method(` patterns that allocate.
const PATH_ALLOC: [(&str, &str); 4] = [
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Vec", "new"),
];

/// `.method(` calls that allocate or format.
const METHOD_SITES: [(&str, &str); 4] = [
    ("clone", "clone() call"),
    ("to_string", "formatting"),
    ("to_owned", "heap allocation"),
    ("to_vec", "heap allocation"),
];

/// Formatting/allocating macros.
const MACRO_SITES: [&str; 5] = ["format", "vec", "println", "eprintln", "write"];

/// Scans one body token range for hot-path violations.
fn scan_hot_sites(toks: &[Tok], from: usize, to: usize) -> Vec<HotSite> {
    let mut out = Vec::new();
    let hi = to.min(toks.len());
    for i in from..hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |j: usize, p: &str| toks.get(i + j).is_some_and(|t| t.is(p));
        // `name!(…)` macros.
        if next_is(1, "!") && next_is(2, "(") && MACRO_SITES.contains(&t.text.as_str()) {
            let category = if t.text == "vec" {
                "heap allocation"
            } else {
                "formatting"
            };
            out.push(HotSite {
                line: t.line,
                what: match t.text.as_str() {
                    "vec" => "vec![…]",
                    "format" => "format!",
                    "println" => "println!",
                    "eprintln" => "eprintln!",
                    _ => "write!",
                },
                category,
            });
            continue;
        }
        // `Type::method(` allocations.
        if next_is(1, "::") && next_is(3, "(") {
            if let Some(m) = toks.get(i + 2) {
                if let Some((ty, me)) = PATH_ALLOC
                    .iter()
                    .find(|(ty, me)| *ty == t.text && *me == m.text)
                {
                    out.push(HotSite {
                        line: t.line,
                        what: match (*ty, *me) {
                            ("Box", _) => "Box::new",
                            ("String", "new") => "String::new",
                            ("String", _) => "String::from",
                            _ => "Vec::new",
                        },
                        category: "heap allocation",
                    });
                    continue;
                }
            }
        }
        // `.method()` clones/formatters (preceded by `.`).
        if i > 0 && toks[i - 1].is(".") && next_is(1, "(") {
            if let Some((_, cat)) = METHOD_SITES.iter().find(|(m, _)| *m == t.text) {
                out.push(HotSite {
                    line: t.line,
                    what: match t.text.as_str() {
                        "clone" => ".clone()",
                        "to_string" => ".to_string()",
                        "to_owned" => ".to_owned()",
                        _ => ".to_vec()",
                    },
                    category: cat,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_finds_components_bottom_up() {
        // 0 -> 1 <-> 2, 1 -> 3. Components: {0}, {1,2}, {3}.
        let succ = vec![vec![1], vec![2, 3], vec![1], vec![]];
        let c = condense(4, &succ);
        assert_eq!(c.comps.len(), 3);
        assert_eq!(c.comp_of[1], c.comp_of[2]);
        assert_ne!(c.comp_of[0], c.comp_of[1]);
        // Bottom-up: callee components numbered before callers.
        assert!(c.comp_of[3] < c.comp_of[1]);
        assert!(c.comp_of[1] < c.comp_of[0]);
    }

    #[test]
    fn lockset_lattice_basics() {
        let mut names = LockNames::default();
        let a = names.bit("alpha").unwrap_or(63);
        let b = names.bit("beta").unwrap_or(63);
        assert_eq!(names.bit("alpha"), Some(a));
        let sa = LockSet::EMPTY.with(a);
        let sb = LockSet::EMPTY.with(b);
        assert!(sa.inter(sb).is_empty());
        assert_eq!(sa.union(sb).inter(sa), sa);
        assert_eq!(names.render(sa.union(sb)), "{alpha, beta}");
        assert_eq!(names.render(LockSet::EMPTY), "{}");
        assert_eq!(LockSet::FULL.inter(sa), sa);
    }
}
