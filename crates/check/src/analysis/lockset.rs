//! Eraser-style lockset race detection (`lockset-race`).
//!
//! The classic Eraser discipline: every shared plain field must be
//! protected by a *consistent, non-empty* set of locks at every write.
//! This pass computes it statically, interprocedurally:
//!
//! 1. **Shared-struct model** ([`SharedModel`]) — a struct is shared
//!    when it owns synchronization (a `Mutex`/`RwLock`/`Atomic*`
//!    field — a type designed to be handed to `std::thread::spawn` or
//!    sharded like `SharedCache`), is wrapped in `Arc<…>` anywhere in
//!    the workspace, or is named by a `static` item's type. Its fields
//!    split into *synchronized* (lock/atomic-typed) and *plain*.
//! 2. **Per-body lockset scan** — `let`-bound `.lock()`/`.read()`/
//!    `.write()` guards are held to the end of the enclosing block;
//!    un-bound temporaries to the end of the statement. Helper calls
//!    that *return* a guard (return type mentions `Guard`) acquire
//!    their locks at the call site — those summaries propagate
//!    bottom-up over call-graph SCCs first.
//! 3. **Entry locksets** — propagated top-down over the SCC
//!    condensation: a private function's entry lockset is the
//!    intersection over its call sites of (caller entry ∪ locks held
//!    at the site). `pub` functions and functions with no observed
//!    caller start at the empty set (they are callable from anywhere).
//! 4. **Race check** — for each plain field of a shared struct, every
//!    write site inside a `&self` method (the concurrently-callable
//!    surface; `&mut self` implies exclusive access) gets its
//!    effective lockset (entry ∪ local). An empty effective set, or a
//!    non-empty family whose intersection is empty (the Eraser
//!    verdict), is a finding.
//!
//! Soundness caveats are documented in DESIGN.md §8: name-based call
//! resolution, no alias analysis, `drop(guard)` ignored (guards are
//! assumed held to scope end — which under-reports races and
//! over-reports lock-order, the conservative direction for each rule).

use std::collections::HashMap;

use super::callgraph::CallGraph;
use super::dataflow::{condense, successors, Condensation, LockNames, LockSet};
use super::lexer::{skip_group, TokKind};
use super::lockorder::{receiver_path, ACQUIRE};
use super::outline::{DeclKind, ParsedFile, SelfKind};
use super::rules::RuleFinding;
use super::symbols::crate_of;
use crate::lint::FileKind;

/// One struct the analysis considers cross-thread shared.
#[derive(Debug)]
pub(crate) struct SharedStruct {
    /// Struct name.
    pub name: String,
    /// Plain (unsynchronized) field names.
    pub plain: Vec<String>,
    /// Atomic field names (consumed by the atomic-ordering rule).
    pub atomics: Vec<String>,
    /// Why the struct is considered shared (for messages).
    pub why: &'static str,
}

/// The workspace shared-state model.
#[derive(Debug, Default)]
pub(crate) struct SharedModel {
    /// All shared structs.
    pub structs: Vec<SharedStruct>,
    /// Struct name → index into `structs`.
    pub by_name: HashMap<String, usize>,
    /// Names of `static` items with atomic types.
    pub atomic_statics: Vec<String>,
}

/// `true` when a field type provides its own synchronization.
fn is_sync_ty(ty: &str) -> bool {
    ty.contains("Mutex<") || ty.contains("RwLock<") || ty.contains("Atomic")
}

/// `true` when `hay` contains `needle` on identifier boundaries.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

impl SharedModel {
    /// Builds the model over all parsed files (library code outside
    /// `crates/check`; the analyzer's own sync facade and scheduler
    /// deliberately hold adversarial patterns for the model checker).
    pub fn build(files: &[ParsedFile]) -> SharedModel {
        let mut model = SharedModel::default();
        // Names wrapped in `Arc<…>` / `Arc::new(…)` anywhere.
        let mut arced: Vec<String> = Vec::new();
        for file in files {
            let toks = &file.toks;
            for (i, t) in toks.iter().enumerate() {
                if !t.is_ident("Arc") {
                    continue;
                }
                let name = if toks.get(i + 1).is_some_and(|t| t.is("<")) {
                    toks.get(i + 2)
                } else if toks.get(i + 1).is_some_and(|t| t.is("::"))
                    && toks.get(i + 2).is_some_and(|t| t.is_ident("new"))
                    && toks.get(i + 3).is_some_and(|t| t.is("("))
                {
                    toks.get(i + 4)
                } else {
                    None
                };
                if let Some(n) = name.filter(|t| t.kind == TokKind::Ident) {
                    arced.push(n.text.clone());
                }
            }
        }
        // Types named by statics (any file — a test static still shares).
        let static_tys: Vec<String> = files
            .iter()
            .flat_map(|f| f.items.iter())
            .filter(|it| it.kind == DeclKind::Static)
            .map(|it| it.ty.clone())
            .collect();
        for file in files {
            if file.kind != FileKind::Lib || crate_of(&file.path) == "check" {
                continue;
            }
            for s in &file.structs {
                if s.is_test {
                    continue;
                }
                let owns_sync = s.fields.iter().any(|(_, ty)| is_sync_ty(ty));
                let why = if owns_sync {
                    "it owns Mutex/RwLock/atomic fields"
                } else if arced.iter().any(|a| a == &s.name) {
                    "it is wrapped in Arc"
                } else if static_tys.iter().any(|ty| contains_word(ty, &s.name)) {
                    "a static item has this type"
                } else {
                    continue;
                };
                let plain = s
                    .fields
                    .iter()
                    .filter(|(_, ty)| !is_sync_ty(ty))
                    .map(|(n, _)| n.clone())
                    .collect();
                let atomics = s
                    .fields
                    .iter()
                    .filter(|(_, ty)| ty.contains("Atomic"))
                    .map(|(n, _)| n.clone())
                    .collect();
                if !model.by_name.contains_key(&s.name) {
                    model.by_name.insert(s.name.clone(), model.structs.len());
                    model.structs.push(SharedStruct {
                        name: s.name.clone(),
                        plain,
                        atomics,
                        why,
                    });
                }
            }
            for it in &file.items {
                if it.kind == DeclKind::Static && it.ty.contains("Atomic") && !it.is_test {
                    model.atomic_statics.push(it.name.clone());
                }
            }
        }
        model
    }
}

/// A write to `self.<field>` (assignment, compound assignment, or a
/// mutating container call like `.push(…)`).
#[derive(Debug)]
struct WriteEvent {
    field: String,
    line: u32,
    locks: LockSet,
}

/// One observed call site with the locks held across it.
#[derive(Debug)]
struct CallEvent {
    callee: String,
    locks: LockSet,
}

/// Per-function scan results.
#[derive(Debug, Default)]
struct BodyFacts {
    /// Union of all locks acquired anywhere in the body.
    acquired: LockSet,
    writes: Vec<WriteEvent>,
    calls: Vec<CallEvent>,
}

/// Compound/plain assignment operators (the lexer merges `==`/`=>`
/// into distinct tokens, so a bare `=` really assigns).
const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Container methods treated as writes to their receiver field.
const MUTATORS: [&str; 6] = ["push", "insert", "remove", "clear", "extend", "pop"];

/// Scans one body, tracking block-scoped locksets. `guard_of` maps
/// callee names to the locks a guard-returning helper hands back.
fn scan_body(
    file: &ParsedFile,
    from: usize,
    to: usize,
    names: &mut LockNames,
    guard_of: &HashMap<String, LockSet>,
) -> BodyFacts {
    let toks = &file.toks;
    let hi = to.min(toks.len());
    let mut facts = BodyFacts::default();
    let mut frames: Vec<LockSet> = vec![LockSet::EMPTY];
    let mut stmt = LockSet::EMPTY;
    let mut stmt_start = from;
    let mut i = from;
    while i < hi {
        let t = &toks[i];
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                frames.push(LockSet::EMPTY);
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            "}" if t.kind == TokKind::Punct => {
                if frames.len() > 1 {
                    frames.pop();
                }
                stmt = LockSet::EMPTY;
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            ";" if t.kind == TokKind::Punct => {
                stmt = LockSet::EMPTY;
                stmt_start = i + 1;
                i += 1;
                continue;
            }
            _ => {}
        }
        let held = frames.iter().fold(stmt, |a, f| a.union(*f));
        let stmt_is_let = toks.get(stmt_start).is_some_and(|t| t.is_ident("let"));
        // Guard acquisition: `.lock()` / `.read()` / `.write()`.
        if t.is(".")
            && toks
                .get(i + 1)
                .is_some_and(|t| ACQUIRE.contains(&t.text.as_str()))
            && toks.get(i + 2).is_some_and(|t| t.is("("))
            && toks.get(i + 3).is_some_and(|t| t.is(")"))
        {
            if let Some(lock) = receiver_path(file, from, i) {
                if let Some(bit) = names.bit(&lock) {
                    facts.acquired = facts.acquired.with(bit);
                    if stmt_is_let {
                        if let Some(top) = frames.last_mut() {
                            *top = top.with(bit);
                        }
                    } else {
                        stmt = stmt.with(bit);
                    }
                }
            }
            i += 4;
            continue;
        }
        // Call site: `name(` — records the callee and, for
        // guard-returning helpers, acquires their locks here.
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is("(")) {
            facts.calls.push(CallEvent {
                callee: t.text.clone(),
                locks: held,
            });
            if let Some(&fwd) = guard_of.get(&t.text) {
                if !fwd.is_empty() {
                    facts.acquired = facts.acquired.union(fwd);
                    if stmt_is_let {
                        if let Some(top) = frames.last_mut() {
                            *top = top.union(fwd);
                        }
                    } else {
                        stmt = stmt.union(fwd);
                    }
                }
            }
            i += 1;
            continue;
        }
        // Write site: `self.field =`, `self.field +=`, `self.field[…] =`,
        // or `self.field.push(…)`-style container mutation.
        if t.is_ident("self")
            && toks.get(i + 1).is_some_and(|t| t.is("."))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let field = &toks[i + 2];
            let mut j = i + 3;
            if toks.get(j).is_some_and(|t| t.is("[")) {
                j = skip_group(toks, j);
            }
            let is_assign = toks
                .get(j)
                .is_some_and(|t| t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()));
            let is_mutator = toks.get(j).is_some_and(|t| t.is("."))
                && toks
                    .get(j + 1)
                    .is_some_and(|t| MUTATORS.contains(&t.text.as_str()))
                && toks.get(j + 2).is_some_and(|t| t.is("("));
            if is_assign || is_mutator {
                facts.writes.push(WriteEvent {
                    field: field.text.clone(),
                    line: field.line,
                    locks: held,
                });
            }
        }
        i += 1;
    }
    facts
}

/// The result of the lockset analysis: findings plus stats inputs.
pub(crate) struct LocksetResult {
    /// `(file index, finding)` pairs.
    pub findings: Vec<(usize, RuleFinding)>,
    /// Shared structs modeled (for `--stats`).
    pub shared_structs: usize,
    /// Call-graph SCC count (for `--stats`).
    pub sccs: usize,
}

/// Runs the full interprocedural lockset analysis over a prebuilt
/// shared-state model (built once, shared with the atomic-ordering
/// rule).
pub(crate) fn lockset_race(
    files: &[ParsedFile],
    graph: &CallGraph,
    model: &SharedModel,
) -> LocksetResult {
    let mut names = LockNames::default();
    let n = graph.nodes.len();
    // Eligibility: non-test library fns with bodies, outside crates/check.
    let eligible: Vec<bool> = graph
        .nodes
        .iter()
        .map(|node| {
            let file = &files[node.file];
            let f = &file.fns[node.fn_idx];
            file.kind == FileKind::Lib
                && !f.is_test
                && f.body.is_some()
                && crate_of(&file.path) != "check"
        })
        .collect();

    let succ = successors(graph);
    let cond = condense(n, &succ);

    // Pass A: local facts with no helper summaries.
    let empty_guards = HashMap::new();
    let mut facts: Vec<Option<BodyFacts>> = (0..n)
        .map(|ni| {
            if !eligible[ni] {
                return None;
            }
            let node = &graph.nodes[ni];
            let file = &files[node.file];
            let f = &file.fns[node.fn_idx];
            let (from, to) = f.body?;
            Some(scan_body(file, from, to, &mut names, &empty_guards))
        })
        .collect();

    // Bottom-up guard summaries over SCCs: a fn whose return type
    // mentions `Guard` hands its acquisitions (and those of the
    // guard-returning helpers it calls) to `let`-binding callers.
    let returns_guard: Vec<bool> = graph
        .nodes
        .iter()
        .map(|node| files[node.file].fns[node.fn_idx].ret.contains("Guard"))
        .collect();
    let mut guard_sets = vec![LockSet::EMPTY; n];
    for comp in &cond.comps {
        // Inner fixpoint: monotone (sets only grow) over a finite
        // lattice, so this terminates.
        loop {
            let mut changed = false;
            for &v in comp {
                if !returns_guard[v] || !eligible[v] {
                    continue;
                }
                let mut set = facts[v].as_ref().map(|f| f.acquired).unwrap_or(LockSet::EMPTY);
                for &w in &succ[v] {
                    set = set.union(guard_sets[w]);
                }
                if set != guard_sets[v] {
                    guard_sets[v] = set;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    let mut guard_of: HashMap<String, LockSet> = HashMap::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        if guard_sets[ni].is_empty() {
            continue;
        }
        let name = &files[node.file].fns[node.fn_idx].name;
        let entry = guard_of.entry(name.clone()).or_insert(LockSet::EMPTY);
        *entry = entry.union(guard_sets[ni]);
    }

    // Pass B: final facts with guard-returning helpers resolved.
    if !guard_of.is_empty() {
        for (ni, slot) in facts.iter_mut().enumerate() {
            if slot.is_none() {
                continue;
            }
            let node = &graph.nodes[ni];
            let file = &files[node.file];
            let f = &file.fns[node.fn_idx];
            if let Some((from, to)) = f.body {
                *slot = Some(scan_body(file, from, to, &mut names, &guard_of));
            }
        }
    }

    // Observed call sites: callee name → (caller node, locks held).
    let mut fn_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ni, node) in graph.nodes.iter().enumerate() {
        fn_by_name
            .entry(files[node.file].fns[node.fn_idx].name.as_str())
            .or_default()
            .push(ni);
    }
    let mut sites: Vec<Vec<(usize, LockSet)>> = vec![Vec::new(); n];
    for (ni, fact) in facts.iter().enumerate() {
        let Some(fact) = fact else { continue };
        for call in &fact.calls {
            if let Some(callees) = fn_by_name.get(call.callee.as_str()) {
                for &c in callees {
                    if c != ni {
                        sites[c].push((ni, call.locks));
                    }
                }
            }
        }
    }

    // Top-down entry locksets over the condensation (callers first =
    // reverse Tarjan order), with an inner fixpoint per component.
    let entry = entry_locksets(files, graph, &cond, &sites, &eligible);

    // Race check over shared plain fields.
    let mut findings = Vec::new();
    #[derive(Debug)]
    struct Site {
        node: usize,
        line: u32,
        effective: LockSet,
    }
    let mut by_field: HashMap<(usize, String), Vec<Site>> = HashMap::new();
    for (ni, fact) in facts.iter().enumerate() {
        let Some(fact) = fact else { continue };
        let node = &graph.nodes[ni];
        let f = &files[node.file].fns[node.fn_idx];
        if f.self_kind != SelfKind::Ref {
            continue; // `&mut self`/owned receivers are exclusive access
        }
        let Some(ty) = f.qual.rsplit("::").nth(1) else { continue };
        let Some(&si) = model.by_name.get(ty) else { continue };
        for w in &fact.writes {
            if !model.structs[si].plain.iter().any(|p| p == &w.field) {
                continue;
            }
            by_field.entry((si, w.field.clone())).or_default().push(Site {
                node: ni,
                line: w.line,
                effective: entry[ni].union(w.locks),
            });
        }
    }
    let mut keys: Vec<(usize, String)> = by_field.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let sites = &by_field[&key];
        let s = &model.structs[key.0];
        let field = &key.1;
        let empties: Vec<&Site> = sites.iter().filter(|s| s.effective.is_empty()).collect();
        if !empties.is_empty() {
            for site in empties {
                let node = &graph.nodes[site.node];
                findings.push((
                    node.file,
                    RuleFinding {
                        rule: "lockset-race",
                        line: site.line,
                        message: format!(
                            "plain field `{field}` of shared struct `{}` ({}) \
                             is written in `&self` method `{}` with no lock \
                             held — a data race once the value crosses \
                             threads; guard the write with one of the \
                             struct's locks or make the field atomic",
                            s.name,
                            s.why,
                            files[node.file].fns[node.fn_idx].qual
                        ),
                    },
                ));
            }
            continue;
        }
        let consensus = sites
            .iter()
            .fold(LockSet::FULL, |a, s| a.inter(s.effective));
        if sites.len() > 1 && consensus.is_empty() {
            for site in sites {
                let node = &graph.nodes[site.node];
                findings.push((
                    node.file,
                    RuleFinding {
                        rule: "lockset-race",
                        line: site.line,
                        message: format!(
                            "plain field `{field}` of shared struct `{}` ({}) \
                             is written under inconsistent locksets — this \
                             site in `{}` holds {} but the intersection over \
                             all {} write sites is empty (Eraser lockset); \
                             pick one lock that protects `{field}` and hold \
                             it at every write",
                            s.name,
                            s.why,
                            files[node.file].fns[node.fn_idx].qual,
                            names.render(site.effective),
                            sites.len()
                        ),
                    },
                ));
            }
        }
    }

    LocksetResult {
        findings,
        shared_structs: model.structs.len(),
        sccs: cond.comps.len(),
    }
}

/// Entry-lockset propagation (step 3 of the module docs). Shared with
/// the `blocking-in-lock` rule, which feeds it its own call sites.
pub(crate) fn entry_locksets(
    files: &[ParsedFile],
    graph: &CallGraph,
    cond: &Condensation,
    sites: &[Vec<(usize, LockSet)>],
    eligible: &[bool],
) -> Vec<LockSet> {
    use super::outline::Vis;
    let n = graph.nodes.len();
    let mut entry = vec![LockSet::EMPTY; n];
    // Callers-first: Tarjan numbers callee components lower, so iterate
    // component ids downward. Seeding each component at FULL makes the
    // inner fixpoint monotone-decreasing (the transfer is an
    // intersection), so it terminates.
    for comp in cond.comps.iter().rev() {
        for &v in comp {
            if eligible[v] {
                entry[v] = LockSet::FULL;
            }
        }
        loop {
            let mut changed = false;
            for &v in comp {
                if !eligible[v] {
                    continue;
                }
                let node = &graph.nodes[v];
                let f = &files[node.file].fns[node.fn_idx];
                // Externally callable or never observed called: no locks
                // can be assumed at entry.
                let new = if f.vis == Vis::Pub || f.in_trait_impl || sites[v].is_empty() {
                    LockSet::EMPTY
                } else {
                    sites[v]
                        .iter()
                        .fold(LockSet::FULL, |acc, &(caller, held)| {
                            // Tarjan numbers callee components lower, so a
                            // cross-component caller was already finalized.
                            debug_assert!(cond.comp_of[caller] >= cond.comp_of[v]);
                            acc.inter(entry[caller].union(held))
                        })
                };
                if new != entry[v] {
                    entry[v] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&PathBuf::from("crates/x/src/demo.rs"), FileKind::Lib, src)
    }

    fn run(src: &str) -> Vec<String> {
        let files = [parse(src)];
        let graph = CallGraph::build(&files);
        let model = SharedModel::build(&files);
        lockset_race(&files, &graph, &model)
            .findings
            .into_iter()
            .map(|(_, f)| f.message)
            .collect()
    }

    #[test]
    fn consistent_lock_is_clean() {
        let msgs = run(
            "pub struct S { m: Mutex<u64>, hits: u64 }\n\
             impl S {\n\
               fn a(&self) { let _g = self.m.lock(); self.hits += 1; }\n\
               fn b(&self) { let _g = self.m.lock(); self.hits += 1; }\n\
             }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn unlocked_write_is_flagged() {
        let msgs = run(
            "pub struct S { m: Mutex<u64>, hits: u64 }\n\
             impl S { fn a(&self) { self.hits += 1; } }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("no lock held"));
    }

    #[test]
    fn inconsistent_locksets_are_flagged() {
        let msgs = run(
            "pub struct S { m: Mutex<u64>, n: Mutex<u64>, hits: u64 }\n\
             impl S {\n\
               fn a(&self) { let _g = self.m.lock(); self.hits += 1; }\n\
               fn b(&self) { let _g = self.n.lock(); self.hits += 1; }\n\
             }\n",
        );
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs.iter().all(|m| m.contains("inconsistent locksets")));
    }

    #[test]
    fn entry_locksets_flow_into_private_helpers() {
        let msgs = run(
            "pub struct S { m: Mutex<u64>, hits: u64 }\n\
             impl S {\n\
               fn helper(&self) { self.hits += 1; }\n\
               fn a(&self) { let _g = self.m.lock(); self.helper(); }\n\
               fn b(&self) { let _g = self.m.lock(); self.helper(); }\n\
             }\n",
        );
        assert!(msgs.is_empty(), "helper is always called locked: {msgs:?}");
    }

    #[test]
    fn unlocked_caller_breaks_the_helper_entry_set() {
        let msgs = run(
            "pub struct S { m: Mutex<u64>, hits: u64 }\n\
             impl S {\n\
               fn helper(&self) { self.hits += 1; }\n\
               fn a(&self) { let _g = self.m.lock(); self.helper(); }\n\
               fn b(&self) { self.helper(); }\n\
             }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("no lock held"));
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition() {
        let msgs = run(
            "pub struct S { m: Mutex<u64>, hits: u64 }\n\
             impl S {\n\
               fn guard(&self) -> MutexGuard<u64> { self.m.lock() }\n\
               fn a(&self) { let _g = self.guard(); self.hits += 1; }\n\
               fn b(&self) { let _g = self.guard(); self.hits += 1; }\n\
             }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn mut_self_writes_are_exclusive_access() {
        let msgs = run(
            "pub struct S { m: Mutex<u64>, hits: u64 }\n\
             impl S { pub fn a(&mut self) { self.hits += 1; } }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn unshared_structs_are_ignored() {
        let msgs = run(
            "pub struct Plain { hits: u64 }\n\
             impl Plain { fn a(&self) { self.hits += 1; } }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn arc_wrapping_makes_a_struct_shared() {
        let msgs = run(
            "pub struct P { hits: u64 }\n\
             impl P { fn a(&self) { self.hits += 1; } }\n\
             pub fn share() -> Arc<P> { Arc::new(P { hits: 0 }) }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("wrapped in Arc"));
    }
}
